"""AST node definitions for the SQL subset."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple


@dataclass(frozen=True)
class Literal:
    value: Any  # int, float, str, or bytes


@dataclass(frozen=True)
class ColumnRef:
    name: str


@dataclass(frozen=True)
class Comparison:
    """column OP literal.  op is one of =, !=, <, <=, >, >=."""

    column: str
    op: str
    value: Any


@dataclass(frozen=True)
class Aggregate:
    """COUNT/SUM/AVG/MIN/MAX over a column ('*' only for COUNT)."""

    func: str
    column: str  # "*" for COUNT(*)
    alias: Optional[str] = None


@dataclass(frozen=True)
class SelectItem:
    """A plain column in the select list, optionally aliased."""

    column: str
    alias: Optional[str] = None


@dataclass(frozen=True)
class TimeBucket:
    """TIME_BUCKET(ts, width_micros): a rollup grouping dimension.

    Appears in the select list and in GROUP BY; rows fall into the
    bucket starting at ``ts - ts % width``.
    """

    width: int
    alias: Optional[str] = None


@dataclass
class Select:
    table: str
    items: List[Any]  # SelectItem | Aggregate | TimeBucket; empty = SELECT *
    star: bool = False
    where: List[Comparison] = field(default_factory=list)
    group_by: List[str] = field(default_factory=list)
    group_bucket: Optional[int] = None  # TIME_BUCKET width in GROUP BY
    order_desc: bool = False
    has_order_by: bool = False
    limit: Optional[int] = None


@dataclass
class Insert:
    table: str
    columns: List[str]
    rows: List[List[Any]]


@dataclass
class ColumnDef:
    name: str
    type_name: str  # canonical: int32|int64|double|timestamp|string|blob
    default: Optional[Any] = None


@dataclass
class CreateTable:
    table: str
    columns: List[ColumnDef]
    primary_key: List[str]
    ttl_seconds: Optional[int] = None


@dataclass
class DropTable:
    table: str


@dataclass
class AddColumn:
    table: str
    column: ColumnDef


@dataclass
class WidenColumn:
    table: str
    column: str


@dataclass
class SetTtl:
    table: str
    ttl_seconds: Optional[int]  # None clears the TTL


@dataclass
class ShowTables:
    pass


@dataclass
class DescribeTable:
    table: str


@dataclass
class Delete:
    """Bulk delete by key prefix (the §7 compliance feature)."""

    table: str
    where: List[Comparison] = field(default_factory=list)


@dataclass
class Flush:
    """FLUSH t [BEFORE ts] - the §4.1.2 proposed flush command."""

    table: str
    before_ts: Optional[int] = None


@dataclass
class Explain:
    """EXPLAIN SELECT ...: show the planned access path."""

    select: "Select"
