"""SQL execution against a LittleTable database.

:class:`SqlSession` plays the role of the paper's SQLite adaptor
(§3.1): it knows each table's schema and sort order, translates SQL
into bounding-box queries, and - because the server returns rows in
primary-key order - can aggregate GROUP BY prefixes of the key without
resorting the data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..core.database import LittleTable
from ..core.row import ASCENDING, DESCENDING, Query
from ..core.schema import Column, ColumnType, Schema
from ..core.vector import empty_slot, finalize_value
from ..util.clock import MICROS_PER_SECOND
from . import ast
from .lexer import SqlError
from .parser import parse
from .planner import (Plan, evaluate_residuals, plan_pushdown,
                      plan_where)

_TYPES = {
    "int32": ColumnType.INT32,
    "int64": ColumnType.INT64,
    "double": ColumnType.DOUBLE,
    "timestamp": ColumnType.TIMESTAMP,
    "string": ColumnType.STRING,
    "blob": ColumnType.BLOB,
}


@dataclass
class SqlResult:
    """The outcome of one statement."""

    columns: List[str]
    rows: List[Tuple[Any, ...]]
    rows_affected: int = 0

    def __iter__(self):
        return iter(self.rows)

    def scalar(self) -> Any:
        """The single value of a one-row, one-column result."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise SqlError("result is not a single scalar")
        return self.rows[0][0]


class SqlSession:
    """Executes SQL statements against a LittleTable instance.

    ``vectorized`` controls aggregate pushdown: when True (the
    default), eligible aggregate queries run column-at-a-time inside
    the tablet scan; when False every query takes the row-at-a-time
    path (the oracle the differential tests and benchmarks compare
    against).
    """

    def __init__(self, db: LittleTable, vectorized: bool = True):
        self.db = db
        self.vectorized = vectorized
        metrics = getattr(db, "metrics", None)
        self._m_push_fallback = (
            metrics.counter("query.pushdown.fallback_queries")
            if metrics is not None else None)

    def execute(self, sql: str) -> SqlResult:
        """Parse and execute one statement."""
        statement = parse(sql)
        if isinstance(statement, ast.Select):
            return self._select(statement)
        if isinstance(statement, ast.Insert):
            return self._insert(statement)
        if isinstance(statement, ast.CreateTable):
            return self._create_table(statement)
        if isinstance(statement, ast.DropTable):
            self.db.drop_table(statement.table)
            return SqlResult([], [], 0)
        if isinstance(statement, ast.AddColumn):
            column = _make_column(statement.column)
            self.db.table(statement.table).append_column(column)
            return SqlResult([], [], 0)
        if isinstance(statement, ast.WidenColumn):
            self.db.table(statement.table).widen_column(statement.column)
            return SqlResult([], [], 0)
        if isinstance(statement, ast.SetTtl):
            ttl = statement.ttl_seconds
            self.db.table(statement.table).set_ttl(
                None if ttl is None else ttl * MICROS_PER_SECOND)
            return SqlResult([], [], 0)
        if isinstance(statement, ast.ShowTables):
            names = self.db.table_names()
            return SqlResult(["table"], [(n,) for n in names])
        if isinstance(statement, ast.DescribeTable):
            return self._describe(statement.table)
        if isinstance(statement, ast.Explain):
            return self._explain(statement.select)
        if isinstance(statement, ast.Delete):
            return self._delete(statement)
        if isinstance(statement, ast.Flush):
            table = self.db.table(statement.table)
            if statement.before_ts is None:
                written = table.flush_all()
            else:
                written = table.flush_before(statement.before_ts)
            return SqlResult([], [], len(written))
        raise SqlError(f"unhandled statement {statement!r}")

    def _explain(self, statement: ast.Select) -> SqlResult:
        """Show the planned access path for a SELECT.

        Reveals whether the WHERE clause hit the clustered fast path -
        "a little thought about storage layout up front is a
        relatively small cost to pay for snappy performance" (§7) -
        or degenerated into residual filtering over a wide scan.
        """
        table = self.db.table(statement.table)
        schema = table.schema
        plan = plan_where(schema, statement.where)
        lines = []
        kr = plan.key_range
        if kr.min_prefix is None and kr.max_prefix is None:
            lines.append(("key bounds", "none (full key space)"))
        else:
            low = "-inf" if kr.min_prefix is None else (
                f"{kr.min_prefix!r} "
                f"({'incl' if kr.min_inclusive else 'excl'})")
            high = "+inf" if kr.max_prefix is None else (
                f"{kr.max_prefix!r} "
                f"({'incl' if kr.max_inclusive else 'excl'})")
            lines.append(("key bounds", f"{low} .. {high}"))
        lines.append(("key prefix depth",
                      f"{plan.key_prefix_depth} of "
                      f"{schema.key_width - 1} key columns"))
        tr = plan.time_range
        if tr.min_ts is None and tr.max_ts is None:
            lines.append(("time bounds", "none (all tablets)"))
        else:
            lines.append(("time bounds",
                          f"{tr.min_ts} .. {tr.max_ts}"))
        preview = getattr(table, "prune_preview", None)
        if preview is not None:
            # The same zone-map + time-interval pruning the scan will
            # apply (plain selects and aggregate pushdown alike), so
            # EXPLAIN shows the true open-vs-prune split.
            selected, total = preview(tr, kr)
            lines.append(("tablets", f"{selected} of "
                          f"{total} on disk "
                          f"(+ {table.unflushed_memtable_count} in memory, "
                          f"{total - selected} pruned)"))
        else:
            # Remote adapter: tablet metadata stays server-side.
            lines.append(("tablets", "server-side (remote session)"))
        if plan.residuals:
            residuals = ", ".join(
                f"{c.column} {c.op} {c.value!r}" for c in plan.residuals)
            lines.append(("residual filters", residuals))
        else:
            lines.append(("residual filters", "none"))
        aggregates = [i for i in statement.items
                      if isinstance(i, ast.Aggregate)]
        if (aggregates or statement.group_by
                or statement.group_bucket is not None):
            key_without_ts = [n for n in schema.key if n != "ts"]
            streaming = (statement.group_bucket is None
                         and statement.group_by
                         == key_without_ts[:len(statement.group_by)])
            lines.append(("aggregation",
                          "streaming (group = key prefix)" if streaming
                          else "hashed (group not a key prefix)"))
            decision = plan_pushdown(
                schema, statement, plan, aggregates,
                supports_partials=hasattr(table, "aggregate_partials"))
            if not self.vectorized:
                lines.append(("pushdown",
                              "off (session vectorized=False)"))
            elif decision.pushed:
                lines.append(("pushdown",
                              "vectorized (partial aggregation in scan)"))
            else:
                lines.append(("pushdown",
                              f"row fallback: {decision.reason}"))
        return SqlResult(["property", "value"], lines)

    def _delete(self, statement: ast.Delete) -> SqlResult:
        table = self.db.table(statement.table)
        schema = table.schema
        by_column = {}
        for comparison in statement.where:
            if not schema.has_column(comparison.column):
                raise SqlError(f"no such column: {comparison.column!r}")
            if comparison.column in by_column:
                raise SqlError(
                    f"duplicate predicate on {comparison.column!r}")
            by_column[comparison.column] = comparison.value
        key_columns = [name for name in schema.key if name != "ts"]
        prefix = []
        for name in key_columns:
            if name not in by_column:
                break
            prefix.append(by_column.pop(name))
        if by_column or not prefix:
            raise SqlError(
                "DELETE predicates must cover a leading prefix of the "
                f"key columns {key_columns} (and nothing else)")
        removed = table.bulk_delete(tuple(prefix))
        return SqlResult([], [], removed)

    # --------------------------------------------------------------- DDL

    def _create_table(self, statement: ast.CreateTable) -> SqlResult:
        columns = [_make_column(c) for c in statement.columns]
        schema = Schema(columns, statement.primary_key)
        ttl = (None if statement.ttl_seconds is None
               else statement.ttl_seconds * MICROS_PER_SECOND)
        self.db.create_table(statement.table, schema, ttl_micros=ttl)
        return SqlResult([], [], 0)

    def _describe(self, table_name: str) -> SqlResult:
        table = self.db.table(table_name)
        schema = table.schema
        rows = []
        for column in schema.columns:
            key_position = (
                schema.key.index(column.name) + 1
                if column.name in schema.key else 0
            )
            rows.append((column.name, column.type.value, key_position))
        return SqlResult(["column", "type", "key_position"], rows)

    # ------------------------------------------------------------ INSERT

    def _insert(self, statement: ast.Insert) -> SqlResult:
        table = self.db.table(statement.table)
        dict_rows = [dict(zip(statement.columns, values))
                     for values in statement.rows]
        count = table.insert(dict_rows)
        return SqlResult([], [], count)

    # ------------------------------------------------------------ SELECT

    def _select(self, statement: ast.Select) -> SqlResult:
        table = self.db.table(statement.table)
        schema = table.schema
        plan = plan_where(schema, statement.where)
        aggregates = [i for i in statement.items
                      if isinstance(i, ast.Aggregate)]
        plain = [i for i in statement.items
                 if isinstance(i, ast.SelectItem)]
        for item in plain:
            if not schema.has_column(item.column):
                raise SqlError(f"no such column: {item.column!r}")
        for item in aggregates:
            if item.column != "*" and not schema.has_column(item.column):
                raise SqlError(f"no such column: {item.column!r}")
        for name in statement.group_by:
            if not schema.has_column(name):
                raise SqlError(f"no such column: {name!r}")

        if (aggregates or statement.group_by
                or statement.group_bucket is not None):
            return self._select_aggregate(statement, table, plan,
                                          aggregates, plain)
        if any(isinstance(i, ast.TimeBucket) for i in statement.items):
            raise SqlError(
                "TIME_BUCKET requires GROUP BY TIME_BUCKET and aggregates")
        return self._select_plain(statement, table, plan, plain)

    def _rows(self, table, statement: ast.Select, plan: Plan,
              push_limit: bool) -> Iterator[Tuple[Any, ...]]:
        direction = DESCENDING if statement.order_desc else ASCENDING
        limit = statement.limit if (push_limit and not plan.residuals) else None
        query = Query(plan.key_range, plan.time_range, direction, limit)
        schema = table.schema
        for row in table.scan(query):
            if plan.residuals and not evaluate_residuals(
                    plan.residuals, schema, row):
                continue
            yield row

    def _select_plain(self, statement: ast.Select, table, plan: Plan,
                      plain: List[ast.SelectItem]) -> SqlResult:
        schema = table.schema
        if statement.star or not plain:
            names = [c.name for c in schema.columns]
            indexes = list(range(len(schema.columns)))
        else:
            names = [item.alias or item.column for item in plain]
            indexes = [schema.column_index(item.column) for item in plain]
        rows: List[Tuple[Any, ...]] = []
        for row in self._rows(table, statement, plan, push_limit=True):
            rows.append(tuple(row[i] for i in indexes))
            if statement.limit is not None and len(rows) >= statement.limit:
                break
        return SqlResult(names, rows)

    def _select_aggregate(self, statement: ast.Select, table, plan: Plan,
                          aggregates: List[ast.Aggregate],
                          plain: List[ast.SelectItem]) -> SqlResult:
        group_by = list(statement.group_by)
        bucket = statement.group_bucket
        buckets = [i for i in statement.items
                   if isinstance(i, ast.TimeBucket)]
        for item in plain:
            if item.column not in group_by:
                raise SqlError(
                    f"column {item.column!r} must appear in GROUP BY"
                )
        for item in buckets:
            if bucket is None or item.width != bucket:
                raise SqlError(
                    "TIME_BUCKET in the select list must match the "
                    "GROUP BY TIME_BUCKET width")
        if not aggregates and (group_by or bucket is not None):
            raise SqlError("GROUP BY without aggregates is not supported")

        decision = plan_pushdown(
            table.schema, statement, plan, aggregates,
            supports_partials=hasattr(table, "aggregate_partials"))
        if self.vectorized and decision.pushed:
            return self._select_aggregate_pushdown(
                statement, table, decision.spec, aggregates, plain, buckets)
        if self.vectorized and self._m_push_fallback is not None:
            self._m_push_fallback.inc()
        return self._select_aggregate_rows(statement, table, plan,
                                           aggregates, plain, buckets)

    def _aggregate_output(self, statement: ast.Select,
                          aggregates: List[ast.Aggregate],
                          plain: List[ast.SelectItem],
                          buckets: List[ast.TimeBucket]
                          ) -> Tuple[List[str], bool]:
        """Output column names, and whether the grouping columns are
        emitted implicitly (bare GROUP BY with nothing plain selected).
        """
        group_by = list(statement.group_by)
        bucket = statement.group_bucket
        output_names = (
            [item.alias or item.column for item in plain]
            + [item.alias or "time_bucket" for item in buckets]
            + [agg.alias or _aggregate_name(agg) for agg in aggregates]
        )
        bare = (not plain and not buckets
                and (bool(group_by) or bucket is not None))
        if bare:
            # Bare GROUP BY: emit the grouping columns for usability.
            prefix_names = list(group_by)
            if bucket is not None:
                prefix_names.append("time_bucket")
            output_names = prefix_names + output_names
        return output_names, bare

    def _select_aggregate_pushdown(self, statement: ast.Select, table,
                                   spec, aggregates: List[ast.Aggregate],
                                   plain: List[ast.SelectItem],
                                   buckets: List[ast.TimeBucket]
                                   ) -> SqlResult:
        """The vectorized path: merge per-tablet (or per-shard) partial
        aggregates and finalize.  Group labels sort ascending, which is
        exactly the order the row path emits (streaming groups arrive
        in key order; hashed groups are sorted before emission)."""
        group_by = list(statement.group_by)
        bucket = statement.group_bucket
        output_names, bare = self._aggregate_output(
            statement, aggregates, plain, buckets)
        dims = spec.group_dims
        # Positions into the group label for each emitted prefix value.
        if bare:
            prefix_positions = list(range(dims))
        else:
            prefix_positions = [group_by.index(item.column)
                                for item in plain]
            prefix_positions += [len(group_by)] * len(buckets)

        partials = table.aggregate_partials(spec)
        groups = partials.groups
        funcs = [func for func, _index in spec.aggregates]
        rows_out: List[Tuple[Any, ...]] = []
        for label in (sorted(groups) if dims else list(groups)):
            slots = groups[label]
            if dims:
                label_tuple = (label,) if dims == 1 else label
                prefix = tuple(label_tuple[p] for p in prefix_positions)
            else:
                prefix = ()
            rows_out.append(prefix + tuple(
                finalize_value(func, slot)
                for func, slot in zip(funcs, slots)))
        if not dims and not rows_out:
            # Aggregates over an empty table still return one row.
            rows_out.append(tuple(
                finalize_value(func, empty_slot()) for func in funcs))
        if statement.limit is not None:
            rows_out = rows_out[:statement.limit]
        return SqlResult(output_names, rows_out)

    def _select_aggregate_rows(self, statement: ast.Select, table,
                               plan: Plan,
                               aggregates: List[ast.Aggregate],
                               plain: List[ast.SelectItem],
                               buckets: List[ast.TimeBucket]) -> SqlResult:
        """The row-at-a-time path: the oracle the vectorized engine is
        differentially tested against, and the fallback for remote
        tables and descending scans."""
        schema = table.schema
        group_by = list(statement.group_by)
        bucket = statement.group_bucket
        ts_index = schema.ts_index

        group_indexes = [schema.column_index(name) for name in group_by]
        # Rows arrive sorted by primary key; if the GROUP BY columns are
        # a prefix of the key, groups are contiguous and we can stream
        # (the §3.1 "perform the aggregation without resorting" path).
        # A time bucket breaks that contiguity, so it always hashes.
        key_without_ts = [name for name in schema.key if name != "ts"]
        streaming = (bucket is None
                     and group_by == key_without_ts[:len(group_by)])

        output_names, bare = self._aggregate_output(
            statement, aggregates, plain, buckets)
        plain_indexes = [schema.column_index(item.column) for item in plain]
        if bare:
            plain_indexes = group_indexes
        # How many copies of the bucket value each output row carries.
        bucket_copies = len(buckets) + (
            1 if (bare and bucket is not None) else 0)

        rows_out: List[Tuple[Any, ...]] = []

        def finish_group(group_row, bucket_value, accumulators):
            prefix = tuple(group_row[i] for i in plain_indexes)
            prefix += (bucket_value,) * bucket_copies
            rows_out.append(prefix + tuple(a.result() for a in accumulators))

        if streaming:
            current_key = None
            current_row = None
            accumulators = None
            for row in self._rows(table, statement, plan, push_limit=False):
                group_key = tuple(row[i] for i in group_indexes)
                if group_key != current_key:
                    if current_key is not None:
                        finish_group(current_row, None, accumulators)
                        if (statement.limit is not None
                                and len(rows_out) >= statement.limit):
                            return SqlResult(output_names, rows_out)
                    current_key = group_key
                    current_row = row
                    accumulators = [_Accumulator(agg, schema)
                                    for agg in aggregates]
                for accumulator in accumulators:
                    accumulator.add(row)
            if current_key is not None:
                finish_group(current_row, None, accumulators)
        else:
            groups: Dict[Tuple[Any, ...], Tuple[Any, List[_Accumulator]]] = {}
            order: List[Tuple[Any, ...]] = []
            for row in self._rows(table, statement, plan, push_limit=False):
                group_key = tuple(row[i] for i in group_indexes)
                if bucket is not None:
                    ts = row[ts_index]
                    group_key += (ts - ts % bucket,)
                if group_key not in groups:
                    groups[group_key] = (
                        row, [_Accumulator(agg, schema) for agg in aggregates]
                    )
                    order.append(group_key)
                for accumulator in groups[group_key][1]:
                    accumulator.add(row)
            grouped = bool(group_by) or bucket is not None
            for group_key in sorted(order) if grouped else order:
                group_row, accumulators = groups[group_key]
                bucket_value = group_key[-1] if bucket is not None else None
                finish_group(group_row, bucket_value, accumulators)

        if not group_by and bucket is None and not rows_out:
            # Aggregates over an empty table still return one row.
            rows_out.append(tuple(
                _Accumulator(agg, schema).result() for agg in aggregates))
        if statement.limit is not None:
            rows_out = rows_out[:statement.limit]
        return SqlResult(output_names, rows_out)


def _aggregate_name(agg: ast.Aggregate) -> str:
    return f"{agg.func.lower()}({agg.column})"


def _make_column(definition: ast.ColumnDef) -> Column:
    try:
        column_type = _TYPES[definition.type_name]
    except KeyError:
        raise SqlError(f"unknown type {definition.type_name!r}") from None
    return Column(definition.name, column_type, definition.default)


class _Accumulator:
    """One aggregate function over one group."""

    def __init__(self, agg: ast.Aggregate, schema: Schema):
        self.func = agg.func
        self.index = (None if agg.column == "*"
                      else schema.column_index(agg.column))
        self.count = 0
        self.total: Any = 0
        self.minimum: Any = None
        self.maximum: Any = None

    def add(self, row: Tuple[Any, ...]) -> None:
        self.count += 1
        if self.index is None:
            return
        value = row[self.index]
        if self.func in ("SUM", "AVG"):
            self.total += value
        elif self.func == "MIN":
            if self.minimum is None or value < self.minimum:
                self.minimum = value
        elif self.func == "MAX":
            if self.maximum is None or value > self.maximum:
                self.maximum = value

    def result(self) -> Any:
        if self.func == "COUNT":
            return self.count
        if self.func == "SUM":
            return self.total
        if self.func == "AVG":
            return self.total / self.count if self.count else 0.0
        if self.func == "MIN":
            return self.minimum
        if self.func == "MAX":
            return self.maximum
        raise SqlError(f"unknown aggregate {self.func!r}")
