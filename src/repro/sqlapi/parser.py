"""Recursive-descent parser for the SQL subset.

Supported statements (one per parse call; a trailing ';' is allowed):

* ``CREATE TABLE t (col TYPE [DEFAULT lit], ..., PRIMARY KEY (a, ts))
  [WITH TTL <seconds>]``
* ``DROP TABLE t``
* ``ALTER TABLE t ADD COLUMN col TYPE [DEFAULT lit]``
* ``ALTER TABLE t WIDEN COLUMN col`` (int32 -> int64, §3.5)
* ``ALTER TABLE t SET TTL <seconds> | NONE``
* ``INSERT INTO t (a, b, ...) VALUES (...), (...)``
* ``SELECT */cols/aggregates FROM t [WHERE conj] [GROUP BY cols]
  [ORDER BY KEY [ASC|DESC]] [LIMIT n]``
* ``SHOW TABLES`` / ``DESCRIBE t``

WHERE supports conjunctions of ``col OP literal`` comparisons and
``col BETWEEN a AND b``; OR is not supported (LittleTable queries are
single bounding boxes, §3.1).  ``ORDER BY KEY`` orders by the primary
key, the only order the server produces.
"""

from __future__ import annotations

from typing import Any, List, Optional

from . import ast
from .lexer import SqlError, Token, TokenType, tokenize

_TYPE_NAMES = {
    "INT32": "int32",
    "INT64": "int64",
    "INTEGER": "int64",
    "DOUBLE": "double",
    "TIMESTAMP": "timestamp",
    "STRING": "string",
    "TEXT": "string",
    "BLOB": "blob",
}

_AGGREGATES = ("COUNT", "SUM", "AVG", "MIN", "MAX")


def parse(sql: str):
    """Parse one SQL statement into an AST node."""
    return _Parser(tokenize(sql)).parse_statement()


class _Parser:
    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._index = 0

    # ------------------------------------------------------- primitives

    def _peek(self) -> Token:
        return self._tokens[self._index]

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        if token.type is not TokenType.END:
            self._index += 1
        return token

    def _expect_keyword(self, *keywords: str) -> Token:
        token = self._advance()
        if not token.matches_keyword(*keywords):
            raise SqlError(
                f"expected {' or '.join(keywords)}, got {token.value!r}"
            )
        return token

    def _expect_punct(self, punct: str) -> None:
        token = self._advance()
        if token.type is not TokenType.PUNCT or token.value != punct:
            raise SqlError(f"expected {punct!r}, got {token.value!r}")

    def _accept_punct(self, punct: str) -> bool:
        token = self._peek()
        if token.type is TokenType.PUNCT and token.value == punct:
            self._advance()
            return True
        return False

    def _accept_keyword(self, *keywords: str) -> Optional[Token]:
        token = self._peek()
        if token.matches_keyword(*keywords):
            return self._advance()
        return None

    def _identifier(self) -> str:
        token = self._advance()
        if token.type is TokenType.IDENTIFIER:
            return token.value
        # Allow non-reserved-looking keywords as identifiers where
        # unambiguous (e.g. a column named "key" is NOT allowed; keep
        # it strict and simple).
        raise SqlError(f"expected identifier, got {token.value!r}")

    def _column_name(self) -> str:
        """A column name: identifier, or the 'ts' timestamp column."""
        return self._identifier()

    def _literal(self) -> Any:
        token = self._advance()
        if token.type is TokenType.NUMBER:
            text = token.value
            if any(ch in text for ch in ".eE"):
                return float(text)
            return int(text)
        if token.type is TokenType.STRING:
            return token.value
        if token.type is TokenType.BLOB:
            return bytes.fromhex(token.value)
        if token.matches_keyword("NULL"):
            raise SqlError("NULL values are not supported (use sentinels)")
        if token.matches_keyword("TRUE"):
            return 1
        if token.matches_keyword("FALSE"):
            return 0
        raise SqlError(f"expected literal, got {token.value!r}")

    def _end(self) -> None:
        self._accept_punct(";")
        token = self._peek()
        if token.type is not TokenType.END:
            raise SqlError(f"unexpected trailing input: {token.value!r}")

    # -------------------------------------------------------- statements

    def parse_statement(self):
        token = self._peek()
        if token.matches_keyword("SELECT"):
            return self._select()
        if token.matches_keyword("INSERT"):
            return self._insert()
        if token.matches_keyword("CREATE"):
            return self._create_table()
        if token.matches_keyword("DROP"):
            return self._drop_table()
        if token.matches_keyword("ALTER"):
            return self._alter_table()
        if token.matches_keyword("SHOW"):
            self._advance()
            self._expect_keyword("TABLES")
            self._end()
            return ast.ShowTables()
        if token.matches_keyword("DESCRIBE"):
            self._advance()
            table = self._identifier()
            self._end()
            return ast.DescribeTable(table)
        if token.matches_keyword("EXPLAIN"):
            self._advance()
            select = self._select()
            return ast.Explain(select)
        if token.matches_keyword("DELETE"):
            return self._delete()
        if token.matches_keyword("FLUSH"):
            return self._flush()
        raise SqlError(f"unsupported statement starting with {token.value!r}")

    def _delete(self) -> ast.Delete:
        """``DELETE FROM t WHERE k1 = v [AND k2 = v]`` - bulk delete by
        key prefix, the only delete LittleTable supports beyond TTL
        aging (the §7 compliance feature)."""
        self._expect_keyword("DELETE")
        self._expect_keyword("FROM")
        table = self._identifier()
        self._expect_keyword("WHERE")
        where = self._conjunction()
        self._end()
        for comparison in where:
            if comparison.op != "=":
                raise SqlError(
                    "DELETE supports only key-prefix equality predicates "
                    "(rows otherwise only age out, §3.1)")
        return ast.Delete(table, where)

    def _flush(self) -> ast.Flush:
        """``FLUSH t [BEFORE ts]`` - force rows to disk (§4.1.2's
        proposed command)."""
        self._expect_keyword("FLUSH")
        table = self._identifier()
        before_ts = None
        if self._accept_keyword("BEFORE"):
            before_ts = self._literal()
            if not isinstance(before_ts, int) or before_ts < 0:
                raise SqlError("FLUSH BEFORE takes a non-negative "
                               "timestamp in microseconds")
        self._end()
        return ast.Flush(table, before_ts)

    # ------------------------------------------------------------ SELECT

    def _select(self) -> ast.Select:
        self._expect_keyword("SELECT")
        items: List[Any] = []
        star = False
        if self._accept_punct("*"):
            star = True
        else:
            while True:
                items.append(self._select_item())
                if not self._accept_punct(","):
                    break
        self._expect_keyword("FROM")
        table = self._identifier()
        select = ast.Select(table=table, items=items, star=star)
        if self._accept_keyword("WHERE"):
            select.where = self._conjunction()
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            while True:
                if self._peek().matches_keyword("TIME_BUCKET"):
                    if select.group_bucket is not None:
                        raise SqlError(
                            "GROUP BY allows at most one TIME_BUCKET")
                    select.group_bucket = self._time_bucket()
                else:
                    select.group_by.append(self._column_name())
                if not self._accept_punct(","):
                    break
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            self._expect_keyword("KEY")
            select.has_order_by = True
            if self._accept_keyword("DESC"):
                select.order_desc = True
            else:
                self._accept_keyword("ASC")
        if self._accept_keyword("LIMIT"):
            limit = self._literal()
            if not isinstance(limit, int) or limit < 0:
                raise SqlError("LIMIT must be a non-negative integer")
            select.limit = limit
        self._end()
        return select

    def _select_item(self):
        token = self._peek()
        if token.matches_keyword("TIME_BUCKET"):
            width = self._time_bucket()
            return ast.TimeBucket(width, self._alias())
        if token.matches_keyword(*_AGGREGATES):
            func = self._advance().value
            self._expect_punct("(")
            if self._accept_punct("*"):
                if func != "COUNT":
                    raise SqlError(f"{func}(*) is not supported")
                column = "*"
            else:
                column = self._column_name()
            self._expect_punct(")")
            alias = self._alias()
            return ast.Aggregate(func, column, alias)
        column = self._column_name()
        return ast.SelectItem(column, self._alias())

    def _alias(self) -> Optional[str]:
        if self._accept_keyword("AS"):
            return self._identifier()
        return None

    def _time_bucket(self) -> int:
        """``TIME_BUCKET(ts, width)`` - width in integer microseconds."""
        self._expect_keyword("TIME_BUCKET")
        self._expect_punct("(")
        column = self._column_name()
        if column != "ts":
            raise SqlError(
                f"TIME_BUCKET groups the ts column, not {column!r}")
        self._expect_punct(",")
        width = self._literal()
        if not isinstance(width, int) or isinstance(width, bool) \
                or width <= 0:
            raise SqlError(
                "TIME_BUCKET width must be a positive integer "
                "(microseconds)")
        self._expect_punct(")")
        return width

    def _conjunction(self) -> List[ast.Comparison]:
        comparisons = [*self._predicate()]
        while self._accept_keyword("AND"):
            comparisons.extend(self._predicate())
        if self._peek().matches_keyword("OR"):
            raise SqlError(
                "OR is not supported: LittleTable queries are a single "
                "bounding box (issue multiple queries instead)"
            )
        return comparisons

    def _predicate(self) -> List[ast.Comparison]:
        column = self._column_name()
        if self._accept_keyword("BETWEEN"):
            low = self._literal()
            self._expect_keyword("AND")
            high = self._literal()
            return [ast.Comparison(column, ">=", low),
                    ast.Comparison(column, "<=", high)]
        token = self._advance()
        if token.type is not TokenType.OPERATOR:
            raise SqlError(f"expected comparison operator, got "
                           f"{token.value!r}")
        return [ast.Comparison(column, token.value, self._literal())]

    # ------------------------------------------------------------ INSERT

    def _insert(self) -> ast.Insert:
        self._expect_keyword("INSERT")
        self._expect_keyword("INTO")
        table = self._identifier()
        self._expect_punct("(")
        columns = [self._column_name()]
        while self._accept_punct(","):
            columns.append(self._column_name())
        self._expect_punct(")")
        self._expect_keyword("VALUES")
        rows: List[List[Any]] = []
        while True:
            self._expect_punct("(")
            values = [self._literal()]
            while self._accept_punct(","):
                values.append(self._literal())
            self._expect_punct(")")
            if len(values) != len(columns):
                raise SqlError(
                    f"row has {len(values)} values for {len(columns)} columns"
                )
            rows.append(values)
            if not self._accept_punct(","):
                break
        self._end()
        return ast.Insert(table, columns, rows)

    # --------------------------------------------------------------- DDL

    def _type_name(self) -> str:
        token = self._advance()
        if token.type is TokenType.KEYWORD and token.value in _TYPE_NAMES:
            return _TYPE_NAMES[token.value]
        raise SqlError(f"unknown column type {token.value!r}")

    def _column_def(self) -> ast.ColumnDef:
        name = self._column_name()
        type_name = self._type_name()
        default = None
        if self._accept_keyword("DEFAULT"):
            default = self._literal()
        return ast.ColumnDef(name, type_name, default)

    def _create_table(self) -> ast.CreateTable:
        self._expect_keyword("CREATE")
        self._expect_keyword("TABLE")
        table = self._identifier()
        self._expect_punct("(")
        columns: List[ast.ColumnDef] = []
        primary_key: List[str] = []
        while True:
            if self._accept_keyword("PRIMARY"):
                self._expect_keyword("KEY")
                self._expect_punct("(")
                primary_key.append(self._column_name())
                while self._accept_punct(","):
                    primary_key.append(self._column_name())
                self._expect_punct(")")
            else:
                columns.append(self._column_def())
            if not self._accept_punct(","):
                break
        self._expect_punct(")")
        ttl_seconds = None
        if self._accept_keyword("WITH"):
            self._expect_keyword("TTL")
            ttl = self._literal()
            if not isinstance(ttl, int) or ttl <= 0:
                raise SqlError("TTL must be a positive integer of seconds")
            ttl_seconds = ttl
        self._end()
        if not primary_key:
            raise SqlError("CREATE TABLE requires a PRIMARY KEY clause")
        return ast.CreateTable(table, columns, primary_key, ttl_seconds)

    def _drop_table(self) -> ast.DropTable:
        self._expect_keyword("DROP")
        self._expect_keyword("TABLE")
        table = self._identifier()
        self._end()
        return ast.DropTable(table)

    def _alter_table(self):
        self._expect_keyword("ALTER")
        self._expect_keyword("TABLE")
        table = self._identifier()
        if self._accept_keyword("ADD"):
            self._expect_keyword("COLUMN")
            column = self._column_def()
            self._end()
            return ast.AddColumn(table, column)
        if self._accept_keyword("WIDEN"):
            self._expect_keyword("COLUMN")
            column = self._column_name()
            self._end()
            return ast.WidenColumn(table, column)
        if self._accept_keyword("SET"):
            self._expect_keyword("TTL")
            if self._accept_keyword("NONE"):
                self._end()
                return ast.SetTtl(table, None)
            ttl = self._literal()
            if not isinstance(ttl, int) or ttl <= 0:
                raise SqlError("TTL must be a positive integer of seconds")
            self._end()
            return ast.SetTtl(table, ttl)
        raise SqlError("expected ADD COLUMN, WIDEN COLUMN, or SET TTL")
