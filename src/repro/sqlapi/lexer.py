"""SQL tokenizer.

The paper (§2.3.2) stresses that an SQL interface was decisive for
developer uptake ("our first implementation ... had an XML-based query
language, and developer uptake was sluggish until a subsequent version
added SQL support").  This package provides that interface for the
reproduction: a small SQL dialect covering the operations LittleTable
actually supports.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List


class SqlError(Exception):
    """Raised for lexical, syntactic, or planning errors."""


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    NUMBER = "number"
    STRING = "string"
    BLOB = "blob"
    OPERATOR = "operator"
    PUNCT = "punct"
    END = "end"


KEYWORDS = {
    "SELECT", "FROM", "WHERE", "AND", "OR", "GROUP", "BY", "ORDER",
    "LIMIT", "ASC", "DESC", "INSERT", "INTO", "VALUES", "CREATE",
    "TABLE", "PRIMARY", "KEY", "DEFAULT", "DROP", "ALTER", "ADD",
    "COLUMN", "SET", "TTL", "WITH", "NONE", "AS", "BETWEEN", "NOT",
    "NULL", "COUNT", "SUM", "AVG", "MIN", "MAX", "INT32", "INT64",
    "INTEGER", "DOUBLE", "TIMESTAMP", "STRING", "TEXT", "BLOB", "TO",
    "WIDEN", "LATEST", "TABLES", "SHOW", "DESCRIBE", "TRUE", "FALSE",
    "DELETE", "FLUSH", "BEFORE", "EXPLAIN", "TIME_BUCKET",
}

_OPERATORS = ("<=", ">=", "!=", "<>", "=", "<", ">")
_PUNCT = "(),*;."


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: str
    position: int

    def matches_keyword(self, *keywords: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value in keywords


def tokenize(text: str) -> List[Token]:
    """Tokenize one SQL statement.  Raises SqlError on bad input."""
    return list(_tokens(text))


def _tokens(text: str) -> Iterator[Token]:
    position = 0
    length = len(text)
    while position < length:
        ch = text[position]
        if ch.isspace():
            position += 1
            continue
        if ch == "-" and text.startswith("--", position):
            newline = text.find("\n", position)
            position = length if newline == -1 else newline + 1
            continue
        if ch == "'":
            value, position = _read_string(text, position)
            yield Token(TokenType.STRING, value, position)
            continue
        if ch in ("x", "X") and text.startswith("'", position + 1):
            raw, end = _read_string(text, position + 1)
            try:
                bytes.fromhex(raw)
            except ValueError:
                raise SqlError(f"bad hex blob at {position}: {raw!r}")
            yield Token(TokenType.BLOB, raw, position)
            position = end
            continue
        if ch.isdigit() or (ch in "+-" and position + 1 < length
                            and text[position + 1].isdigit()):
            start = position
            position += 1
            while position < length and (text[position].isdigit()
                                         or text[position] in ".eE"
                                         or (text[position] in "+-"
                                             and text[position - 1] in "eE")):
                position += 1
            yield Token(TokenType.NUMBER, text[start:position], start)
            continue
        if ch.isalpha() or ch == "_":
            start = position
            while position < length and (text[position].isalnum()
                                         or text[position] == "_"):
                position += 1
            word = text[start:position]
            upper = word.upper()
            if upper in KEYWORDS:
                yield Token(TokenType.KEYWORD, upper, start)
            else:
                yield Token(TokenType.IDENTIFIER, word, start)
            continue
        if ch == '"':
            end = text.find('"', position + 1)
            if end == -1:
                raise SqlError(f"unterminated quoted identifier at {position}")
            yield Token(TokenType.IDENTIFIER, text[position + 1:end], position)
            position = end + 1
            continue
        matched_op = None
        for op in _OPERATORS:
            if text.startswith(op, position):
                matched_op = op
                break
        if matched_op:
            yield Token(TokenType.OPERATOR,
                        "!=" if matched_op == "<>" else matched_op, position)
            position += len(matched_op)
            continue
        if ch in _PUNCT:
            yield Token(TokenType.PUNCT, ch, position)
            position += 1
            continue
        raise SqlError(f"unexpected character {ch!r} at {position}")
    yield Token(TokenType.END, "", length)


def _read_string(text: str, position: int) -> tuple:
    """Read a single-quoted string with '' escaping; returns
    (value, next_position)."""
    assert text[position] == "'"
    position += 1
    out = []
    while position < len(text):
        ch = text[position]
        if ch == "'":
            if text.startswith("''", position):
                out.append("'")
                position += 2
                continue
            return "".join(out), position + 1
        out.append(ch)
        position += 1
    raise SqlError("unterminated string literal")
