"""Query planner: WHERE clause -> two-dimensional bounding box.

Every LittleTable query is "an ordered scan of rows within a
two-dimensional bounding box of timestamps in one dimension and primary
keys or prefixes thereof in the other" (§3.1).  The planner maps a
conjunction of comparisons onto:

* a :class:`~repro.core.row.TimeRange` from the ``ts`` constraints;
* a :class:`~repro.core.row.KeyRange` from equality constraints on a
  *prefix* of the key columns, optionally extended one more column by
  range constraints;
* residual comparisons evaluated row-by-row (constraints on non-key
  columns, out-of-prefix key columns, and ``!=``).

Choosing keys so queries hit the prefix path is exactly the "little
thought about storage layout up front" the paper asks of developers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence, Tuple

from ..core.row import KeyRange, TimeRange
from ..core.schema import ColumnType, Schema
from ..core.vector import AggregateSpec
from . import ast
from .ast import Comparison
from .lexer import SqlError

_COMPARABLE = {
    ColumnType.INT32: (int,),
    ColumnType.INT64: (int,),
    ColumnType.TIMESTAMP: (int,),
    ColumnType.DOUBLE: (int, float),
    ColumnType.STRING: (str,),
    ColumnType.BLOB: (bytes,),
}


@dataclass
class Plan:
    """The planned access path for a SELECT."""

    key_range: KeyRange
    time_range: TimeRange
    residuals: List[Comparison] = field(default_factory=list)

    @property
    def key_prefix_depth(self) -> int:
        """How many key columns the key bounds pin (for diagnostics)."""
        if self.key_range.min_prefix is None:
            return 0
        return len(self.key_range.min_prefix)


def _check_comparable(schema: Schema, comparison: Comparison) -> None:
    column = schema.column(comparison.column)
    allowed = _COMPARABLE[column.type]
    if isinstance(comparison.value, bool) or not isinstance(
            comparison.value, allowed):
        raise SqlError(
            f"cannot compare column {comparison.column!r} "
            f"({column.type.value}) with {comparison.value!r}"
        )


def _evaluate(op: str, left: Any, right: Any) -> bool:
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise SqlError(f"unknown operator {op!r}")


def evaluate_residuals(residuals: Sequence[Comparison], schema: Schema,
                       row: Tuple[Any, ...]) -> bool:
    """Apply residual comparisons to one row."""
    for comparison in residuals:
        index = schema.column_index(comparison.column)
        if not _evaluate(comparison.op, row[index], comparison.value):
            return False
    return True


@dataclass(frozen=True)
class PushdownDecision:
    """Whether an aggregate SELECT runs vectorized inside the scan.

    ``spec`` is the pushed plan fragment when eligible; otherwise
    ``reason`` says why the executor keeps the row-at-a-time path
    (surfaced verbatim by ``EXPLAIN``).
    """

    spec: Optional[AggregateSpec]
    reason: Optional[str] = None

    @property
    def pushed(self) -> bool:
        return self.spec is not None


def plan_pushdown(schema: Schema, statement: "ast.Select", plan: Plan,
                  aggregates: Sequence["ast.Aggregate"],
                  supports_partials: bool) -> PushdownDecision:
    """Decide aggregate pushdown and build the :class:`AggregateSpec`.

    Every aggregate function and grouping shape the SQL subset parses
    is vectorizable; what disqualifies a query is the execution
    surface: a remote table has no partial-aggregation API (the spec
    cannot cross the v1 wire protocol), and ``ORDER BY KEY DESC``
    asks for the cursor's row order, which partial aggregation does
    not preserve.
    """
    if not aggregates:
        return PushdownDecision(None, "no aggregates to push")
    if not supports_partials:
        return PushdownDecision(
            None, "table has no partial-aggregation API (remote session)")
    if statement.order_desc:
        return PushdownDecision(
            None, "ORDER BY KEY DESC requires the row cursor")
    group_indexes = tuple(schema.column_index(name)
                          for name in statement.group_by)
    aggs = tuple(
        (agg.func, None if agg.column == "*"
         else schema.column_index(agg.column))
        for agg in aggregates)
    residuals = tuple(
        (schema.column_index(c.column), c.op, c.value)
        for c in plan.residuals)
    spec = AggregateSpec(
        key_range=plan.key_range, time_range=plan.time_range,
        group_indexes=group_indexes, bucket_width=statement.group_bucket,
        aggregates=aggs, residuals=residuals)
    return PushdownDecision(spec)


def plan_where(schema: Schema, comparisons: Sequence[Comparison]) -> Plan:
    """Build the bounding box and residual list for a conjunction."""
    for comparison in comparisons:
        if not schema.has_column(comparison.column):
            raise SqlError(f"no such column: {comparison.column!r}")
        _check_comparable(schema, comparison)

    ts_constraints = [c for c in comparisons if c.column == "ts"]
    others = [c for c in comparisons if c.column != "ts"]
    time_range = _plan_time(ts_constraints)
    key_range, residuals = _plan_key(schema, others)
    return Plan(key_range=key_range, time_range=time_range,
                residuals=residuals)


def _plan_time(constraints: Sequence[Comparison]) -> TimeRange:
    min_ts: Optional[int] = None
    min_inclusive = True
    max_ts: Optional[int] = None
    max_inclusive = True
    for c in constraints:
        if not isinstance(c.value, int):
            raise SqlError("ts bounds must be integer microseconds")
        if c.op == "=":
            candidates = (("min", c.value, True), ("max", c.value, True))
        elif c.op in (">", ">="):
            candidates = (("min", c.value, c.op == ">="),)
        elif c.op in ("<", "<="):
            candidates = (("max", c.value, c.op == "<="),)
        elif c.op == "!=":
            raise SqlError("ts != bounds are not supported")
        else:
            raise SqlError(f"unsupported ts operator {c.op!r}")
        for side, value, inclusive in candidates:
            if side == "min":
                if (min_ts is None or value > min_ts
                        or (value == min_ts and not inclusive)):
                    min_ts, min_inclusive = value, inclusive
            else:
                if (max_ts is None or value < max_ts
                        or (value == max_ts and not inclusive)):
                    max_ts, max_inclusive = value, inclusive
    return TimeRange(min_ts=min_ts, min_inclusive=min_inclusive,
                     max_ts=max_ts, max_inclusive=max_inclusive)


def _plan_key(schema: Schema, constraints: Sequence[Comparison]
              ) -> Tuple[KeyRange, List[Comparison]]:
    by_column = {}
    for c in constraints:
        by_column.setdefault(c.column, []).append(c)

    key_columns = [name for name in schema.key if name != "ts"]
    prefix: List[Any] = []
    consumed: set = set()
    lower_extra: Optional[Tuple[Any, bool]] = None
    upper_extra: Optional[Tuple[Any, bool]] = None

    for column in key_columns:
        column_constraints = by_column.get(column, [])
        equality = next((c for c in column_constraints if c.op == "="), None)
        if equality is not None:
            prefix.append(equality.value)
            consumed.add(id(equality))
            continue
        # No equality: optionally extend the box one level with range
        # constraints on this column, then stop.
        lows = [c for c in column_constraints if c.op in (">", ">=")]
        highs = [c for c in column_constraints if c.op in ("<", "<=")]
        if lows:
            best = max(lows, key=lambda c: (c.value, c.op == ">"))
            lower_extra = (best.value, best.op == ">=")
            consumed.add(id(best))
        if highs:
            best = min(highs, key=lambda c: (c.value, c.op == "<="))
            upper_extra = (best.value, best.op == "<")
            consumed.add(id(best))
        break

    min_prefix = None
    min_inclusive = True
    max_prefix = None
    max_inclusive = True
    if prefix or lower_extra or upper_extra:
        base = tuple(prefix)
        if lower_extra is not None:
            min_prefix = base + (lower_extra[0],)
            min_inclusive = lower_extra[1]
        elif base:
            min_prefix = base
        if upper_extra is not None:
            max_prefix = base + (upper_extra[0],)
            max_inclusive = not upper_extra[1]
        elif base:
            max_prefix = base

    residuals = [c for c in constraints if id(c) not in consumed]
    key_range = KeyRange(min_prefix=min_prefix, min_inclusive=min_inclusive,
                         max_prefix=max_prefix, max_inclusive=max_inclusive)
    return key_range, residuals
