"""SQL front end: the role of the paper's SQLite virtual-table adaptor."""

from .executor import SqlResult, SqlSession
from .lexer import SqlError, tokenize
from .parser import parse
from .planner import Plan, plan_where

__all__ = ["SqlResult", "SqlSession", "SqlError", "tokenize", "parse",
           "Plan", "plan_where"]
