"""Benchmark harness: cost model, workload runners, figure printers."""

from .costmodel import DEFAULT_COST_MODEL, ServerCostModel
from .harness import (
    BENCH_EPOCH,
    InsertRunResult,
    QueryRunResult,
    bench_config,
    build_tabled_dataset,
    first_row_latency,
    format_table,
    make_bench_db,
    print_figure,
    run_insert_workload,
    run_multi_writer_workload,
    run_query_scan,
)

__all__ = [
    "DEFAULT_COST_MODEL",
    "ServerCostModel",
    "BENCH_EPOCH",
    "InsertRunResult",
    "QueryRunResult",
    "bench_config",
    "build_tabled_dataset",
    "first_row_latency",
    "format_table",
    "make_bench_db",
    "print_figure",
    "run_insert_workload",
    "run_multi_writer_workload",
    "run_query_scan",
]
