"""Workload runners behind the figure benchmarks.

Each runner drives the *real* engine (real encoding, tablets, merges)
against the simulated disk, then combines the disk model's time with
the calibrated server cost model to produce paper-comparable numbers.
See DESIGN.md §2 for why benchmark time is modeled rather than
wall-clock: the shapes are the engine's own behaviour; only the price
per seek/byte/row comes from the model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from ..core.config import EngineConfig
from ..core.database import LittleTable
from ..core.row import KeyRange, Query, TimeRange
from ..core.table import Table
from ..disk.model import DiskParameters, MIB
from ..disk.vfs import SimulatedDisk
from ..util.clock import MICROS_PER_SECOND, VirtualClock
from ..util.xorshift import Xorshift64Star
from ..workloads.rows import BenchRowGenerator, bench_schema
from .costmodel import DEFAULT_COST_MODEL, ServerCostModel

BENCH_EPOCH = 10_000 * 86_400_000_000  # a stable simulated "now"


def bench_config(**overrides) -> EngineConfig:
    """Engine config for microbenchmarks: no compression (input data
    is incompressible anyway, §5.1.1), no surprise merging."""
    defaults = dict(
        compression="none",
        merge_min_age_micros=90 * MICROS_PER_SECOND,
        bloom_filters=True,
    )
    defaults.update(overrides)
    return EngineConfig(**defaults)


def make_bench_db(config: Optional[EngineConfig] = None,
                  disk_params: Optional[DiskParameters] = None,
                  start: int = BENCH_EPOCH
                  ) -> Tuple[LittleTable, VirtualClock]:
    clock = VirtualClock(start=start)
    disk = SimulatedDisk(params=disk_params)
    db = LittleTable(disk=disk, config=config or bench_config(), clock=clock)
    return db, clock


# ------------------------------------------------------------- inserts

@dataclass
class InsertRunResult:
    """Modeled outcome of one insert workload."""

    row_size: int
    batch_bytes: int
    rows: int
    commands: int
    data_bytes: int
    cpu_s: float
    disk_s: float

    @property
    def total_s(self) -> float:
        return self.cpu_s + self.disk_s

    @property
    def throughput_mbps(self) -> float:
        return self.data_bytes / MIB / self.total_s

    def fraction_of_peak(self, peak_mbps: float = 120.0) -> float:
        return self.throughput_mbps / peak_mbps


def run_insert_workload(row_size: int, batch_bytes: int, total_bytes: int,
                        cost_model: ServerCostModel = DEFAULT_COST_MODEL,
                        config: Optional[EngineConfig] = None,
                        seed: int = 1) -> InsertRunResult:
    """Insert ~``total_bytes`` of ``row_size`` rows in batches.

    Reproduces the §5.1.2 single-writer setup: one client, one table,
    timestamps set to "now", data from a PRNG.
    """
    db, clock = make_bench_db(config)
    table = db.create_table("bench", bench_schema())
    generator = BenchRowGenerator(row_size, seed=seed, ts=clock.now())
    rows_per_batch = max(1, batch_bytes // row_size)
    rows_needed = max(1, total_bytes // row_size)
    disk_before = db.disk.stats.snapshot()
    commands = 0
    inserted = 0
    while inserted < rows_needed:
        count = min(rows_per_batch, rows_needed - inserted)
        table.insert_tuples(generator.batch(count))
        commands += 1
        inserted += count
        for memtable_id in list(table._flush_pending):
            table.flush_memtable(memtable_id)
    table.flush_all()
    disk_delta = db.disk.stats.delta_since(disk_before)
    data_bytes = inserted * row_size
    cpu_s = cost_model.insert_cpu_s(commands, inserted, data_bytes, row_size)
    return InsertRunResult(
        row_size=row_size, batch_bytes=batch_bytes, rows=inserted,
        commands=commands, data_bytes=data_bytes, cpu_s=cpu_s,
        disk_s=disk_delta.write_time_s,
    )


def run_multi_writer_workload(writers: int, row_size: int, batch_rows: int,
                              bytes_per_writer: int,
                              cost_model: ServerCostModel = DEFAULT_COST_MODEL
                              ) -> Tuple[float, float, float]:
    """§5.1.4: N writers, each into its own table.

    Returns (aggregate_mbps, cpu_s, disk_s).  CPU parallelizes across
    cores per the cost model's Amdahl fraction; disk time serializes
    with an interleave penalty.
    """
    db, clock = make_bench_db()
    disk_before = db.disk.stats.snapshot()
    total_rows = 0
    total_commands = 0
    for writer in range(writers):
        table = db.create_table(f"w{writer}", bench_schema())
        generator = BenchRowGenerator(row_size, seed=7, stream=writer,
                                      ts=clock.now())
        rows_needed = max(1, bytes_per_writer // row_size)
        inserted = 0
        while inserted < rows_needed:
            count = min(batch_rows, rows_needed - inserted)
            table.insert_tuples(generator.batch(count))
            total_commands += 1
            inserted += count
        table.flush_all()
        total_rows += inserted
    disk_delta = db.disk.stats.delta_since(disk_before)
    data_bytes = total_rows * row_size
    serial_cpu = cost_model.insert_cpu_s(total_commands, total_rows,
                                         data_bytes, row_size)
    cpu_s = cost_model.parallel_cpu_s(serial_cpu, writers)
    disk_s = (disk_delta.write_time_s
              * cost_model.disk_interleave_factor(writers))
    total_s = max(cpu_s, disk_s)  # CPU and disk overlap across writers
    return data_bytes / MIB / total_s, cpu_s, disk_s


# -------------------------------------------------------------- tables

def build_tabled_dataset(n_tablets: int, tablet_bytes: int, row_size: int,
                         config: Optional[EngineConfig] = None,
                         disk_params: Optional[DiskParameters] = None,
                         random_keys: bool = True,
                         seed: int = 3) -> Tuple[LittleTable, Table]:
    """Build a table with exactly ``n_tablets`` on-disk tablets.

    Each tablet gets its own timestamp instant so a query's ts bounds
    select any count of tablets (§5.1.6), and random keys interleave
    across tablets so full scans alternate between them (§5.1.5).
    """
    db, clock = make_bench_db(
        config or bench_config(flush_size_bytes=1 << 40,
                               max_merged_tablet_bytes=1 << 40,
                               merge_policy="never"),
        disk_params,
    )
    table = db.create_table("bench", bench_schema())
    rows_per_tablet = max(1, tablet_bytes // row_size)
    for index in range(n_tablets):
        ts = BENCH_EPOCH + index
        generator = BenchRowGenerator(row_size, seed=seed, stream=index,
                                      ts=ts, random_keys=random_keys)
        table.insert_tuples(generator.batch(rows_per_tablet))
        table.flush_all()
    assert len(table.on_disk_tablets) == n_tablets
    return db, table


# -------------------------------------------------------------- queries

@dataclass
class QueryRunResult:
    """Modeled outcome of one query scan."""

    rows: int
    bytes_read: int
    cpu_s: float
    disk_s: float
    first_row_disk_s: float

    @property
    def total_s(self) -> float:
        return self.cpu_s + self.disk_s

    @property
    def rows_per_s(self) -> float:
        return self.rows / self.total_s if self.total_s else float("inf")

    def throughput_mbps(self, data_bytes: int) -> float:
        return data_bytes / MIB / self.total_s if self.total_s else 0.0


def run_query_scan(table: Table, query: Query,
                   cost_model: ServerCostModel = DEFAULT_COST_MODEL,
                   stop_after_rows: Optional[int] = None) -> QueryRunResult:
    """Scan a query, charging modeled disk + CPU time."""
    disk = table.disk
    before = disk.stats.snapshot()
    first_row_disk = 0.0
    rows = 0
    for _row in table.scan(query):
        if rows == 0:
            first_row_disk = disk.stats.delta_since(before).read_time_s
        rows += 1
        if stop_after_rows is not None and rows >= stop_after_rows:
            break
    delta = disk.stats.delta_since(before)
    cpu_s = cost_model.query_cpu_s(rows, delta.bytes_read)
    return QueryRunResult(rows=rows, bytes_read=delta.bytes_read,
                          cpu_s=cpu_s, disk_s=delta.read_time_s,
                          first_row_disk_s=first_row_disk)


def first_row_latency(table: Table, n_tablets: int, probe_seed: int,
                      cost_model: ServerCostModel = DEFAULT_COST_MODEL
                      ) -> float:
    """§5.1.6: latency to the first row of a random-key query whose ts
    bounds cover ``n_tablets`` tablets.  Returns modeled seconds."""
    rng = Xorshift64Star(seed=probe_seed)
    probe_key = (rng.next_u32() & 0x7FFFFFFF,)
    query = Query(
        KeyRange(min_prefix=probe_key),
        TimeRange.between(BENCH_EPOCH, BENCH_EPOCH + n_tablets - 1),
    )
    disk = table.disk
    before = disk.stats.snapshot()
    for _row in table.scan(query):
        break
    delta = disk.stats.delta_since(before)
    return delta.read_time_s + cost_model.query_cpu_s(1, delta.bytes_read)


def first_row_latency_cold(table: Table, n_tablets: int, probe_seed: int,
                           cost_model: ServerCostModel = DEFAULT_COST_MODEL
                           ) -> float:
    """Like :func:`first_row_latency` after a full cold start: page
    cache dropped AND in-memory footers evicted (a server restart).
    This is Figure 6's "first query"; re-probing the same table with
    :func:`first_row_latency` is its "second query"."""
    table.disk.drop_caches()
    table.evict_reader_cache()
    rng = Xorshift64Star(seed=probe_seed)
    probe_key = (rng.next_u32() & 0x7FFFFFFF,)
    query = Query(
        KeyRange(min_prefix=probe_key),
        TimeRange.between(BENCH_EPOCH, BENCH_EPOCH + n_tablets - 1),
    )
    disk = table.disk
    before = disk.stats.snapshot()
    for _row in table.scan(query):
        break
    delta = disk.stats.delta_since(before)
    return delta.read_time_s + cost_model.query_cpu_s(1, delta.bytes_read)


# ------------------------------------------------------------ printing

def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> str:
    """Plain-text table for benchmark stdout."""
    rendered = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def line(cells):
        return "  ".join(cell.rjust(width)
                         for cell, width in zip(cells, widths))
    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(row) for row in rendered)
    return "\n".join(out)


def print_figure(title: str, headers: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> None:
    print()
    print(f"=== {title} ===")
    print(format_table(headers, rows))


# ----------------------------------------------- Figure 3: merge impact

@dataclass
class MergeImpactResult:
    """Outcome of the §5.1.3 insert-throughput-under-merging run.

    ``samples`` are (modeled_time_s, window_throughput_MBps) points;
    ``merge_events`` are the modeled times at which merges ran - the
    impulses along Figure 3's x-axis.
    """

    samples: List[Tuple[float, float]]
    merge_events: List[float]
    total_bytes: int
    duration_s: float
    write_amplification: float
    backlog_peak: int

    def mean_mbps(self, t0: float, t1: float) -> float:
        """Average throughput over the window [t0, t1)."""
        chosen = [mbps for t, mbps in self.samples if t0 <= t < t1]
        if not chosen:
            return 0.0
        return sum(chosen) / len(chosen)


def run_merge_impact(total_bytes: int = 192 * MIB,
                     row_size: int = 4096,
                     batch_bytes: int = 64 * 1024,
                     flush_bytes: int = 1 * MIB,
                     max_merged_bytes: int = 8 * MIB,
                     backlog_limit: int = 100,
                     merge_delay_s: float = 1.5,
                     window_s: float = 0.25,
                     cost_model: ServerCostModel = DEFAULT_COST_MODEL
                     ) -> MergeImpactResult:
    """Reproduce Figure 3 on a two-resource modeled timeline.

    The paper inserts 16 GB with 16 MB flushes, a 128 MB merged-tablet
    cap, a 100-tablet flush backlog limit, and a 90 s merge delay; we
    scale bytes and the delay down together (DESIGN.md §2) so the same
    dynamics - CPU-bound burst, backlog-limited disk-bound phase,
    merge onset, equilibrium - play out in a tractable run.  The
    engine does the real inserts, flushes, and merges; the timeline
    prices them: insert CPU advances simulated time, flush and merge
    I/O occupy a single disk resource, and inserts stall when the
    flush backlog hits the limit.
    """
    import heapq

    config = bench_config(
        flush_size_bytes=flush_bytes,
        max_merged_tablet_bytes=max_merged_bytes,
        merge_min_age_micros=int(merge_delay_s * MICROS_PER_SECOND),
    )
    db, clock = make_bench_db(config)
    table = db.create_table("bench", bench_schema())
    generator = BenchRowGenerator(row_size, seed=5, ts=clock.now())
    rows_per_batch = max(1, batch_bytes // row_size)
    rows_needed = max(1, total_bytes // row_size)
    batch_cpu_s = cost_model.insert_cpu_s(
        1, rows_per_batch, rows_per_batch * row_size, row_size)

    sim_t = 0.0
    disk_free = 0.0
    flush_finish_heap: List[float] = []
    backlog_peak = 0
    merge_events: List[float] = []
    progress: List[Tuple[float, int]] = [(0.0, 0)]
    inserted = 0

    def set_engine_clock() -> None:
        clock.set(BENCH_EPOCH + int(sim_t * MICROS_PER_SECOND))

    def drain_backlog(now_s: float) -> int:
        while flush_finish_heap and flush_finish_heap[0] <= now_s:
            heapq.heappop(flush_finish_heap)
        return len(flush_finish_heap)

    def run_disk_jobs() -> None:
        """Schedule pending flushes; run merges while the disk idles."""
        nonlocal disk_free, backlog_peak
        set_engine_clock()
        while table.flush_pending_count:
            memtable_id = table._flush_pending[0]
            io_before = db.disk.stats.snapshot()
            table.flush_memtable(memtable_id)
            io_s = db.disk.stats.delta_since(io_before).write_time_s
            start = max(sim_t, disk_free)
            disk_free = start + io_s
            heapq.heappush(flush_finish_heap, disk_free)
        backlog_peak = max(backlog_peak, drain_backlog(sim_t))
        # The merge thread's I/O queues on the same disk as flushes -
        # the §5.1.3 competition that slows inserts down.
        while True:
            io_before = db.disk.stats.snapshot()
            plan = table.maybe_merge()
            if plan is None:
                break
            delta = db.disk.stats.delta_since(io_before)
            merge_io_s = delta.write_time_s + delta.read_time_s
            start = max(sim_t, disk_free)
            merge_events.append(start)
            disk_free = start + merge_io_s

    while inserted < rows_needed:
        count = min(rows_per_batch, rows_needed - inserted)
        set_engine_clock()
        table.insert_tuples(generator.batch(count))
        inserted += count
        sim_t += batch_cpu_s * (count / rows_per_batch)
        run_disk_jobs()
        # Backlog limit: block inserts until flushes complete (§5.1.3).
        while drain_backlog(sim_t) >= backlog_limit:
            sim_t = flush_finish_heap[0]
            run_disk_jobs()
        progress.append((sim_t, inserted * row_size))

    duration = max(sim_t, disk_free)
    samples: List[Tuple[float, float]] = []
    window_start = 0.0
    window_bytes_start = 0
    for t, total in progress:
        while t >= window_start + window_s:
            window_end = window_start + window_s
            samples.append((
                window_start,
                (total - window_bytes_start) / MIB / window_s,
            ))
            window_start = window_end
            window_bytes_start = total
    flushed = table.counters.bytes_flushed
    merged = table.counters.bytes_merge_written
    amplification = (flushed + merged) / flushed if flushed else 0.0
    return MergeImpactResult(
        samples=samples, merge_events=merge_events,
        total_bytes=inserted * row_size, duration_s=duration,
        write_amplification=amplification, backlog_peak=backlog_peak,
    )
