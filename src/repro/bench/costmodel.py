"""The server cost model: CPU and protocol costs of the paper's C++
implementation.

The disk model (``repro.disk``) accounts for seeks and transfers; this
module accounts for everything else the paper's numbers include - the
per-command protocol overhead that makes small insert batches slow
(Figure 2, solid line), the per-row costs that make small rows slow
(Figure 2, dashed line), and the per-row query cost that puts scan
throughput at ~50% of the disk's (§1, §5.1.5).

A pure-Python engine cannot hit the absolute CPU numbers of the
paper's C++ server, so benchmarks report *modeled* time: real engine
work measured in rows/bytes/commands, priced by these constants.  The
constants are calibrated against the paper's own measurements:

* 512x128 B insert batches sustain ~42% of peak disk write rate (§1);
* 32 B rows at 64 kB batches reach ~12% and 4 kB rows ~63% (§5.1.2);
* a single writer with 32-row batches sustains 37 MB/s (§5.1.4),
  rising toward ~75% of the disk's peak with 32 writers;
* queries return 500k 128 B rows/s, ~50% of disk throughput (§5.1.5).

DESIGN.md §2 records this substitution; EXPERIMENTS.md reports the
paper-vs-modeled deltas.
"""

from __future__ import annotations

from dataclasses import dataclass

MIB = 1024 * 1024


@dataclass
class ServerCostModel:
    """Calibrated per-operation CPU/protocol costs (seconds)."""

    # Per insert command: request parse + round trip + dispatch.
    insert_command_s: float = 60e-6
    # Per inserted row: validation, uniqueness fast path, tree insert.
    insert_row_s: float = 1.2e-6
    # Per inserted byte: encode + memcpy + (attempted) compression.
    insert_byte_s: float = 1.0 / (300 * MIB)
    # Extra per-byte cost for rows that overflow the 64 kB block size
    # (block-spanning copies); reproduces Figure 2's dip past 4 kB.
    oversize_row_byte_s: float = 1.0 / (150 * MIB)
    oversize_row_threshold: int = 8 * 1024
    # Per returned/scanned row on the query path: decode + merge heap.
    query_row_s: float = 0.8e-6
    # Per scanned byte on the query path: decompress + copy.
    query_byte_s: float = 1.0 / (500 * MIB)
    # Amdahl serial fraction for the multi-writer benchmark: the
    # fraction of insert CPU spent in shared state (allocator, tablet
    # bookkeeping) that does not parallelize across writer threads.
    multi_writer_serial_fraction: float = 0.35
    # Disk interleave penalty per concurrent writer: flushes from many
    # tables interleave on the platter, costing extra seek time.
    multi_writer_disk_penalty: float = 0.008

    # ------------------------------------------------------------ costs

    def insert_cpu_s(self, commands: int, rows: int, data_bytes: int,
                     row_size: int) -> float:
        """Modeled CPU seconds to ingest a workload."""
        cost = (commands * self.insert_command_s
                + rows * self.insert_row_s
                + data_bytes * self.insert_byte_s)
        if row_size > self.oversize_row_threshold:
            cost += data_bytes * self.oversize_row_byte_s
        return cost

    def query_cpu_s(self, rows_scanned: int, bytes_scanned: int) -> float:
        """Modeled CPU seconds to scan rows through the query path."""
        return (rows_scanned * self.query_row_s
                + bytes_scanned * self.query_byte_s)

    def parallel_cpu_s(self, serial_cpu_s: float, writers: int,
                       cores: int = 12) -> float:
        """Amdahl-scaled CPU time across writer threads (§5.1.4).

        The paper's test machine has two 6-core Xeons; insert CPU work
        for different tables shares almost no state, but not none.
        """
        if writers <= 1:
            return serial_cpu_s
        parallel_ways = min(writers, cores)
        serial = self.multi_writer_serial_fraction
        return serial_cpu_s * (serial + (1.0 - serial) / parallel_ways)

    def disk_interleave_factor(self, writers: int) -> float:
        """Extra disk time when many tables flush concurrently."""
        return 1.0 + self.multi_writer_disk_penalty * max(0, writers - 1)


DEFAULT_COST_MODEL = ServerCostModel()
