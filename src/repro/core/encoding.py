"""Binary codecs for column values and whole rows.

Rows are stored inside 64 kB blocks as consecutive field encodings in
schema order.  Integers and timestamps use varints, doubles are 8-byte
IEEE 754 little-endian, strings and blobs are length-prefixed.  The
format favours simplicity over peak density, like the system it
reproduces.
"""

from __future__ import annotations

import struct
from typing import Any, List, Sequence, Tuple

from ..util.varint import (
    decode_svarint,
    decode_uvarint,
    encode_svarint,
    encode_uvarint,
)
from .errors import CorruptTabletError
from .schema import ColumnType, Schema

_DOUBLE = struct.Struct("<d")


def encode_value(column_type: ColumnType, value: Any) -> bytes:
    """Encode one validated column value."""
    if column_type in (ColumnType.INT32, ColumnType.INT64):
        return encode_svarint(value)
    if column_type is ColumnType.TIMESTAMP:
        return encode_uvarint(value)
    if column_type is ColumnType.DOUBLE:
        return _DOUBLE.pack(value)
    if column_type is ColumnType.STRING:
        raw = value.encode("utf-8")
        return encode_uvarint(len(raw)) + raw
    if column_type is ColumnType.BLOB:
        return encode_uvarint(len(value)) + value
    raise ValueError(f"unknown column type {column_type!r}")


def decode_value(column_type: ColumnType, buf: bytes, offset: int) -> Tuple[Any, int]:
    """Decode one column value; returns ``(value, next_offset)``."""
    try:
        if column_type in (ColumnType.INT32, ColumnType.INT64):
            return decode_svarint(buf, offset)
        if column_type is ColumnType.TIMESTAMP:
            return decode_uvarint(buf, offset)
        if column_type is ColumnType.DOUBLE:
            end = offset + _DOUBLE.size
            if end > len(buf):
                raise ValueError("truncated double")
            return _DOUBLE.unpack_from(buf, offset)[0], end
        if column_type is ColumnType.STRING:
            length, pos = decode_uvarint(buf, offset)
            # A negative length must never reach the slice below:
            # Python would interpret it as an end-relative index and
            # silently return the wrong bytes instead of failing.
            if length < 0:
                raise ValueError("negative string length")
            end = pos + length
            if end > len(buf):
                raise ValueError("truncated string")
            return buf[pos:end].decode("utf-8"), end
        if column_type is ColumnType.BLOB:
            length, pos = decode_uvarint(buf, offset)
            if length < 0:
                raise ValueError("negative blob length")
            end = pos + length
            if end > len(buf):
                raise ValueError("truncated blob")
            return buf[pos:end], end
    except ValueError as exc:
        raise CorruptTabletError(str(exc)) from exc
    raise ValueError(f"unknown column type {column_type!r}")


class RowCodec:
    """Encodes/decodes whole rows for a specific schema."""

    def __init__(self, schema: Schema):
        self.schema = schema
        self._types = tuple(column.type for column in schema.columns)
        self._key_types = tuple(
            schema.columns[i].type for i in schema.key_indexes
        )

    def encode_row(self, row: Sequence[Any]) -> bytes:
        """Encode a validated row tuple."""
        parts = [
            encode_value(column_type, value)
            for column_type, value in zip(self._types, row)
        ]
        return b"".join(parts)

    def decode_row(self, buf: bytes, offset: int = 0) -> Tuple[Tuple[Any, ...], int]:
        """Decode one row; returns ``(row, next_offset)``."""
        values: List[Any] = []
        pos = offset
        for column_type in self._types:
            value, pos = decode_value(column_type, buf, pos)
            values.append(value)
        return tuple(values), pos

    def encode_key(self, key: Sequence[Any]) -> bytes:
        """Encode a full key tuple (used in tablet footers)."""
        parts = [
            encode_value(column_type, value)
            for column_type, value in zip(self._key_types, key)
        ]
        return b"".join(parts)

    def decode_key(self, buf: bytes, offset: int = 0) -> Tuple[Tuple[Any, ...], int]:
        """Decode a full key tuple; returns ``(key, next_offset)``."""
        values: List[Any] = []
        pos = offset
        for column_type in self._key_types:
            value, pos = decode_value(column_type, buf, pos)
            values.append(value)
        return tuple(values), pos

    def encode_key_columns(self, key: Sequence[Any]) -> List[bytes]:
        """Per-column encodings of a key (for prefix Bloom filters)."""
        return [
            encode_value(column_type, value)
            for column_type, value in zip(self._key_types, key)
        ]

    def encode_prefix_columns(self, prefix: Sequence[Any]) -> List[bytes]:
        """Per-column encodings of a key *prefix* (shorter than the key)."""
        if len(prefix) > len(self._key_types):
            raise ValueError("prefix longer than the key")
        return [
            encode_value(column_type, value)
            for column_type, value in zip(self._key_types, prefix)
        ]
