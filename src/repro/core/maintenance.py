"""The maintenance vocabulary: policy and typed work reports.

The paper's background merger (§3.3) runs continuously without
stalling the single writer or the dashboard read path.  This module
holds the two API objects that replaced the ad-hoc shapes the engine
grew up with:

* :class:`MaintenancePolicy` - one config object for *how* background
  maintenance runs (tick interval, worker count, insert backpressure,
  merge budget), consumed by both :class:`~repro.core.LittleTable`
  and :class:`~repro.net.server.LittleTableServer`.  It replaces the
  bare ``maintenance_interval_s`` float kwarg (kept as a deprecated
  alias on the server).
* :class:`TableMaintenanceReport` / :class:`MaintenanceReport` - typed
  returns for ``Table.maintenance()`` / ``Database.maintenance()`` /
  ``Server.run_maintenance()``, replacing the old
  ``Dict[str, Dict[str, int]]``.  Both keep dict-style access
  (``report["flushed"]``, ``report.values()``) so existing callers
  keep working, and ``.as_dict()`` produces the exact legacy shape
  (it is also what crosses the wire protocol).

Release note: the dict return shape of the three ``maintenance``
entry points is deprecated as of this release; it will keep working
through the compat accessors, but new code should use the typed
attributes (``report.tables["usage"].flushed``) and quiescence should
be read from :attr:`MaintenanceReport.is_quiet`, which - unlike the
old hand-rolled checks - accounts for *every* kind of work, TTL
expiry and errors included.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

_TABLE_KEYS = ("flushed", "merged", "expired", "errors")


@dataclass
class MaintenancePolicy:
    """How background maintenance runs for one database instance.

    ``tick_interval_s``
        Seconds between scheduler ticks (each tick scans every table
        for due work and feeds the worker pool).
    ``workers``
        Background worker threads.  Tables are independent units of
        work; two workers never touch the same table concurrently.
    ``max_flush_pending``
        Insert backpressure threshold: when a table has this many
        flush-pending memtables, inserts wait (up to
        ``backpressure_wait_s``) for the flushers to drain before
        appending more.  ``None`` disables backpressure.
    ``backpressure_wait_s``
        Longest a single insert batch may stall on backpressure
        before proceeding anyway (maintenance must never turn the
        writer away permanently; the stall is observable via the
        ``insert.backpressure_stalls`` counter).
    ``merge_budget_per_tick``
        Merges one table may execute per maintenance tick.  The
        paper's merger does one at a time; a larger budget drains
        merge debt faster at the cost of burstier I/O.
    ``expire_ttl``
        Whether the scheduler reclaims TTL-expired tablets (on by
        default; benchmarks that measure merge behaviour in isolation
        turn it off).
    ``slo_p99_ms``
        Target p99 latency (milliseconds) for inserts and queries.
        When set, the scheduler runs an adaptive controller
        (:class:`~repro.core.iosched.SLOController`) that tunes the
        merge IO rate and the effective flush-pending limit against
        this target instead of treating ``max_flush_pending`` as a
        fixed depth - ``max_flush_pending`` then acts as the relaxed
        (healthy-system) ceiling.  ``None`` keeps the fixed-depth
        behaviour.
    ``slo_recover_fraction``
        Hysteresis band: the controller only relaxes its throttle
        once the observed p99 drops below this fraction of the SLO.
    """

    tick_interval_s: float = 1.0
    workers: int = 1
    max_flush_pending: Optional[int] = 8
    backpressure_wait_s: float = 5.0
    merge_budget_per_tick: int = 1
    expire_ttl: bool = True
    slo_p99_ms: Optional[float] = None
    slo_recover_fraction: float = 0.7

    def validate(self) -> None:
        """Raise ValueError on nonsensical settings."""
        if self.tick_interval_s <= 0:
            raise ValueError("tick_interval_s must be positive")
        if self.workers <= 0:
            raise ValueError("workers must be positive")
        if self.max_flush_pending is not None and self.max_flush_pending <= 0:
            raise ValueError(
                "max_flush_pending must be positive (or None to disable)")
        if self.backpressure_wait_s < 0:
            raise ValueError("backpressure_wait_s must be >= 0")
        if self.merge_budget_per_tick < 0:
            raise ValueError("merge_budget_per_tick must be >= 0")
        if self.slo_p99_ms is not None and self.slo_p99_ms <= 0:
            raise ValueError(
                "slo_p99_ms must be positive (or None to disable)")
        if not 0 < self.slo_recover_fraction <= 1:
            raise ValueError("slo_recover_fraction must be in (0, 1]")

    @classmethod
    def from_interval(cls, interval_s: float) -> "MaintenancePolicy":
        """Adapt the deprecated ``maintenance_interval_s`` kwarg."""
        return cls(tick_interval_s=interval_s)


@dataclass
class TableMaintenanceReport:
    """Work one maintenance pass did on one table.

    ``flushed`` counts tablets written by flushes, ``merged`` counts
    merges executed, ``expired`` counts tablets reclaimed by TTL, and
    ``errors`` holds stringified exceptions from work that failed
    (crash isolation: one failing table never stops the loop).
    """

    table: str = ""
    flushed: int = 0
    merged: int = 0
    expired: int = 0
    errors: List[str] = field(default_factory=list)

    @property
    def did_work(self) -> bool:
        """True when any work kind ran (errors count: a failing step
        is work the table still owes)."""
        return bool(self.flushed or self.merged or self.expired
                    or self.errors)

    def merge_from(self, other: "TableMaintenanceReport") -> None:
        """Accumulate another pass over the same table."""
        self.flushed += other.flushed
        self.merged += other.merged
        self.expired += other.expired
        self.errors.extend(other.errors)

    def as_dict(self) -> Dict[str, Any]:
        """The deprecated legacy shape (also the wire encoding)."""
        return {"flushed": self.flushed, "merged": self.merged,
                "expired": self.expired, "errors": list(self.errors)}

    # Deprecated dict-style access, kept so the pre-redesign callers
    # (``summary["flushed"]``) run unchanged through one release.

    def __getitem__(self, key: str) -> Any:
        if key not in _TABLE_KEYS:
            raise KeyError(key)
        return getattr(self, key)

    def get(self, key: str, default: Any = None) -> Any:
        try:
            return self[key]
        except KeyError:
            return default

    def keys(self) -> Iterator[str]:
        return iter(_TABLE_KEYS)


@dataclass
class MaintenanceReport:
    """One maintenance pass over a whole database, per table."""

    tables: Dict[str, TableMaintenanceReport] = field(default_factory=dict)

    @property
    def flushed(self) -> int:
        return sum(r.flushed for r in self.tables.values())

    @property
    def merged(self) -> int:
        return sum(r.merged for r in self.tables.values())

    @property
    def expired(self) -> int:
        return sum(r.expired for r in self.tables.values())

    @property
    def errors(self) -> List[str]:
        out: List[str] = []
        for name in sorted(self.tables):
            out.extend(f"{name}: {message}"
                       for message in self.tables[name].errors)
        return out

    @property
    def is_quiet(self) -> bool:
        """True when *no* work of any kind ran anywhere.

        This is the quiescence test ``maintenance_until_quiet`` uses;
        unlike the old hand-rolled ``flushed == 0 and merged == 0``
        check it also covers TTL expiry and errors, so a database
        still reclaiming (or still failing) is never declared quiet.
        """
        return not any(r.did_work for r in self.tables.values())

    def add(self, report: TableMaintenanceReport) -> None:
        existing = self.tables.get(report.table)
        if existing is None:
            self.tables[report.table] = report
        else:
            existing.merge_from(report)

    def merge_from(self, other: "MaintenanceReport") -> None:
        for report in other.tables.values():
            self.add(report)

    def totals(self) -> TableMaintenanceReport:
        """All tables folded into one line (the CLI renders this)."""
        total = TableMaintenanceReport(table="*")
        for report in self.tables.values():
            total.merge_from(report)
        return total

    def as_dict(self) -> Dict[str, Dict[str, Any]]:
        """The deprecated legacy shape (also the wire encoding)."""
        return {name: report.as_dict()
                for name, report in self.tables.items()}

    # Deprecated mapping-style access ({table: summary}) for callers
    # written against the old ``Dict[str, Dict[str, int]]`` return.

    def __getitem__(self, name: str) -> TableMaintenanceReport:
        return self.tables[name]

    def __contains__(self, name: str) -> bool:
        return name in self.tables

    def __iter__(self) -> Iterator[str]:
        return iter(self.tables)

    def __len__(self) -> int:
        return len(self.tables)

    def keys(self):
        return self.tables.keys()

    def values(self):
        return self.tables.values()

    def items(self):
        return self.tables.items()
