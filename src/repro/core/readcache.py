"""The read-path cache subsystem: decoded blocks, parsed footers,
tablet pruning, and hot latest-row lookups.

The paper's two-dimensional clustering (§3) exists so a dashboard's
read rectangles touch few tablets and few blocks - but without a
cache, *repeated* rectangles pay the full decompress+decode cost every
time, and every query still sweeps the whole tablet list to find the
overlapping ones.  This module removes both costs:

* :class:`ReadCache` - one engine-wide, byte-budgeted LRU over
  **decoded blocks** (row tuples, ready to merge) plus a side cache of
  **parsed footers**, shared by every table of a database.  A warm
  query never touches the disk model, zlib, or the row codec.
* :class:`TabletPruneIndex` - a per-table interval index over tablet
  timespans (sorted by ``min_ts`` with a running ``max_ts`` prefix
  maximum), plus per-tablet key-range zone maps, so query planning is
  O(log n + answer) instead of a linear sweep of ``on_disk_tablets``.
* :class:`LatestRowCache` - a tiny per-table LRU for ``latest(prefix)``
  hot lookups (the §3.4.5 dashboard pattern), invalidated by inserts
  that cover the prefix and by a table-level generation counter.

Invalidation model
------------------

Tablet files are immutable, so a cached block or footer can only go
stale by *identity* confusion, never by content change.  The cache
therefore never trusts caller-supplied tablet ids (which recur across
drop/recreate): each live tablet is registered and assigned a
process-unique **uid**, and all cache keys embed that uid.  Every
mutation that removes or replaces a tablet (merge, TTL expiry,
bulk-delete rewrite, cold migration, drop) invalidates the uid; a new
tablet - even one reusing a tablet id or filename - gets a fresh uid
and can never alias the old entries.

The latest-row cache has real content staleness (a newer row can
arrive), so it carries a per-table **generation counter**: bumped by
every mutation path, observable via the ``readcache.generation``
counter and ``stats_summary()["cache_generation"]``, and checked on
every lookup, so a stale entry can never be served.
"""

from __future__ import annotations

import bisect
import itertools
import threading
from collections import OrderedDict
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from ..obs.metrics import NULL_REGISTRY
from .row import KeyRange, TimeRange

# Rough per-row Python object overhead charged on top of the decoded
# payload bytes, so the byte budget tracks resident size rather than
# just on-disk size.
ROW_OVERHEAD_BYTES = 56


class CachedBlock:
    """One decoded block: row tuples plus (lazily) their keys.

    ``keys`` is filled by the first scan that needs it, so the key
    extraction cost is also paid at most once per cached block.
    ``columns`` is the column-major transpose, filled by the first
    vectorized aggregate that hits a warm block; it shares the same
    value objects as ``rows``, so only the container overhead is new.
    """

    __slots__ = ("rows", "keys", "columns", "nbytes")

    def __init__(self, rows: List[Tuple[Any, ...]], nbytes: int,
                 keys: Optional[List[Tuple[Any, ...]]] = None):
        self.rows = rows
        self.keys = keys
        self.columns = None
        self.nbytes = nbytes


class ReadCache:
    """Engine-wide byte-budgeted LRU over decoded blocks and footers.

    One instance is shared by every table of a :class:`LittleTable`
    (the budget is global, like an OS page cache); a standalone
    :class:`~repro.core.table.Table` gets a private one.  All methods
    are thread-safe: the network server runs tables on separate
    connection threads, and they share this cache.

    ``budget_bytes <= 0`` disables block caching entirely (gets miss,
    puts drop) while keeping uid registration and footer caching
    available; pass ``footer_cache=False`` too for a fully inert cache.
    """

    def __init__(self, budget_bytes: int, metrics=None,
                 footer_cache: bool = True):
        self.budget_bytes = budget_bytes
        self.footer_cache_enabled = footer_cache
        m = metrics if metrics is not None else NULL_REGISTRY
        self._m_hits = m.counter("readcache.block.hits")
        self._m_misses = m.counter("readcache.block.misses")
        self._m_evictions = m.counter("readcache.block.evictions")
        self._m_invalidations = m.counter("readcache.invalidations")
        self._m_footer_hits = m.counter("readcache.footer.hits")
        self._m_footer_misses = m.counter("readcache.footer.misses")
        self._g_resident = m.gauge("readcache.block.resident_bytes")
        self._g_entries = m.gauge("readcache.block.entries")
        self._lock = threading.Lock()
        self._uids = itertools.count(1)
        self._blocks: "OrderedDict[Tuple[int, int], CachedBlock]" = \
            OrderedDict()
        self._footers: Dict[int, Any] = {}
        # uid -> block indexes currently cached, for O(entries-of-uid)
        # invalidation instead of a full-cache sweep.
        self._uid_blocks: Dict[int, Set[int]] = {}
        self._resident_bytes = 0

    # -------------------------------------------------------------- uids

    def allocate_uid(self) -> int:
        """A process-unique identity for one live tablet file."""
        return next(self._uids)

    # ------------------------------------------------------------ blocks

    def get_block(self, uid: int, index: int) -> Optional[CachedBlock]:
        """The cached decode of block ``index``, or None (a miss)."""
        if self.budget_bytes <= 0:
            return None
        with self._lock:
            entry = self._blocks.get((uid, index))
            if entry is None:
                self._m_misses.inc()
                return None
            self._blocks.move_to_end((uid, index))
            self._m_hits.inc()
            return entry

    def put_block(self, uid: int, index: int,
                  rows: List[Tuple[Any, ...]], payload_bytes: int,
                  keys: Optional[List[Tuple[Any, ...]]] = None
                  ) -> Optional[CachedBlock]:
        """Admit one decoded block; evicts LRU entries past the budget.

        Returns the cache entry (so the caller can keep using the
        shared object), or None when caching is disabled.
        """
        if self.budget_bytes <= 0:
            return None
        nbytes = payload_bytes + ROW_OVERHEAD_BYTES * len(rows)
        entry = CachedBlock(rows, nbytes, keys)
        with self._lock:
            key = (uid, index)
            old = self._blocks.pop(key, None)
            if old is not None:
                self._resident_bytes -= old.nbytes
            self._blocks[key] = entry
            self._uid_blocks.setdefault(uid, set()).add(index)
            self._resident_bytes += nbytes
            while self._resident_bytes > self.budget_bytes and self._blocks:
                evicted_key, evicted = self._blocks.popitem(last=False)
                self._resident_bytes -= evicted.nbytes
                self._uid_blocks.get(evicted_key[0], set()).discard(
                    evicted_key[1])
                self._m_evictions.inc()
            self._publish_gauges()
        return entry

    def _publish_gauges(self) -> None:
        self._g_resident.set(self._resident_bytes)
        self._g_entries.set(len(self._blocks))

    # ----------------------------------------------------------- footers

    def get_footer(self, uid: int) -> Optional[Any]:
        """The cached parsed footer for a tablet uid, or None."""
        if not self.footer_cache_enabled:
            return None
        with self._lock:
            footer = self._footers.get(uid)
        if footer is None:
            self._m_footer_misses.inc()
        else:
            self._m_footer_hits.inc()
        return footer

    def put_footer(self, uid: int, footer: Any) -> None:
        if not self.footer_cache_enabled:
            return
        with self._lock:
            self._footers[uid] = footer

    # ------------------------------------------------------ invalidation

    def invalidate_tablet(self, uid: int) -> int:
        """Drop every entry (blocks + footer) for one tablet uid.

        Called whenever the tablet's file is deleted or replaced;
        returns the number of entries dropped.
        """
        dropped = 0
        with self._lock:
            if self._footers.pop(uid, None) is not None:
                dropped += 1
            for index in self._uid_blocks.pop(uid, ()):  # noqa: B020
                entry = self._blocks.pop((uid, index), None)
                if entry is not None:
                    self._resident_bytes -= entry.nbytes
                    dropped += 1
            self._publish_gauges()
        if dropped:
            self._m_invalidations.inc(dropped)
        return dropped

    def invalidate_tablets(self, uids: Iterable[int]) -> int:
        return sum(self.invalidate_tablet(uid) for uid in list(uids))

    # -------------------------------------------------------------- stats

    @property
    def resident_bytes(self) -> int:
        return self._resident_bytes

    @property
    def entry_count(self) -> int:
        return len(self._blocks)


#: Cache used when none is supplied: registration works (uids are
#: process-unique) but nothing is ever stored.
NULL_READ_CACHE = ReadCache(budget_bytes=0, footer_cache=False)


class TabletPruneIndex:
    """Interval index + zone maps over a table's on-disk tablets.

    Rebuilt lazily whenever the descriptor generation changes (every
    tablet-set mutation saves the descriptor and bumps it).  Tablets
    are sorted by ``min_ts``; ``select`` binary-searches the sorted
    order and walks backwards until a running prefix-maximum of
    ``max_ts`` proves no earlier tablet can overlap - O(log n + k) for
    the mostly-disjoint timespans two-dimensional clustering produces
    (§3.4), against O(n) for the old linear sweep.

    Key-dimension pruning uses per-tablet zone maps: the first and
    last primary key each tablet holds (recorded by the writer,
    persisted in the descriptor).  A tablet whose whole key interval
    falls outside the query's key range is skipped without opening its
    reader.  Tablets from pre-zone-map descriptors (``min_key`` is
    None) are never key-pruned.

    Concurrency: the built index lives in one immutable state tuple
    bound to a single attribute, so concurrent off-lock readers either
    see a complete prior build or trigger a (idempotent) rebuild of
    their own - never a half-written index.  Queries pass their
    snapshot explicitly via :meth:`select_snapshot`; the generation
    travels with the snapshot, captured under the same lock hold as
    the tablet list, so a swap racing the query cannot pair a new
    generation with an old list.
    """

    # One immutable tuple: (generation, tablets_by_min_ts, min_ts list,
    # prefix-max-ts list).  Rebuilds replace the whole binding.
    _EMPTY = (None, [], [], [])

    def __init__(self):
        self._state: Tuple[Optional[int], List[Any], List[int],
                           List[int]] = self._EMPTY

    @staticmethod
    def _build(generation: int, source: List[Any]):
        tablets = sorted(source, key=lambda t: (t.min_ts, t.tablet_id))
        min_ts = [t.min_ts for t in tablets]
        prefix_max: List[int] = []
        running = None
        for meta in tablets:
            running = meta.max_ts if running is None else max(
                running, meta.max_ts)
            prefix_max.append(running)
        return (generation, tablets, min_ts, prefix_max)

    def select(self, descriptor, time_range: TimeRange,
               key_range: Optional[KeyRange] = None
               ) -> Tuple[List[Any], int]:
        """:meth:`select_snapshot` against the descriptor's live state
        (single-threaded/offline callers; queries snapshot first)."""
        return self.select_snapshot(descriptor.generation,
                                    descriptor.tablets, time_range,
                                    key_range)

    def select_snapshot(self, generation: int, source: List[Any],
                        time_range: TimeRange,
                        key_range: Optional[KeyRange] = None
                        ) -> Tuple[List[Any], int]:
        """Tablets that may hold rows in the query rectangle.

        ``(generation, source)`` is the caller's consistent snapshot of
        the copy-on-write tablet list.  Returns ``(selected,
        pruned_count)`` where ``selected`` is in ``min_ts`` order and
        ``pruned_count`` is how many on-disk tablets were skipped
        without opening a reader.
        """
        state = self._state
        if state[0] != generation:
            state = self._build(generation, source)
            self._state = state
        _generation, tablets, min_ts_list, prefix_max_ts = state
        total = len(tablets)
        if not total:
            return [], 0
        ts_min = time_range.min_ts
        ts_max = time_range.max_ts
        # Tablets with min_ts > ts_max cannot overlap.
        high = (bisect.bisect_right(min_ts_list, ts_max)
                if ts_max is not None else total)
        selected: List[Any] = []
        for index in range(high - 1, -1, -1):
            if ts_min is not None:
                # No tablet at or before ``index`` reaches ts_min:
                # the prefix maximum bounds every earlier max_ts.
                if prefix_max_ts[index] < ts_min:
                    break
                if tablets[index].max_ts < ts_min:
                    continue
            if key_range is not None and _zone_map_excludes(
                    tablets[index], key_range):
                continue
            selected.append(tablets[index])
        selected.reverse()
        return selected, total - len(selected)


def _zone_map_excludes(meta, key_range: KeyRange) -> bool:
    """True when the tablet's key interval cannot intersect the range.

    Uses the monotone :meth:`KeyRange.before_range` /
    :meth:`KeyRange.after_range` predicates: if the tablet's *largest*
    key is still below the range, or its *smallest* key already above
    it, no row can qualify.
    """
    if meta.min_key is None or meta.max_key is None:
        return False
    return (key_range.before_range(tuple(meta.max_key))
            or key_range.after_range(tuple(meta.min_key)))


class LatestEntry:
    """One cached ``latest(prefix)`` answer.

    ``row`` is the table's *global* latest row for the prefix (the
    search walks timespan groups newest-first, so a non-None result is
    always the overall newest).  ``none_cutoff`` records, for a None
    answer, the oldest timestamp the search was allowed to consider:
    "no row at or after ``none_cutoff``".  ``generation`` pins the
    entry to the table's cache generation.
    """

    __slots__ = ("generation", "row", "none_cutoff")

    def __init__(self, generation: int, row: Optional[Tuple[Any, ...]],
                 none_cutoff: Optional[int]):
        self.generation = generation
        self.row = row
        self.none_cutoff = none_cutoff


_MISS = object()
#: Sentinel distinguishing "no cached answer" from a cached None.
LATEST_MISS = _MISS


class LatestRowCache:
    """Per-table LRU for hot ``latest(prefix)`` lookups (§3.4.5).

    The Dashboard's front page asks for the newest status row of the
    same devices over and over; each answer here saves a descending
    multi-tablet merge.  Correctness:

    * any insert whose key starts with a cached prefix drops that
      entry (:meth:`invalidate_key`);
    * every table mutation (merge, TTL, bulk delete, migration,
      schema change) bumps the table's generation, orphaning all
      entries at once;
    * TTL / lookback windows are re-checked at lookup time against the
      entry's timestamp, so a cached row is never served from beyond
      the caller's window - and because the cached row is the global
      latest, a row older than the window proves the answer is None.

    Thread safety: lookups run off the table's state lock (the read
    path is non-blocking), inserts invalidate under it, so every
    method takes the cache's own small lock; holds are O(1)-ish and
    never nest inside another lock acquisition.
    """

    def __init__(self, capacity: int, metrics=None):
        self.capacity = capacity
        m = metrics if metrics is not None else NULL_REGISTRY
        self._m_hits = m.counter("readcache.latest.hits")
        self._m_misses = m.counter("readcache.latest.misses")
        self._m_invalidations = m.counter("readcache.latest.invalidations")
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Tuple[Any, ...], LatestEntry]" = \
            OrderedDict()
        # Lengths of prefixes currently cached -> entry count, so
        # insert-time invalidation probes one dict key per distinct
        # length instead of scanning the cache.
        self._lengths: Dict[int, int] = {}

    def lookup(self, prefix: Tuple[Any, ...], generation: int,
               cutoff: Optional[int], ts_of) -> Any:
        """A cached answer (row or None), or the ``MISS`` sentinel.

        ``cutoff`` is the effective lower timestamp bound (TTL and/or
        max-lookback) for *this* lookup; ``ts_of`` extracts a row's
        timestamp.
        """
        if self.capacity <= 0:
            return _MISS
        with self._lock:
            entry = self._entries.get(prefix)
            if entry is None or entry.generation != generation:
                self._m_misses.inc()
                return _MISS
            if entry.row is not None:
                self._entries.move_to_end(prefix)
                self._m_hits.inc()
                if cutoff is not None and ts_of(entry.row) < cutoff:
                    # The global latest is older than the caller's
                    # window, so nothing qualifies.
                    return None
                return entry.row
            # Cached None: valid only if this lookup's window is no
            # wider (its cutoff is at least as recent) than the one
            # that proved emptiness.  none_cutoff None means "table
            # had no such row at all", valid for every window.
            if entry.none_cutoff is None or (
                    cutoff is not None and cutoff >= entry.none_cutoff):
                self._entries.move_to_end(prefix)
                self._m_hits.inc()
                return None
            self._m_misses.inc()
            return _MISS

    @property
    def miss_sentinel(self) -> Any:
        return _MISS

    def store(self, prefix: Tuple[Any, ...], generation: int,
              row: Optional[Tuple[Any, ...]],
              cutoff: Optional[int]) -> None:
        if self.capacity <= 0:
            return
        with self._lock:
            old = self._entries.pop(prefix, None)
            if old is not None:
                self._dec_length(len(prefix))
            self._entries[prefix] = LatestEntry(
                generation, row, cutoff if row is None else None)
            self._lengths[len(prefix)] = \
                self._lengths.get(len(prefix), 0) + 1
            while len(self._entries) > self.capacity:
                evicted_prefix, _entry = self._entries.popitem(last=False)
                self._dec_length(len(evicted_prefix))

    def _dec_length(self, length: int) -> None:
        count = self._lengths.get(length, 0) - 1
        if count <= 0:
            self._lengths.pop(length, None)
        else:
            self._lengths[length] = count

    def invalidate_key(self, key: Tuple[Any, ...]) -> None:
        """Drop entries whose prefix covers an inserted row's key."""
        # Unlocked emptiness probe: this runs once per inserted row,
        # and an insert-heavy table with no latest() traffic should
        # not pay a lock round-trip per row.  A racing put() after the
        # probe is benign - the entry it caches already reflects the
        # row being inserted or loses to the insert's generation bump.
        if not self._entries:
            return
        with self._lock:
            if not self._entries:
                return
            for length in list(self._lengths):
                entry = self._entries.pop(key[:length], None)
                if entry is not None:
                    self._dec_length(length)
                    self._m_invalidations.inc()

    def clear(self) -> int:
        with self._lock:
            dropped = len(self._entries)
            if dropped:
                self._m_invalidations.inc(dropped)
            self._entries.clear()
            self._lengths.clear()
            return dropped

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
