"""Startup scrub: crash-garbage collection and corruption quarantine.

LittleTable's durability anchor is the atomic descriptor swap
(paper §3.2): a crash leaves either the old or the new descriptor,
never a torn one.  Everything else on disk falls into exactly three
classes after a crash:

* **Durable tablets** - files the descriptor references.  These were
  fully written and fsynced before the swap that published them.
* **Crash garbage** - tablet files no descriptor references (a flush
  or merge died before its swap) and stale ``descriptor.json.tmp-*``
  files (a save died between write and rename).  Neither was ever
  durable, so deleting them cannot lose acknowledged data; deleting
  the stale temps also prevents a name collision with the reopened
  table's own first save (generations restart at 1 after reopen).
* **Damaged durables** - referenced files that are missing, truncated,
  or fail their trailer/footer checksums (format v2.1).  The scrub
  moves damaged files into ``quarantine/`` (never deletes them - an
  operator may recover blocks by hand) and drops them from the
  descriptor so the table reopens serving everything that is still
  intact.  A referenced file that is *missing* outright is reported
  but left referenced: there is nothing to preserve, and the first
  read fails loudly rather than silently shrinking the result set.

The scrub verifies descriptors (their own body CRC checks inside
``TableDescriptor.from_json``) and tablet *trailers and footers* only;
per-block CRCs are verified lazily on read, and exhaustively by
``ltdb fsck``.  A corrupt published descriptor still raises
:class:`CorruptTabletError` out of the scrub - the root metadata has
no redundant copy to fall back to, and limping on without it would
silently drop every tablet of the table.

All verification reads and garbage moves go through the raw storage
backend and the model's bookkeeping calls, not ``SimulatedDisk``
reads: the scrub is an administrative pass whose cost is not part of
the paper's workload measurements, and it must not consume armed
failpoints meant for the workload under test.  Descriptor rewrites
(dropping quarantined tablets) do use the normal atomic save path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..disk.storage import StorageError
from ..disk.vfs import SimulatedDisk
from ..obs.metrics import NULL_REGISTRY
from ..util.checksum import crc32c
from .descriptor import DESCRIPTOR_FILENAME, TableDescriptor
from .durability import DurabilityPolicy
from .tablet import CHECKSUM_MAGIC, CHECKSUM_TRAILER_BYTES, TRAILER_BYTES, TabletMeta
from .wal import is_wal_filename

QUARANTINE_PREFIX = "quarantine/"


@dataclass
class ScrubReport:
    """What one startup scrub found and did."""

    orphans_removed: List[str] = field(default_factory=list)
    temps_removed: List[str] = field(default_factory=list)
    quarantined: List[str] = field(default_factory=list)
    issues: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when the scrub found nothing to fix or report."""
        return not (self.orphans_removed or self.temps_removed
                    or self.quarantined or self.issues)

    def as_dict(self) -> dict:
        return {
            "orphans_removed": list(self.orphans_removed),
            "temps_removed": list(self.temps_removed),
            "quarantined": list(self.quarantined),
            "issues": list(self.issues),
        }


def verify_tablet_file(storage, meta: TabletMeta) -> Optional[str]:
    """Cheap integrity check of one tablet file against its metadata.

    Returns a human-readable problem description, or None when the
    file looks sound.  Checks existence, exact size, trailer sanity,
    and (for v2.1 files) the footer CRC - the structures a reader
    must trust before it can even locate blocks.  Block payload CRCs
    are left to the read path and ``ltdb fsck``.
    """
    try:
        size = storage.size(meta.filename)
    except StorageError:
        return "missing file"
    if size != meta.size_bytes:
        return f"size {size} != descriptor size {meta.size_bytes}"
    if size < TRAILER_BYTES:
        return f"file too small ({size} bytes)"
    tail_len = min(size, CHECKSUM_TRAILER_BYTES)
    tail = storage.read(meta.filename, size - tail_len, tail_len)
    if (tail_len == CHECKSUM_TRAILER_BYTES
            and tail[20:24] == CHECKSUM_MAGIC):
        footer_size = int.from_bytes(tail[0:8], "little")
        footer_offset = int.from_bytes(tail[8:16], "little")
        footer_crc = int.from_bytes(tail[16:20], "little")
        trailer_bytes = CHECKSUM_TRAILER_BYTES
    else:
        trailer = tail[-TRAILER_BYTES:]
        footer_size = int.from_bytes(trailer[:8], "little")
        footer_offset = int.from_bytes(trailer[8:16], "little")
        footer_crc = None
        trailer_bytes = TRAILER_BYTES
    compressed_len = size - trailer_bytes - footer_offset
    if compressed_len < 0 or footer_offset > size or footer_size <= 0:
        return "bad trailer"
    if footer_crc is not None:
        compressed = storage.read(meta.filename, footer_offset,
                                  compressed_len)
        if crc32c(compressed) != footer_crc:
            return "footer checksum mismatch"
    return None


def quarantine_file(disk: SimulatedDisk, filename: str) -> str:
    """Move ``filename`` under ``quarantine/``; returns the new name.

    Raw storage move plus model bookkeeping (see module docstring).
    An older quarantined copy of the same name is replaced - the
    freshest evidence wins.
    """
    destination = f"{QUARANTINE_PREFIX}{filename}"
    if disk.storage.exists(destination):
        disk.storage.delete(destination)
        disk.model.release(destination)
    disk.storage.rename(filename, destination)
    disk.model.rename(filename, destination)
    return destination


def startup_scrub(disk: SimulatedDisk, metrics=None) -> ScrubReport:
    """Verify every table's on-disk state; clean up crash aftermath.

    See the module docstring for the exact rules.  Raises
    :class:`~repro.core.errors.CorruptTabletError` if a published
    descriptor is itself corrupt; everything else is handled and
    reported in the returned :class:`ScrubReport`.
    """
    registry = metrics if metrics is not None else NULL_REGISTRY
    report = ScrubReport()
    storage = disk.storage
    for name in TableDescriptor.list_tables(disk):
        directory = f"tables/{name}/"
        files = [f for f in storage.list(directory)
                 if not f.startswith(QUARANTINE_PREFIX)]
        # 1. Stale descriptor temps: a save died between write and
        # rename.  Never durable; also a collision hazard (reopened
        # tables restart their generation counter).
        temp_prefix = f"{directory}{DESCRIPTOR_FILENAME}.tmp-"
        for temp in [f for f in files if f.startswith(temp_prefix)]:
            storage.delete(temp)
            disk.model.release(temp)
            report.temps_removed.append(temp)
        # 2. The descriptor itself.  Corrupt -> fail loudly (the body
        # CRC inside from_json, or a parse error, raises here).
        descriptor = TableDescriptor.load(disk, name)
        # 3. Referenced hot tablets: verify, quarantine the damaged.
        kept: List[TabletMeta] = []
        changed = False
        for meta in descriptor.tablets:
            if meta.tier != "hot":
                kept.append(meta)
                continue
            problem = verify_tablet_file(storage, meta)
            if problem is None:
                kept.append(meta)
            elif problem == "missing file":
                # Nothing to preserve; keep the reference so reads
                # fail loudly instead of silently losing the range.
                report.issues.append(f"{meta.filename}: missing file")
                kept.append(meta)
            else:
                moved = quarantine_file(disk, meta.filename)
                report.quarantined.append(meta.filename)
                report.issues.append(
                    f"{meta.filename}: {problem} (moved to {moved})")
                changed = True
        # 4. Orphan tablet files: present on disk, referenced by no
        # tier of the descriptor.  A flush/merge died before its swap;
        # the rows were never durable (still memtable-resident or
        # still covered by the pre-merge tablets).
        referenced = {meta.filename for meta in descriptor.tablets}
        for filename in files:
            if (filename.startswith(f"{directory}tab-")
                    and filename.endswith(".lt")
                    and filename not in referenced):
                storage.delete(filename)
                disk.model.release(filename)
                report.orphans_removed.append(filename)
        # 5. WAL segments: recognized by name, never treated as orphan
        # tablets.  For a wal-tier table they belong to replay and are
        # left exactly in place.  A zero-byte segment holds nothing (an
        # append crashed before writing a single frame) and is safe to
        # reclaim.  Segments under a table whose descriptor says tier
        # ``none`` are unreachable - no replay will ever read them - so
        # they are *quarantined*, not deleted: they may hold
        # acknowledged rows from a session that ran with a stronger
        # database-default policy.
        try:
            wal_tier = DurabilityPolicy.from_dict(
                descriptor.durability).wal_enabled
        except ValueError:
            wal_tier = True  # unparseable policy: keep, don't quarantine
        for filename in files:
            if not is_wal_filename(filename):
                continue
            try:
                size = storage.size(filename)
            except StorageError:
                continue
            if size == 0:
                storage.delete(filename)
                disk.model.release(filename)
                report.orphans_removed.append(filename)
            elif not wal_tier:
                moved = quarantine_file(disk, filename)
                report.quarantined.append(filename)
                report.issues.append(
                    f"{filename}: WAL segment for a none-tier table"
                    f" (moved to {moved})")
        if changed:
            descriptor.tablets = kept
            descriptor.save(disk)
    # A snapshot manifest marks this directory as (also) a snapshot:
    # recognized by name, verified, reported when damaged - never
    # reclaimed as an unrecognized orphan.  Lazy import: snapshot.py
    # uses this module's tablet verifier.
    from .snapshot import SNAPSHOT_MANIFEST, verify_manifest

    if storage.exists(SNAPSHOT_MANIFEST):
        problem = verify_manifest(storage)
        if problem is not None:
            report.issues.append(f"{SNAPSHOT_MANIFEST}: {problem}")
    registry.counter("storage.scrub_runs").inc()
    if report.orphans_removed or report.temps_removed:
        registry.counter("storage.scrub_orphans_removed").inc(
            len(report.orphans_removed) + len(report.temps_removed))
    if report.quarantined:
        registry.counter("storage.scrub_quarantined").inc(
            len(report.quarantined))
    return report
