"""Engine tunables.

Defaults mirror the values the paper states explicitly:

* 16 MB flush size (§3.3: "we set the default flush size to 16 MB,
  which is large enough to sustain roughly 95% of the disk's peak
  write rate");
* 10-minute maximum in-memory tablet age (§3.4.1);
* 128 MB maximum merged tablet size (§5.1.3, "its default settings");
* 90-second delay before a freshly-written tablet may be merged
  (§5.1.3: "LittleTable waits until 90 seconds after a tablet is
  written before merging it");
* 64 kB on-disk blocks (§3.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..util.clock import MICROS_PER_MINUTE, micros_from_seconds

KIB = 1024
MIB = 1024 * 1024


@dataclass
class EngineConfig:
    """Tunables for a LittleTable instance."""

    block_size_bytes: int = 64 * KIB
    flush_size_bytes: int = 16 * MIB
    flush_age_micros: int = 10 * MICROS_PER_MINUTE
    max_merged_tablet_bytes: int = 128 * MIB
    merge_min_age_micros: int = micros_from_seconds(90)
    # Cap on flushed-but-not-yet-merged backlog used by the Figure 3
    # benchmark ("at any time there are at most 100 outstanding tablets
    # waiting to be flushed to disk"); None disables the cap.
    max_unflushed_tablets: int = 100
    # Server-side limit on rows returned per query command; the client
    # adaptor re-submits with an updated start bound (§3.5).
    server_row_limit: int = 65536
    # Compression codec for blocks and footers: "zlib" stands in for
    # the paper's LZO1X-1 (see DESIGN.md §2); "none" disables.
    compression: str = "zlib"
    # Build per-tablet key Bloom filters (paper §3.4.5's proposed
    # optimization; implemented here, on by default, ablatable).
    bloom_filters: bool = True
    bloom_bits_per_row: int = 10
    # Byte budget for the engine-wide decoded-block read cache (shared
    # across all tables of a database, LRU by decoded payload bytes
    # plus a per-row overhead estimate).  0 disables block caching;
    # footer caching rides on the same switch.  Warm queries served
    # from the cache skip the disk model, decompression, and row
    # decoding entirely.
    read_cache_bytes: int = 32 * MIB
    # Entry cap for each table's latest(prefix) hot-row cache
    # (invalidated by covering inserts and by any tablet-set or schema
    # mutation via the table's cache generation).  0 disables it.
    latest_cache_entries: int = 1024
    # Fraction of the containing period by which rollover merges are
    # delayed (scaled by a per-table pseudorandom value in [0, 1)).
    merge_rollover_delay_fraction: float = 1.0
    # On-disk block format for newly written tablets.  2 (the default)
    # writes column-major blocks with delta timestamps, prefix-
    # compressed key strings, and restart points (core/codec.py);
    # 1 writes the original row-at-a-time format.  Readers handle both
    # regardless of this setting - the tablet footer records which
    # format its blocks use - and merges rewrite v1 tablets as v2.
    block_format_version: int = 2
    # Content checksums (storage format v2.1): newly written tablets
    # carry a CRC per block plus footer and trailer CRCs, verified on
    # every disk read; descriptors carry a body CRC.  Pre-v2.1 files
    # stay readable either way; merges upgrade them.  Disabling only
    # affects newly written files.
    checksums: bool = True
    # Verify descriptors and tablet trailers when opening a database,
    # deleting crash garbage (orphan tablets, stale descriptor temps)
    # and quarantining corrupt tablet files into quarantine/.  Prefix
    # durability is preserved: only files the descriptor never
    # referenced are deleted; referenced-but-corrupt files are moved,
    # never destroyed.
    startup_scrub: bool = True
    # Reads that trip a checksum/corruption error quarantine the
    # offending tablet (descriptor drops it, file moves to
    # quarantine/).  The in-flight query still raises; later queries
    # proceed without the bad tablet.
    quarantine_on_corruption: bool = True
    # Ablation switches (DESIGN.md §5).  time_partitioning=False bins
    # all rows into one giant period - the §3.4.2 "too few tablets"
    # failure mode.  merge_policy: "adjacent-half" is the paper's
    # policy; "always-all" merges everything mergeable (maximum write
    # amplification); "never" disables merging (the §3.4.1 seek storm).
    time_partitioning: bool = True
    merge_policy: str = "adjacent-half"
    # Background-write IO budget (bytes/second) shared by every flush
    # and merge writer of the database: a token bucket paces tablet
    # block writes so a due merge dribbles its rewrite out instead of
    # monopolising the disk and spiking insert/query p99.  None
    # disables pacing.  When a latency SLO is set on the maintenance
    # policy (``slo_p99_ms``) the scheduler's controller modulates the
    # effective rate between 10% and 100% of this value.
    io_rate_limit_bytes_s: Optional[int] = None

    def validate(self) -> None:
        """Raise ValueError on nonsensical settings."""
        if self.block_size_bytes <= 0:
            raise ValueError("block_size_bytes must be positive")
        if self.flush_size_bytes <= 0:
            raise ValueError("flush_size_bytes must be positive")
        if self.max_merged_tablet_bytes < self.flush_size_bytes:
            raise ValueError("max merged tablet must be >= flush size")
        if self.compression not in ("zlib", "none"):
            raise ValueError(f"unknown compression codec {self.compression!r}")
        if self.merge_policy not in ("adjacent-half", "always-all", "never"):
            raise ValueError(f"unknown merge policy {self.merge_policy!r}")
        if self.server_row_limit <= 0:
            raise ValueError("server_row_limit must be positive")
        if self.read_cache_bytes < 0:
            raise ValueError("read_cache_bytes must be >= 0 (0 disables)")
        if self.latest_cache_entries < 0:
            raise ValueError("latest_cache_entries must be >= 0 (0 disables)")
        if self.block_format_version not in (1, 2):
            raise ValueError(
                f"unknown block format version {self.block_format_version!r}")
        if (self.io_rate_limit_bytes_s is not None
                and self.io_rate_limit_bytes_s <= 0):
            raise ValueError(
                "io_rate_limit_bytes_s must be positive (or None to disable)")


DEFAULT_CONFIG = EngineConfig()
