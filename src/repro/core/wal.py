"""The write-ahead log: segmented, CRC32C-framed, LSN-stamped.

The paper's LittleTable has no log - prefix durability via the atomic
descriptor swap is the whole story (§3).  Tables whose
:class:`~repro.core.durability.DurabilityPolicy` selects the ``wal``
or ``replicated`` tier get one of these per table: every acknowledged
insert batch is framed as one record, appended to the active segment,
and fsynced before the insert returns.  Replay at open re-inserts any
logged rows a crash caught still memtable-resident, so acknowledged
writes survive ``kill -9`` at every failpoint site.

Record frame (little-endian)::

    [u32 length]  bytes after this field (crc + body)
    [u32 crc32c]  over the body
    body: [u8 kind][u64 lsn][u32 schema_version][u32 row_count]
          kind 1 (ROWS):  row_count x ([u32 len][v1-encoded row bytes])
          kind 2 (BLOCK): one v2 column block holding the whole batch

A torn append persists a prefix of a record; the length/CRC frame
detects it and replay stops at the damaged tail - exactly the prefix
semantics the rest of the engine already guarantees.

Group commit: :meth:`WriteAheadLog.log_batch` only buffers (it runs
under the table's state lock and must stay O(memory)).
:meth:`WriteAheadLog.commit` runs off-lock: the first committer
becomes the *leader*, takes the whole buffer - including batches other
threads logged meanwhile - and appends it with one durable write;
followers whose LSN the leader covered return without touching disk.
A single-threaded writer degenerates to one append per batch, which
is what keeps WAL overhead within the benchmark gate.

Segments: the active segment rolls (is *sealed*) once it exceeds
``policy.wal_segment_bytes``.  Sealing is pure bookkeeping - the file
simply stops growing - but sealed segments are the unit of recycling
and of replication streaming.  Flush advances the log's *low-water
mark* (the lowest LSN any unflushed memtable still depends on);
segments wholly below it are deleted, so a quiescent, fully-flushed
table carries zero WAL files.

Recovery reads segments through the **raw storage backend**, never
``SimulatedDisk.read``: replay runs after the env failpoint hook arms
and must not consume faults meant for the workload under test (the
same discipline as :mod:`repro.core.recovery`).
"""

from __future__ import annotations

import re
import struct
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..disk.storage import StorageError
from ..disk.vfs import SimulatedDisk
from ..obs.metrics import NULL_REGISTRY
from ..util.checksum import crc32c
from .durability import DurabilityPolicy

#: Record kinds (the u8 after the CRC).  ``KIND_ROWS`` frames each
#: row's v1 encoding individually; ``KIND_BLOCK`` carries the whole
#: batch as one v2 column block (the hot insert path - one compiled
#: encode per batch, and replay decodes it in one compiled pass too).
#: The frame leaves room for checkpoint/schema markers without a
#: format bump.
KIND_ROWS = 1
KIND_BLOCK = 2

_FRAME = struct.Struct("<II")          # length, crc32c
_BODY_HEAD = struct.Struct("<BQII")    # kind, lsn, schema_version, row_count
_ROW_LEN = struct.Struct("<I")

_SEGMENT_RE = re.compile(r"wal-(\d{8})\.log$")


def wal_segment_filename(table_name: str, seq: int) -> str:
    """``tables/<name>/wal-<seq>.log`` - deliberately distinct from the
    ``tab-*.lt`` tablet pattern so the scrub's orphan rule never
    touches log segments."""
    return f"tables/{table_name}/wal-{seq:08d}.log"


def is_wal_filename(filename: str) -> bool:
    """True for any table's WAL segment path."""
    return _SEGMENT_RE.search(filename) is not None


@dataclass
class WalRecord:
    """One decoded log record: an insert batch.

    Exactly one of ``rows`` (per-row v1 encodings, ``KIND_ROWS``) or
    ``block`` (a v2 column block, ``KIND_BLOCK``) carries the data;
    ``row_count`` is authoritative either way.
    """

    lsn: int
    schema_version: int
    rows: List[bytes]
    block: Optional[bytes] = None
    row_count: int = 0

    def __post_init__(self) -> None:
        if self.block is None and not self.row_count:
            self.row_count = len(self.rows)

    def encode(self) -> bytes:
        if self.block is not None:
            body = _BODY_HEAD.pack(KIND_BLOCK, self.lsn,
                                   self.schema_version,
                                   self.row_count) + self.block
            return _FRAME.pack(len(body) + 4, crc32c(body)) + body
        body = bytearray(_BODY_HEAD.pack(KIND_ROWS, self.lsn,
                                         self.schema_version,
                                         len(self.rows)))
        for row in self.rows:
            body += _ROW_LEN.pack(len(row))
            body += row
        return _FRAME.pack(len(body) + 4, crc32c(bytes(body))) + body


def encode_record(lsn: int, schema_version: int,
                  rows: List[bytes]) -> bytes:
    return WalRecord(lsn, schema_version, rows).encode()


def iter_records(data: bytes, source: str, issues: List[str]):
    """Yield :class:`WalRecord` from one segment's bytes.

    Stops at the first torn or corrupt frame, appending a description
    to ``issues`` - everything before the damage replays, nothing
    after it (prefix semantics within the segment).
    """
    offset = 0
    total = len(data)
    while offset < total:
        if offset + _FRAME.size > total:
            issues.append(f"{source}: torn record header at byte {offset}")
            return
        length, stored_crc = _FRAME.unpack_from(data, offset)
        body_start = offset + _FRAME.size
        body_end = body_start + length - 4
        if length < 4 + _BODY_HEAD.size or body_end > total:
            issues.append(f"{source}: torn record at byte {offset}")
            return
        body = data[body_start:body_end]
        if crc32c(body) != stored_crc:
            issues.append(f"{source}: record checksum mismatch at "
                          f"byte {offset}")
            return
        kind, lsn, schema_version, row_count = _BODY_HEAD.unpack_from(body)
        if kind == KIND_BLOCK:
            yield WalRecord(lsn, schema_version, [],
                            block=body[_BODY_HEAD.size:],
                            row_count=row_count)
            offset = body_end
            continue
        if kind != KIND_ROWS:
            issues.append(f"{source}: unknown record kind {kind} at "
                          f"byte {offset}")
            return
        rows: List[bytes] = []
        pos = _BODY_HEAD.size
        ok = True
        for _ in range(row_count):
            if pos + _ROW_LEN.size > len(body):
                ok = False
                break
            (row_len,) = _ROW_LEN.unpack_from(body, pos)
            pos += _ROW_LEN.size
            if pos + row_len > len(body):
                ok = False
                break
            rows.append(body[pos:pos + row_len])
            pos += row_len
        if not ok:
            issues.append(f"{source}: malformed row framing at "
                          f"byte {offset}")
            return
        yield WalRecord(lsn, schema_version, rows)
        offset = body_end


@dataclass
class _Segment:
    seq: int
    filename: str
    min_lsn: Optional[int] = None
    max_lsn: Optional[int] = None
    size_bytes: int = 0
    sealed: bool = False


@dataclass
class WalReplayReport:
    """What replaying one table's log found and did."""

    records: int = 0
    rows_applied: int = 0
    rows_skipped: int = 0  # already durable in a tablet, or duplicates
    segments: int = 0
    issues: List[str] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "records": self.records,
            "rows_applied": self.rows_applied,
            "rows_skipped": self.rows_skipped,
            "segments": self.segments,
            "issues": list(self.issues),
        }


class WriteAheadLog:
    """One table's segmented log with group commit."""

    def __init__(self, disk: SimulatedDisk, table_name: str,
                 policy: DurabilityPolicy, metrics=None):
        self.disk = disk
        self.table_name = table_name
        self.policy = policy
        registry = metrics if metrics is not None else NULL_REGISTRY
        self._m_appends = registry.counter("wal.appends")
        self._m_bytes = registry.counter("wal.bytes_appended")
        self._m_records = registry.counter("wal.records")
        self._m_group = registry.counter("wal.group_committed_records")
        self._m_sealed = registry.counter("wal.segments_sealed")
        self._m_recycled = registry.counter("wal.segments_recycled")
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        # (lsn, framed bytes) batches logged but not yet appended.
        self._buffer: List[Tuple[int, bytes]] = []
        self._buffer_bytes = 0
        self._leader_active = False
        self._next_lsn = 1
        self._durable_lsn = 0
        self._low_water = 1
        self._seq = 1
        self._segments: List[_Segment] = []

    # ------------------------------------------------------------ state

    @property
    def next_lsn(self) -> int:
        return self._next_lsn

    @property
    def durable_lsn(self) -> int:
        return self._durable_lsn

    @property
    def low_water(self) -> int:
        return self._low_water

    def _filename(self, seq: int) -> str:
        return wal_segment_filename(self.table_name, seq)

    # --------------------------------------------------------- recovery

    def recover(self) -> Tuple[List[WalRecord], WalReplayReport]:
        """Scan existing segments (raw storage reads) at open.

        Returns the records to replay, in LSN order, plus a report.
        Bookkeeping is primed so a later flush recycles the old
        segments; appending always starts a *fresh* segment, never the
        tail of a possibly-torn old one.
        """
        report = WalReplayReport()
        records: List[WalRecord] = []
        storage = self.disk.storage
        prefix = f"tables/{self.table_name}/wal-"
        max_seq = 0
        for filename in sorted(storage.list(prefix)):
            match = _SEGMENT_RE.search(filename)
            if match is None:
                continue
            seq = int(match.group(1))
            max_seq = max(max_seq, seq)
            data = storage.read_all(filename)
            segment = _Segment(seq, filename, size_bytes=len(data),
                               sealed=True)
            for record in iter_records(data, filename, report.issues):
                records.append(record)
                if segment.min_lsn is None:
                    segment.min_lsn = record.lsn
                segment.max_lsn = record.lsn
            self._segments.append(segment)
            report.segments += 1
        records.sort(key=lambda r: r.lsn)
        report.records = len(records)
        if records:
            self._next_lsn = records[-1].lsn + 1
            self._durable_lsn = records[-1].lsn
        self._seq = max_seq + 1
        return records, report

    # ----------------------------------------------------- write path

    def log_batch(self, encoded_rows: List[bytes],
                  schema_version: int) -> int:
        """Buffer one insert batch; returns its LSN.

        Called under the table's state lock: no I/O here, ever.  The
        batch is not durable until :meth:`commit` returns for the LSN.
        """
        with self._lock:
            lsn = self._next_lsn
            self._next_lsn = lsn + 1
            framed = encode_record(lsn, schema_version, encoded_rows)
            self._buffer.append((lsn, framed))
            self._buffer_bytes += len(framed)
            return lsn

    def log_batch_block(self, block: bytes, row_count: int,
                        schema_version: int) -> int:
        """:meth:`log_batch` for a v2 column block (``KIND_BLOCK``).

        The hot insert path encodes its whole accepted batch with the
        schema's compiled block encoder and hands the payload over -
        one encode, one CRC, no per-row byte strings.  Replay decodes
        it in one compiled pass as well.
        """
        with self._lock:
            lsn = self._next_lsn
            self._next_lsn = lsn + 1
            body = _BODY_HEAD.pack(KIND_BLOCK, lsn, schema_version,
                                   row_count) + block
            framed = _FRAME.pack(len(body) + 4, crc32c(body)) + body
            self._buffer.append((lsn, framed))
            self._buffer_bytes += len(framed)
            return lsn

    def commit(self, lsn: int) -> None:
        """Block until every record up to ``lsn`` is durable.

        Group commit: the first thread to arrive leads, appending the
        whole buffer in one durable write; threads arriving while the
        leader's I/O is in flight wait at most ``group_commit_ms`` per
        check and usually find their LSN already covered.
        """
        wait_s = max(self.policy.group_commit_ms, 1.0) / 1000.0
        while True:
            with self._cond:
                if self._durable_lsn >= lsn:
                    return
                if self._leader_active:
                    self._cond.wait(wait_s)
                    continue
                self._leader_active = True
                pending = self._buffer
                pending_bytes = self._buffer_bytes
                self._buffer = []
                self._buffer_bytes = 0
                seq = self._seq
                highest = pending[-1][0] if pending else self._durable_lsn
            error: Optional[BaseException] = None
            try:
                if pending:
                    self.disk.append(self._filename(seq),
                                     b"".join(frame for _l, frame in pending))
            except BaseException as exc:  # includes simulated CrashPoint
                error = exc
            with self._cond:
                self._leader_active = False
                if error is None and pending:
                    self._durable_lsn = max(self._durable_lsn, highest)
                    self._note_appended_locked(seq, pending, pending_bytes)
                elif error is not None:
                    # Put the batches back so a retrying committer (or
                    # a later one) can still make them durable.
                    self._buffer = pending + self._buffer
                    self._buffer_bytes += pending_bytes
                self._cond.notify_all()
            if error is not None:
                raise error

    def _note_appended_locked(self, seq: int,
                              pending: List[Tuple[int, bytes]],
                              pending_bytes: int) -> None:
        segment = next((s for s in self._segments if s.seq == seq), None)
        if segment is None:
            segment = _Segment(seq, self._filename(seq))
            self._segments.append(segment)
        if segment.min_lsn is None:
            segment.min_lsn = pending[0][0]
        segment.max_lsn = pending[-1][0]
        segment.size_bytes += pending_bytes
        self._m_appends.inc()
        self._m_bytes.inc(pending_bytes)
        self._m_records.inc(len(pending))
        if len(pending) > 1:
            self._m_group.inc(len(pending) - 1)
        if (seq == self._seq
                and segment.size_bytes >= self.policy.wal_segment_bytes):
            self.disk.fire("wal.before_seal")
            segment.sealed = True
            self._seq = seq + 1
            self._m_sealed.inc()

    # -------------------------------------------------------- recycling

    def advance_low_water(self, low_lsn: int) -> int:
        """Everything below ``low_lsn`` is sealed into tablets; recycle
        segments wholly covered by it.  Returns segments deleted.

        The active segment is only recycled while nothing can still
        land in it: no batch buffered *and* no group-commit leader in
        flight.  The leader drains the buffer before its off-lock
        append, so an empty buffer alone proves nothing - recycling on
        that evidence would delete a file whose freshly appended,
        not-yet-tablet-covered records the leader is about to
        acknowledge.  With the leader excluded, ``max_lsn`` is
        post-append and the coverage check is exact.  Recycling the
        active segment also rolls the sequence so the next append
        starts a fresh file (a fully-flushed table ends with zero WAL
        files).
        """
        with self._cond:
            if low_lsn <= self._low_water:
                return 0
            self._low_water = low_lsn
            drop: List[_Segment] = []
            keep: List[_Segment] = []
            for segment in self._segments:
                covered = (segment.max_lsn is not None
                           and segment.max_lsn < low_lsn)
                if not covered:
                    keep.append(segment)
                    continue
                if segment.seq == self._seq:
                    if self._buffer or self._leader_active:
                        keep.append(segment)
                        continue
                    self._seq += 1
                drop.append(segment)
            self._segments = keep
        for segment in drop:
            self.disk.fire("wal.before_recycle")
            try:
                if self.disk.exists(segment.filename):
                    self.disk.delete(segment.filename)
            except StorageError:
                pass  # recycling is best-effort; replay dedups anyway
            self._m_recycled.inc()
        return len(drop)

    # ------------------------------------------------------ replication

    def read_records_after(self, from_lsn: int,
                           limit_bytes: int = 1 << 20) -> Tuple[bytes, int]:
        """Framed records with ``from_lsn < lsn <= durable_lsn``.

        Raw storage reads (replication streaming must not consume
        workload failpoints).  Returns ``(frames, last_lsn)`` where
        ``frames`` is a concatenation the follower feeds straight to
        :func:`iter_records`; bounded by ``limit_bytes`` per call.
        """
        with self._lock:
            durable = self._durable_lsn
            segments = [(s.filename, s.min_lsn, s.max_lsn)
                        for s in self._segments]
        if from_lsn >= durable:
            return b"", from_lsn
        storage = self.disk.storage
        out = bytearray()
        last = from_lsn
        issues: List[str] = []
        for filename, min_lsn, max_lsn in sorted(segments,
                                                 key=lambda s: s[0]):
            if max_lsn is None or max_lsn <= from_lsn:
                continue
            try:
                data = storage.read_all(filename)
            except StorageError:
                continue  # recycled between snapshot and read
            for record in iter_records(data, filename, issues):
                if record.lsn <= last or record.lsn > durable:
                    continue
                out += record.encode()
                last = record.lsn
                if len(out) >= limit_bytes:
                    return bytes(out), last
        return bytes(out), last

    # ----------------------------------------------------------- status

    def status(self) -> Dict[str, Any]:
        """JSON-safe operator view; the ``wal_status`` command's shape."""
        with self._lock:
            segments = [{
                "filename": s.filename,
                "min_lsn": s.min_lsn,
                "max_lsn": s.max_lsn,
                "size_bytes": s.size_bytes,
                "sealed": s.sealed,
            } for s in self._segments]
            return {
                "tier": self.policy.tier,
                "next_lsn": self._next_lsn,
                "durable_lsn": self._durable_lsn,
                "low_water": self._low_water,
                "buffered_records": len(self._buffer),
                "segment_count": len(segments),
                "wal_bytes": sum(s["size_bytes"] for s in segments),
                "segments": segments,
            }

    # ------------------------------------------------------------ close

    def sync(self) -> None:
        """Force any buffered batches durable (shutdown path)."""
        with self._lock:
            target = self._next_lsn - 1
        if target > self._durable_lsn:
            self.commit(target)

    def delete_files(self) -> None:
        """Remove every segment file (drop-table path)."""
        with self._cond:
            segments = self._segments
            self._segments = []
            self._buffer = []
            self._buffer_bytes = 0
        for segment in segments:
            try:
                if self.disk.exists(segment.filename):
                    self.disk.delete(segment.filename)
            except StorageError:
                pass
