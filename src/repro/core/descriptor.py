"""Table descriptor files.

Paper §3.2: "LittleTable caches the range of timestamps each tablet
contains, which we call a tablet's timespan, and it writes the list of
on-disk tablets and their timespans to a table descriptor file after
every change.  Once written, LittleTable atomically renames this file
to replace the previous version."

The descriptor is the table's only persistent metadata: current schema,
TTL, and the tablet list.  Because every change replaces it atomically,
a crash leaves either the old or the new version - never a torn one -
which is the anchor of LittleTable's crash-recovery story.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import List, Optional

from ..disk.vfs import SimulatedDisk
from ..util.checksum import crc32c
from .errors import ChecksumError, CorruptTabletError
from .schema import Schema
from .tablet import TabletMeta

DESCRIPTOR_FILENAME = "descriptor.json"


@dataclass
class TableDescriptor:
    """The persistent state of one table."""

    name: str
    schema: Schema
    ttl_micros: Optional[int] = None
    tablets: List[TabletMeta] = field(default_factory=list)
    next_tablet_id: int = 1
    # Monotone counter bumped on every save, used to name temp files.
    generation: int = 0
    # The table's DurabilityPolicy as a dict (durability.py), or None.
    # Only present when the policy differs from the paper-faithful
    # default, so ``none``-tier descriptors are byte-identical to
    # those written before durability tiers existed.
    durability: Optional[dict] = None

    def directory(self) -> str:
        return f"tables/{self.name}"

    def path(self) -> str:
        return f"{self.directory()}/{DESCRIPTOR_FILENAME}"

    def tablet_filename(self, tablet_id: int) -> str:
        return f"{self.directory()}/tab-{tablet_id:08d}.lt"

    def allocate_tablet_id(self) -> int:
        tablet_id = self.next_tablet_id
        self.next_tablet_id += 1
        return tablet_id

    def to_json(self) -> str:
        # The descriptor's own CRC (v2.1 checksummed storage) covers
        # the canonical sorted-keys dump of every other field, so bit
        # rot in the root metadata is detected, not parsed into a
        # plausible-but-wrong tablet list.  json.dumps is canonical
        # for JSON-safe values with sort_keys, so a load/dump round
        # trip re-verifies.
        payload = {
            "name": self.name,
            "schema": self.schema.to_dict(),
            "ttl_micros": self.ttl_micros,
            "tablets": [t.to_dict() for t in self.tablets],
            "next_tablet_id": self.next_tablet_id,
        }
        if self.durability:
            payload["durability"] = self.durability
        body = json.dumps(payload, sort_keys=True)
        payload["checksum"] = crc32c(body.encode("utf-8"))
        return json.dumps(payload, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "TableDescriptor":
        try:
            data = json.loads(text)
            stored_crc = data.pop("checksum", None)
            if stored_crc is not None:
                body = json.dumps(data, sort_keys=True)
                if crc32c(body.encode("utf-8")) != stored_crc:
                    raise ChecksumError("descriptor checksum mismatch")
            return cls(
                name=data["name"],
                schema=Schema.from_dict(data["schema"]),
                ttl_micros=data.get("ttl_micros"),
                tablets=[TabletMeta.from_dict(t) for t in data["tablets"]],
                next_tablet_id=data["next_tablet_id"],
                durability=data.get("durability"),
            )
        except (KeyError, ValueError, TypeError) as exc:
            raise CorruptTabletError(f"bad descriptor: {exc}") from exc

    def save(self, disk: SimulatedDisk) -> None:
        """Write and atomically rename over the previous version."""
        self.generation += 1
        temp = f"{self.path()}.tmp-{self.generation}"
        disk.fire("descriptor.before_write")
        disk.write_file(temp, self.to_json().encode("utf-8"))
        disk.fire("descriptor.before_rename")
        disk.rename(temp, self.path())
        disk.fire("descriptor.after_rename")

    @classmethod
    def load(cls, disk: SimulatedDisk, name: str) -> "TableDescriptor":
        """Read a table's descriptor from disk."""
        path = f"tables/{name}/{DESCRIPTOR_FILENAME}"
        disk.open(path)
        raw = disk.read_all(path)
        try:
            text = raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise CorruptTabletError(f"bad descriptor: {exc}") from exc
        return cls.from_json(text)

    @staticmethod
    def exists(disk: SimulatedDisk, name: str) -> bool:
        return disk.exists(f"tables/{name}/{DESCRIPTOR_FILENAME}")

    @staticmethod
    def list_tables(disk: SimulatedDisk) -> List[str]:
        """Discover tables by their descriptor files."""
        names = []
        suffix = f"/{DESCRIPTOR_FILENAME}"
        for path in disk.list("tables/"):
            if path.endswith(suffix):
                names.append(path[len("tables/"):-len(suffix)])
        return sorted(names)
