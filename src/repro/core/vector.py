"""Vectorized query execution: column batches and aggregate kernels.

The paper's rollup/dashboard queries are scan-and-aggregate shaped
(Fig 9's scan mix is the canonical example).  Block format v2 already
stores tablets column-major; this module lets the aggregate path consume
those columns directly instead of round-tripping every value through a
per-row Python tuple and a per-row accumulator call:

* :class:`AggregateSpec` is the pushed-down plan fragment: the 2-D
  bounding box, the grouping dimensions (key columns and/or a timestamp
  bucket), the aggregate functions, and the residual comparisons.
* The kernels (:func:`key_bounds`, :func:`time_filter`,
  :func:`residual_filter`, :func:`accumulate`) work on whole decoded
  columns, refining a selection index list; the hot loops are slice
  operations and list comprehensions with inline comparisons.
* :class:`AggregatePartials` is the mergeable partial-aggregation state
  produced per tablet (and per shard): partial states combine with
  :meth:`~AggregatePartials.merge`, so sharded scatter-gather ships a
  handful of group slots instead of raw rows.

Partial aggregation is correct without any cross-source deduplication
because primary keys are unique across memtables and tablets (§3.4.4):
every logical row is aggregated exactly once no matter which source
holds it.  Each group's partial state is ``[count, total, min, max]``
per aggregate, which finalizes to the exact semantics of the row
oracle's accumulator (COUNT/SUM/AVG/MIN/MAX, AVG = total/count with
0.0 for empty, MIN/MAX None for empty).
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple

from .row import KeyRange, TimeRange

# Group label -> per-aggregate [count, total, min, max] slots.
GroupState = Dict[Any, List[List[Any]]]

_OPS = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


@dataclass(frozen=True)
class AggregateSpec:
    """A pushed-down aggregate scan over one table's bounding box.

    ``aggregates`` holds ``(FUNC, column_index)`` pairs where the index
    is ``None`` for ``COUNT(*)``.  ``group_indexes`` are schema column
    indexes in GROUP BY order; ``bucket_width`` (microseconds) appends a
    ``ts - ts % width`` time bucket as the last grouping dimension.
    ``residuals`` are ``(column_index, op, value)`` comparisons applied
    after the time filter, exactly like the executor's residual pass.
    """

    key_range: KeyRange
    time_range: TimeRange
    group_indexes: Tuple[int, ...]
    bucket_width: Optional[int]
    aggregates: Tuple[Tuple[str, Optional[int]], ...]
    residuals: Tuple[Tuple[int, str, Any], ...]

    @property
    def group_dims(self) -> int:
        return len(self.group_indexes) + (self.bucket_width is not None)


class AggregatePartials:
    """Mergeable partial-aggregation state for one source (or shard)."""

    __slots__ = ("groups",)

    def __init__(self, groups: Optional[GroupState] = None):
        self.groups: GroupState = groups if groups is not None else {}

    def merge(self, other: "AggregatePartials") -> None:
        """Fold ``other``'s group states into this one."""
        groups = self.groups
        for label, slots in other.groups.items():
            mine = groups.get(label)
            if mine is None:
                groups[label] = [list(slot) for slot in slots]
                continue
            for dst, src in zip(mine, slots):
                dst[0] += src[0]
                dst[1] += src[1]
                if src[2] is not None and (dst[2] is None or src[2] < dst[2]):
                    dst[2] = src[2]
                if src[3] is not None and (dst[3] is None or src[3] > dst[3]):
                    dst[3] = src[3]


def empty_slot() -> List[Any]:
    return [0, 0, None, None]


def finalize_value(func: str, slot: List[Any]) -> Any:
    """One aggregate's final value from its partial slot.

    Mirrors the row oracle's accumulator: AVG of an empty group is 0.0,
    MIN/MAX of an empty group are None, SUM starts from integer zero.
    """
    if func == "COUNT":
        return slot[0]
    if func == "SUM":
        return slot[1]
    if func == "AVG":
        return slot[1] / slot[0] if slot[0] else 0.0
    if func == "MIN":
        return slot[2]
    return slot[3]


def resolve_time_bounds(time_range: TimeRange, cutoff: Optional[int]
                        ) -> Tuple[Optional[int], Optional[int]]:
    """Collapse a TimeRange plus TTL cutoff to inclusive integer bounds.

    Timestamps are integers, so exclusive bounds shift by one and every
    later comparison is a plain ``lo <= ts <= hi``.  ``cutoff`` is the
    expiry threshold (``now - ttl``); rows strictly below it are dead.
    """
    lo = time_range.min_ts
    if lo is not None and not time_range.min_inclusive:
        lo += 1
    hi = time_range.max_ts
    if hi is not None and not time_range.max_inclusive:
        hi -= 1
    if cutoff is not None:
        lo = cutoff if lo is None else max(lo, cutoff)
    return lo, hi


def key_bounds(keys: List[Tuple[Any, ...]], key_range: KeyRange
               ) -> Tuple[int, int]:
    """The slice ``[lo, hi)`` of ``keys`` inside ``key_range``.

    ``keys`` is sorted, and :meth:`KeyRange.before_range` /
    :meth:`KeyRange.after_range` are monotone along it, so both edges
    binary-search instead of testing every row.
    """
    n = len(keys)
    lo, hi = 0, n
    if key_range.min_prefix is not None:
        before = key_range.before_range
        a, b = 0, n
        while a < b:
            mid = (a + b) // 2
            if before(keys[mid]):
                a = mid + 1
            else:
                b = mid
        lo = a
    if key_range.max_prefix is not None:
        after = key_range.after_range
        a, b = lo, n
        while a < b:
            mid = (a + b) // 2
            if after(keys[mid]):
                b = mid
            else:
                a = mid + 1
        hi = a
    return lo, hi


def time_filter(ts_col: List[int], lo: int, hi: int,
                tlo: Optional[int], thi: Optional[int]
                ) -> Optional[List[int]]:
    """Row indexes in ``[lo, hi)`` whose timestamp passes the bounds.

    Returns ``None`` when every row passes (the common case for a scan
    whose tablets were already time-pruned), so callers keep the pure
    slice path.
    """
    if tlo is None and thi is None:
        return None
    window = ts_col[lo:hi]
    if not window:
        return []
    if ((tlo is None or min(window) >= tlo)
            and (thi is None or max(window) <= thi)):
        return None
    rows = range(lo, hi)
    if tlo is None:
        return [i for i in rows if ts_col[i] <= thi]
    if thi is None:
        return [i for i in rows if ts_col[i] >= tlo]
    return [i for i in rows if tlo <= ts_col[i] <= thi]


def residual_filter(columns: List[List[Any]],
                    residuals: Iterable[Tuple[int, str, Any]],
                    sel: Optional[List[int]], lo: int, hi: int
                    ) -> Optional[List[int]]:
    """Refine the selection with residual comparisons, one column pass
    per predicate (inline comparisons, no per-row function calls)."""
    for index, op, value in residuals:
        col = columns[index]
        rows = range(lo, hi) if sel is None else sel
        if op == "=":
            sel = [i for i in rows if col[i] == value]
        elif op == "!=":
            sel = [i for i in rows if col[i] != value]
        elif op == "<":
            sel = [i for i in rows if col[i] < value]
        elif op == "<=":
            sel = [i for i in rows if col[i] <= value]
        elif op == ">":
            sel = [i for i in rows if col[i] > value]
        elif op == ">=":
            sel = [i for i in rows if col[i] >= value]
        else:
            raise ValueError(f"unknown residual operator {op!r}")
    return sel


def _labels(spec: AggregateSpec, columns: List[List[Any]], ts_index: int,
            sel: Optional[List[int]], lo: int, hi: int
            ) -> Optional[List[Any]]:
    """Per-row group labels for the selection; None when ungrouped.

    With a single grouping dimension labels are the raw values; with
    several they are tuples.  The row fallback and the executor use the
    same convention, so partial states merge label-for-label.
    """
    group_indexes = spec.group_indexes
    width = spec.bucket_width
    if not group_indexes and width is None:
        return None
    dims: List[List[Any]] = []
    for index in group_indexes:
        col = columns[index]
        dims.append(col[lo:hi] if sel is None else [col[i] for i in sel])
    if width is not None:
        ts_col = columns[ts_index]
        ts = ts_col[lo:hi] if sel is None else [ts_col[i] for i in sel]
        dims.append([t - t % width for t in ts])
    if len(dims) == 1:
        return list(dims[0])
    return list(zip(*dims))


def row_label(spec: AggregateSpec, row: Tuple[Any, ...], ts: int) -> Any:
    """The group label for one row (fallback sources)."""
    group_indexes = spec.group_indexes
    width = spec.bucket_width
    if not group_indexes and width is None:
        return ()
    if spec.group_dims == 1:
        if width is not None:
            return ts - ts % width
        return row[group_indexes[0]]
    parts = [row[i] for i in group_indexes]
    if width is not None:
        parts.append(ts - ts % width)
    return tuple(parts)


def accumulate(groups: GroupState, spec: AggregateSpec,
               columns: List[List[Any]], ts_index: int,
               sel: Optional[List[int]], lo: int, hi: int) -> None:
    """Fold the selected rows of one column batch into group states.

    Rows arrive key-sorted, so equal labels cluster into runs whenever
    the grouping columns are a key prefix (the streaming case); each run
    is then aggregated with one ``sum``/``min``/``max`` over a slice.
    High-cardinality groupings degrade to short runs but stay correct.
    """
    aggs = spec.aggregates
    agg_cols = [None if (index is None or func == "COUNT")
                else columns[index] for func, index in aggs]
    labels = _labels(spec, columns, ts_index, sel, lo, hi)
    if labels is None:
        count = (hi - lo) if sel is None else len(sel)
        if count:
            _update(groups, (), aggs, agg_cols, sel, lo, 0, count)
        return
    total = len(labels)
    start = 0
    while start < total:
        label = labels[start]
        end = start + 1
        while end < total and labels[end] == label:
            end += 1
        _update(groups, label, aggs, agg_cols, sel, lo, start, end)
        start = end


def _update(groups: GroupState, label: Any,
            aggs: Tuple[Tuple[str, Optional[int]], ...],
            agg_cols: List[Optional[List[Any]]],
            sel: Optional[List[int]], lo: int, start: int, end: int) -> None:
    state = groups.get(label)
    if state is None:
        state = groups[label] = [empty_slot() for _ in aggs]
    count = end - start
    for slot, (func, _index), col in zip(state, aggs, agg_cols):
        slot[0] += count
        if col is None:
            continue
        if sel is None:
            values = col[lo + start:lo + end]
        else:
            values = [col[i] for i in sel[start:end]]
        if func == "SUM" or func == "AVG":
            slot[1] += sum(values)
        elif func == "MIN":
            low = min(values)
            if slot[2] is None or low < slot[2]:
                slot[2] = low
        else:  # MAX
            high = max(values)
            if slot[3] is None or high > slot[3]:
                slot[3] = high


def accumulate_rows(groups: GroupState, spec: AggregateSpec, ts_index: int,
                    rows: Iterable[Tuple[Any, ...]],
                    tlo: Optional[int], thi: Optional[int]
                    ) -> Tuple[int, int, int]:
    """Row-at-a-time fallback for v1 blocks, old-schema tablets, and
    memtable rows.  ``rows`` must already be key-range trimmed.

    Returns ``(scanned, returned, aggregated)`` so callers keep the
    oracle's counting: scanned = in key bounds, returned = alive after
    the time/TTL filter, aggregated = surviving residual predicates.
    """
    aggs = spec.aggregates
    residuals = spec.residuals
    scanned = returned = aggregated = 0
    for row in rows:
        scanned += 1
        ts = row[ts_index]
        if tlo is not None and ts < tlo:
            continue
        if thi is not None and ts > thi:
            continue
        returned += 1
        passed = True
        for index, op, value in residuals:
            if not _OPS[op](row[index], value):
                passed = False
                break
        if not passed:
            continue
        aggregated += 1
        label = row_label(spec, row, ts)
        state = groups.get(label)
        if state is None:
            state = groups[label] = [empty_slot() for _ in aggs]
        for slot, (func, index) in zip(state, aggs):
            slot[0] += 1
            if index is None or func == "COUNT":
                continue
            value = row[index]
            if func == "SUM" or func == "AVG":
                slot[1] += value
            elif func == "MIN":
                if slot[2] is None or value < slot[2]:
                    slot[2] = value
            elif slot[3] is None or value > slot[3]:
                slot[3] = value
    return scanned, returned, aggregated
