"""Point-in-time snapshots: consistent copies, O(1) capture.

A snapshot *is* a LittleTable data directory: per-table descriptors,
the sealed tablets they reference, and a root manifest
(``snapshot-manifest.json``) binding it all together with a checksum.
``ltdb fsck`` passes on one, and ``repro.restore`` (or
``LittleTable.restore``) installs it into any engine.

Capture is two-phase per table:

1. **O(1) cut** - under the table's state lock, the COW tablet list,
   descriptor fields, and the rows of every unflushed memtable are
   captured.  The lock hold is proportional to memtable row count
   (bounded by the flush threshold), never to on-disk size.
2. **Off-lock copy** - while holding only the table's maintenance
   lock (which stalls background flush/merge for that table but not
   inserts or queries), sealed tablets are hard-linked into the
   destination when both sides are real directories (``os.link``;
   tablet files are immutable-once-published, so sharing blocks is
   safe) or byte-copied otherwise, and the captured memtable rows are
   written as ordinary *sidecar tablets* through the normal
   :class:`~repro.core.tablet.TabletWriter` path.

Because flush/merge swaps are excluded for the duration of one
table's copy, every captured tablet file still exists when it is
copied; inserts that land mid-snapshot are simply after the cut,
exactly the point-in-time semantics the name promises.

Restore is all-or-nothing: conflicts and manifest damage are detected
*before* any file lands, a storage error mid-copy unwinds every file
landed so far (descriptors are written last per table and deleted
first, so no torn table is ever visible to a later startup), and a
failed restore installs no tables
(:class:`~repro.core.errors.SnapshotError`).
"""

from __future__ import annotations

import dataclasses
import json
import os
from typing import Any, Dict, List, Optional, Tuple

from ..disk.storage import FileStorage, Storage, StorageError
from ..disk.vfs import SimulatedDisk
from ..util.checksum import crc32c
from .descriptor import TableDescriptor
from .durability import DurabilityPolicy
from .errors import SnapshotError
from .tablet import TabletWriter

SNAPSHOT_MANIFEST = "snapshot-manifest.json"
MANIFEST_VERSION = 1


def _as_storage(target) -> Storage:
    """Accept a directory path or a Storage instance."""
    if isinstance(target, Storage):
        return target
    if isinstance(target, str):
        return FileStorage(target)
    raise SnapshotError(f"not a path or Storage: {target!r}")


def _link_or_copy(src_storage: Storage, dest_storage: Storage,
                  name: str) -> str:
    """Move one immutable file across; returns "linked" or "copied"."""
    if isinstance(src_storage, FileStorage) and isinstance(
            dest_storage, FileStorage):
        src_path = src_storage._path(name)
        dest_path = dest_storage._path(name)
        os.makedirs(os.path.dirname(dest_path), exist_ok=True)
        try:
            os.link(src_path, dest_path)
            return "linked"
        except OSError:
            pass  # cross-device, exists, or no hard links: fall back
    dest_storage.write_file(name, src_storage.read_all(name))
    return "copied"


def verify_manifest(storage: Storage) -> Optional[str]:
    """Check the snapshot manifest's structure and checksum.

    Returns a human-readable problem, or None when sound.  Used by the
    startup scrub (a manifest is a *recognized* root file, reported
    when damaged, never reclaimed) and by restore.
    """
    try:
        raw = storage.read_all(SNAPSHOT_MANIFEST)
    except StorageError:
        return "missing manifest"
    try:
        data = json.loads(raw.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        return f"unparseable manifest: {exc}"
    if not isinstance(data, dict) or "tables" not in data:
        return "manifest missing 'tables'"
    stored_crc = data.pop("checksum", None)
    if stored_crc is None:
        return "manifest missing checksum"
    body = json.dumps(data, sort_keys=True)
    if crc32c(body.encode("utf-8")) != stored_crc:
        return "manifest checksum mismatch"
    return None


def load_manifest(storage: Storage) -> Dict[str, Any]:
    """Verified manifest contents; raises SnapshotError on damage."""
    problem = verify_manifest(storage)
    if problem is not None:
        raise SnapshotError(f"{SNAPSHOT_MANIFEST}: {problem}")
    return json.loads(storage.read_all(SNAPSHOT_MANIFEST).decode("utf-8"))


def _capture_table(table) -> Tuple[TableDescriptor, List[List[Tuple]], int]:
    """Phase 1: the O(1) cut, under the table's state lock.

    Returns (descriptor copy, materialized memtable (row, size) runs,
    row total).  Caller already holds the maintenance lock.
    """
    with table.lock:
        snap = TableDescriptor(
            name=table.descriptor.name,
            schema=table.schema,
            ttl_micros=table.descriptor.ttl_micros,
            tablets=list(table.descriptor.tablets),
            next_tablet_id=table.descriptor.next_tablet_id,
            durability=(dict(table.descriptor.durability)
                        if table.descriptor.durability else None),
        )
        runs = [list(m.sorted_sized())
                for m in table._unflushed.values() if not m.empty]
    return snap, runs, sum(len(r) for r in runs)


def create_snapshot(db, dest) -> Dict[str, Any]:
    """Capture a consistent point-in-time snapshot of ``db`` into
    ``dest`` (a directory path or Storage).  See the module docstring
    for the mechanism; returns a JSON-safe summary."""
    dest_storage = _as_storage(dest)
    existing = dest_storage.list()
    if existing:
        raise SnapshotError(
            f"snapshot destination not empty ({len(existing)} files)")
    # A private disk over the destination: the TabletWriter path needs
    # one, and it must carry no failpoints (snapshotting is an admin
    # pass, like the scrub).
    snap_disk = SimulatedDisk(dest_storage)
    now = db.clock.now()
    summary_tables: Dict[str, Any] = {}
    linked = copied = 0
    for name in db.table_names():
        table = db.table(name)
        with table._maintenance_lock:
            snap_desc, runs, mem_rows = _capture_table(table)
            metas = []
            for meta in snap_desc.tablets:
                source = (table.cold_disk.storage
                          if meta.tier == "cold" and table.cold_disk
                          is not None else db.disk.storage)
                how = _link_or_copy(source, dest_storage, meta.filename)
                if how == "linked":
                    linked += 1
                else:
                    copied += 1
                # The bytes now live inside the snapshot directory, so
                # a restored engine must read them locally regardless
                # of the original tier.
                metas.append(dataclasses.replace(meta, tier="hot")
                             if meta.tier != "hot" else meta)
            # Captured memtable rows become ordinary sidecar tablets:
            # the snapshot needs no WAL and no replay to be complete.
            for run in runs:
                tablet_id = snap_desc.allocate_tablet_id()
                writer = TabletWriter(
                    snap_disk, table.schema,
                    table.config.block_size_bytes,
                    table.config.compression,
                    (table.config.bloom_bits_per_row
                     if table.config.bloom_filters else 0),
                    block_format=table.config.block_format_version,
                    checksums=table.config.checksums,
                )
                meta = writer.write(
                    snap_desc.tablet_filename(tablet_id), (),
                    tablet_id, created_at=now,
                    expected_rows=len(run),
                    sized_pairs=iter(run))
                if meta is not None:
                    metas.append(meta)
            snap_desc.tablets = metas
            snap_desc.save(snap_disk)
        summary_tables[name] = {
            "tablets": len(metas),
            "memtable_rows_captured": mem_rows,
        }
    manifest: Dict[str, Any] = {
        "version": MANIFEST_VERSION,
        "created_at": now,
        "tables": summary_tables,
    }
    body = json.dumps(manifest, sort_keys=True)
    manifest["checksum"] = crc32c(body.encode("utf-8"))
    dest_storage.write_file(
        SNAPSHOT_MANIFEST,
        (json.dumps(manifest, sort_keys=True) + "\n").encode("utf-8"))
    return {
        "tables": summary_tables,
        "tablets_linked": linked,
        "tablets_copied": copied,
        "created_at": now,
    }


def restore_into(db, src) -> Dict[str, Any]:
    """Install every table of the snapshot at ``src`` into ``db``.

    All-or-nothing: the manifest is verified and name conflicts are
    detected before a single file is copied.  Returns a summary."""
    src_storage = _as_storage(src)
    manifest = load_manifest(src_storage)
    names = sorted(manifest.get("tables", {}))
    if not names:
        raise SnapshotError("snapshot holds no tables")
    conflicts = [name for name in names if db.has_table(name)]
    if conflicts:
        raise SnapshotError(
            f"tables already exist: {', '.join(conflicts)}")
    db._check_writable()
    copied = 0
    landed: List[str] = []
    try:
        for name in names:
            prefix = f"tables/{name}/"
            files = src_storage.list(prefix)
            if not any(f.endswith("descriptor.json") for f in files):
                raise SnapshotError(
                    f"snapshot missing descriptor for {name!r}")
            # Data files land first, the descriptor last: a table only
            # becomes real to a future startup once its descriptor
            # exists, so an interruption mid-table leaves nothing but
            # orphans the scrub reclaims.
            for filename in sorted(
                    files, key=lambda f: f.endswith("descriptor.json")):
                db.disk.write_file(filename, src_storage.read_all(filename))
                landed.append(filename)
                copied += 1
    except Exception as exc:
        # All-or-nothing: unwind every file landed so far, descriptors
        # first (they were landed last), so no partially restored
        # table - or completed earlier table - survives to be opened
        # as real on the next startup.  A simulated CrashPoint
        # (BaseException) bypasses this on purpose: nothing runs after
        # a crash, and descriptor-last ordering already keeps the
        # in-flight table invisible.
        for filename in reversed(landed):
            try:
                if db.disk.exists(filename):
                    db.disk.delete(filename)
            except StorageError:
                pass
        if isinstance(exc, SnapshotError):
            raise
        raise SnapshotError(
            f"restore aborted, no tables installed: {exc}") from exc
    # Open the freshly landed tables exactly as a normal startup would.
    from .table import Table

    for name in names:
        descriptor = TableDescriptor.load(db.disk, name)
        effective = db.durability.merged_with(
            DurabilityPolicy.from_dict(descriptor.durability))
        table = Table(db.disk, descriptor, db.config, db.clock,
                      cold_disk=db.cold_disk, metrics=db.metrics,
                      tracer=db.tracer, read_cache=db.read_cache,
                      durability=effective)
        table._fault_listener = db._note_storage_failure
        db._tables[name] = table
    return {"tables": names, "files_copied": copied,
            "created_at": manifest.get("created_at")}
