"""On-disk tablets: writer, reader, and cursors.

File layout (paper §3.2, §3.5):

    [block 0][block 1]...[block n-1][compressed footer][trailer]

* Each block holds rows sorted by primary key, compressed.
* The footer records the tablet's schema, its timespan, a block index
  with the **last key in each block**, and (optionally) a key-prefix
  Bloom filter (§3.4.5).
* The trailer is the "final two words of the file": the footer's
  decompressed size and its offset within the file, 8 bytes each,
  little-endian.  The compressed footer therefore spans
  ``[offset, file_size - 16)``.

Reading a footer costs three seeks on a cold cache (inode, trailer,
footer - §3.5); once cached in memory the reader answers block lookups
with a single block read (one seek), which is exactly the 4-vs-1 seek
behaviour Figure 6 measures.
"""

from __future__ import annotations

import bisect
import json
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, List, Optional, Tuple

from ..disk.vfs import SimulatedDisk
from ..obs.metrics import NULL_REGISTRY
from ..util.bloom import KeyPrefixBloom
from ..util.varint import decode_uvarint, encode_uvarint
from .block import (
    BlockBuilder,
    codec_id,
    compress,
    decode_block_pairs,
    decode_rows,
    decompress,
)
from .encoding import RowCodec
from .errors import CorruptTabletError
from .readcache import NULL_READ_CACHE
from .row import KeyRange
from .schema import Schema

TRAILER_BYTES = 16


@dataclass
class TabletMeta:
    """Descriptor-level metadata for one on-disk tablet.

    ``tier`` is "hot" for the local spinning disk; "cold" marks
    tablets migrated to the write-once archive tier (the §6 LHAM-style
    extension: "we are considering using Amazon S3 or another cloud
    service as an additional backing store for old LittleTable data").

    ``min_key``/``max_key`` are the tablet's key-range zone map: the
    first and last primary key the writer saw.  The prune index skips
    tablets whose key interval misses a query's key range without
    opening their readers.  They are None for tablets written before
    zone maps existed (key columns are never BLOBs, so the values are
    JSON-safe).
    """

    tablet_id: int
    filename: str
    min_ts: int
    max_ts: int
    row_count: int
    size_bytes: int
    schema_version: int
    created_at: int  # engine time when the tablet was written
    tier: str = "hot"
    min_key: Optional[Tuple[Any, ...]] = None
    max_key: Optional[Tuple[Any, ...]] = None

    def to_dict(self) -> dict:
        out = {
            "tablet_id": self.tablet_id,
            "filename": self.filename,
            "min_ts": self.min_ts,
            "max_ts": self.max_ts,
            "row_count": self.row_count,
            "size_bytes": self.size_bytes,
            "schema_version": self.schema_version,
            "created_at": self.created_at,
            "tier": self.tier,
        }
        if self.min_key is not None:
            out["min_key"] = list(self.min_key)
        if self.max_key is not None:
            out["max_key"] = list(self.max_key)
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "TabletMeta":
        data = dict(data)
        data.setdefault("tier", "hot")
        for zone in ("min_key", "max_key"):
            if data.get(zone) is not None:
                data[zone] = tuple(data[zone])
            else:
                data[zone] = None
        return cls(**data)


@dataclass
class _BlockEntry:
    offset: int
    compressed_len: int
    row_count: int
    last_key: Tuple[Any, ...]


class TabletWriter:
    """Writes one tablet file from an iterator of sorted rows."""

    def __init__(self, disk: SimulatedDisk, schema: Schema,
                 block_size: int, compression: str,
                 bloom_bits_per_row: int = 0):
        self.disk = disk
        self.schema = schema
        self.codec = codec_id(compression)
        self.block_size = block_size
        self.bloom_bits_per_row = bloom_bits_per_row
        self._row_codec = RowCodec(schema)

    def write(self, filename: str, rows: Iterable[Tuple[Any, ...]],
              tablet_id: int, created_at: int, expected_rows: int = 0,
              encoded_pairs: Optional[Iterable[Tuple[Tuple[Any, ...], bytes]]]
              = None) -> Optional[TabletMeta]:
        """Encode and write ``rows`` (already sorted by key, unique).

        Returns the tablet's metadata, or None if ``rows`` was empty
        (no file is written).  ``expected_rows`` sizes the Bloom
        filter; 0 lets it default from the actual count (two-pass
        sizing is avoided by buffering encoded keys).  When the caller
        already holds each row's encoding (memtables do, §3.2's flush
        path; merges pass encodings through), ``encoded_pairs``
        supplies (row, encoded) pairs and ``rows`` is ignored.
        """
        schema = self.schema
        row_codec = self._row_codec
        builder = BlockBuilder(self.block_size)
        body = bytearray()
        entries: List[_BlockEntry] = []
        bloom_keys: List[List[bytes]] = []
        min_ts: Optional[int] = None
        max_ts: Optional[int] = None
        row_count = 0
        first_key: Optional[Tuple[Any, ...]] = None
        last_key: Optional[Tuple[Any, ...]] = None

        def cut_block() -> None:
            payload, count, _raw = builder.finish(self.codec)
            entries.append(
                _BlockEntry(len(body), len(payload), count, last_key)
            )
            body.extend(payload)

        if encoded_pairs is None:
            encoded_pairs = (
                (row, row_codec.encode_row(row)) for row in rows
            )
        for row, encoded in encoded_pairs:
            key = schema.key_of(row)
            if builder.would_overflow(len(encoded)):
                cut_block()
            builder.add(encoded)
            if first_key is None:
                first_key = key
            last_key = key
            ts = schema.ts_of(row)
            if min_ts is None or ts < min_ts:
                min_ts = ts
            if max_ts is None or ts > max_ts:
                max_ts = ts
            row_count += 1
            if self.bloom_bits_per_row:
                # Prefix filters exclude the trailing timestamp column.
                bloom_keys.append(row_codec.encode_key_columns(key)[:-1])

        if row_count == 0:
            return None
        if len(builder):
            cut_block()

        bloom_bytes = b""
        if self.bloom_bits_per_row:
            bloom = KeyPrefixBloom(
                expected_keys=max(expected_rows, row_count),
                key_width=schema.key_width - 1,
                bits_per_key=self.bloom_bits_per_row,
            )
            for columns in bloom_keys:
                bloom.add_key(columns)
            bloom_bytes = bloom.serialize()

        footer = self._encode_footer(entries, min_ts, max_ts, row_count,
                                     bloom_bytes)
        compressed_footer = compress(self.codec, footer)
        footer_offset = len(body)
        trailer = len(footer).to_bytes(8, "little") + footer_offset.to_bytes(8, "little")
        file_bytes = bytes(body) + compressed_footer + trailer
        self.disk.write_file(filename, file_bytes)
        return TabletMeta(
            tablet_id=tablet_id,
            filename=filename,
            min_ts=min_ts,
            max_ts=max_ts,
            row_count=row_count,
            size_bytes=len(file_bytes),
            schema_version=schema.version,
            created_at=created_at,
            min_key=first_key,
            max_key=last_key,
        )

    def _encode_footer(self, entries: List[_BlockEntry], min_ts: int,
                       max_ts: int, row_count: int,
                       bloom_bytes: bytes) -> bytes:
        schema_json = json.dumps(self.schema.to_dict()).encode("utf-8")
        out = bytearray()
        out += encode_uvarint(len(schema_json))
        out += schema_json
        out += encode_uvarint(min_ts)
        out += encode_uvarint(max_ts)
        out += encode_uvarint(row_count)
        out.append(self.codec)
        out += encode_uvarint(len(entries))
        for entry in entries:
            key_bytes = self._row_codec.encode_key(entry.last_key)
            out += encode_uvarint(entry.offset)
            out += encode_uvarint(entry.compressed_len)
            out += encode_uvarint(entry.row_count)
            out += encode_uvarint(len(key_bytes))
            out += key_bytes
        out += encode_uvarint(len(bloom_bytes))
        out += bloom_bytes
        return bytes(out)


class _ParsedFooter:
    """The reader state a parsed footer yields, cacheable by uid.

    Reopening a reader for a tablet whose footer is resident (same
    file identity, tracked by the read cache's uid) restores this
    without the three cold seeks or the parse.
    """

    __slots__ = ("schema", "row_codec", "min_ts", "max_ts", "row_count",
                 "codec", "entries", "last_keys", "bloom", "body_size")

    def __init__(self, schema, row_codec, min_ts, max_ts, row_count,
                 codec, entries, last_keys, bloom, body_size):
        self.schema = schema
        self.row_codec = row_codec
        self.min_ts = min_ts
        self.max_ts = max_ts
        self.row_count = row_count
        self.codec = codec
        self.entries = entries
        self.last_keys = last_keys
        self.bloom = bloom
        self.body_size = body_size


class TabletReader:
    """Reads one tablet file; the parsed footer is cached in memory.

    §3.2: "On average, these indexes are only 0.5% of their tablets'
    sizes, so LittleTable caches them almost indefinitely in main
    memory."  The table keeps one reader per live tablet.

    ``cache`` (a :class:`~repro.core.readcache.ReadCache`) holds
    decoded blocks and parsed footers across readers, keyed by
    ``cache_uid`` - the tablet's process-unique identity, allocated
    when the table registers the tablet and invalidated when its file
    is deleted or replaced.  Without a cache every read decodes from
    the (simulated) disk, exactly the pre-cache behaviour.  Lists
    returned from cached blocks are shared: callers must not mutate
    them.
    """

    def __init__(self, disk: SimulatedDisk, filename: str, metrics=None,
                 cache=None, cache_uid: Optional[int] = None):
        self.disk = disk
        self.filename = filename
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self._m_blocks_read = self.metrics.counter("tablet.blocks_read")
        self._m_block_bytes = self.metrics.counter("tablet.block_bytes_read")
        self._m_footer_loads = self.metrics.counter("tablet.footer_loads")
        self._m_bloom_probes = self.metrics.counter("bloom.probes")
        self._m_bloom_negative = self.metrics.counter("bloom.negatives")
        self._m_bloom_positive = self.metrics.counter("bloom.positives")
        # decode_rows takes a real registry or None (never the null).
        self._decode_metrics = metrics if metrics is not None else None
        self._cache = cache if cache is not None else NULL_READ_CACHE
        self._cache_uid = (cache_uid if cache_uid is not None
                           else self._cache.allocate_uid())
        self._loaded = False
        self.schema: Optional[Schema] = None
        self.min_ts = 0
        self.max_ts = 0
        self.row_count = 0
        self._codec = 0
        self._entries: List[_BlockEntry] = []
        self._last_keys: List[Tuple[Any, ...]] = []
        self._row_codec: Optional[RowCodec] = None
        self._bloom: Optional[KeyPrefixBloom] = None
        self._body_size = 0

    # ----------------------------------------------------------- footer

    def ensure_loaded(self) -> None:
        """Load and parse the footer on first use (3 cold seeks).

        A footer already resident in the read cache (keyed by the
        tablet's uid) is restored without touching the disk.
        """
        if self._loaded:
            return
        cached = self._cache.get_footer(self._cache_uid)
        if cached is not None:
            self._install_footer(cached)
            self._loaded = True
            return
        disk = self.disk
        disk.open(self.filename)  # inode
        size = disk.size(self.filename)
        if size < TRAILER_BYTES:
            raise CorruptTabletError(f"{self.filename}: too small")
        trailer = disk.read(self.filename, size - TRAILER_BYTES, TRAILER_BYTES)
        footer_size = int.from_bytes(trailer[:8], "little")
        footer_offset = int.from_bytes(trailer[8:16], "little")
        compressed_len = size - TRAILER_BYTES - footer_offset
        if compressed_len < 0 or footer_offset > size:
            raise CorruptTabletError(f"{self.filename}: bad trailer")
        compressed = disk.read(self.filename, footer_offset, compressed_len)
        self._body_size = footer_offset
        self._parse_footer(compressed, footer_size)
        self._loaded = True
        self._m_footer_loads.inc()
        self._cache.put_footer(self._cache_uid, _ParsedFooter(
            self.schema, self._row_codec, self.min_ts, self.max_ts,
            self.row_count, self._codec, self._entries, self._last_keys,
            self._bloom, self._body_size))

    def _install_footer(self, footer: _ParsedFooter) -> None:
        self.schema = footer.schema
        self._row_codec = footer.row_codec
        self.min_ts = footer.min_ts
        self.max_ts = footer.max_ts
        self.row_count = footer.row_count
        self._codec = footer.codec
        self._entries = footer.entries
        self._last_keys = footer.last_keys
        self._bloom = footer.bloom
        self._body_size = footer.body_size

    def _parse_footer(self, compressed: bytes, footer_size: int) -> None:
        # The codec byte lives inside the (possibly compressed) footer,
        # so detect the footer's own encoding by attempting zlib first
        # and falling back to raw; the trailer's decompressed-size word
        # disambiguates.
        try:
            footer = decompress(1, compressed)
        except CorruptTabletError:
            footer = compressed
        if len(footer) != footer_size:
            if len(compressed) == footer_size:
                footer = compressed
            else:
                raise CorruptTabletError(
                    f"{self.filename}: footer size mismatch"
                )
        self._parse_footer_body(footer)

    def _parse_footer_body(self, footer: bytes) -> None:
        offset = 0
        schema_len, offset = decode_uvarint(footer, offset)
        try:
            schema_dict = json.loads(footer[offset:offset + schema_len])
        except (ValueError, UnicodeDecodeError) as exc:
            raise CorruptTabletError(f"{self.filename}: bad schema: {exc}") from exc
        offset += schema_len
        self.schema = Schema.from_dict(schema_dict)
        self._row_codec = RowCodec(self.schema)
        self.min_ts, offset = decode_uvarint(footer, offset)
        self.max_ts, offset = decode_uvarint(footer, offset)
        self.row_count, offset = decode_uvarint(footer, offset)
        if offset >= len(footer):
            raise CorruptTabletError(f"{self.filename}: truncated footer")
        self._codec = footer[offset]
        offset += 1
        block_count, offset = decode_uvarint(footer, offset)
        entries: List[_BlockEntry] = []
        for _ in range(block_count):
            block_offset, offset = decode_uvarint(footer, offset)
            compressed_len, offset = decode_uvarint(footer, offset)
            row_count, offset = decode_uvarint(footer, offset)
            key_len, offset = decode_uvarint(footer, offset)
            key_bytes = footer[offset:offset + key_len]
            if len(key_bytes) != key_len:
                raise CorruptTabletError(f"{self.filename}: truncated key")
            offset += key_len
            last_key, _ = self._row_codec.decode_key(key_bytes)
            entries.append(_BlockEntry(block_offset, compressed_len,
                                       row_count, last_key))
        bloom_len, offset = decode_uvarint(footer, offset)
        bloom_bytes = footer[offset:offset + bloom_len]
        if len(bloom_bytes) != bloom_len:
            raise CorruptTabletError(f"{self.filename}: truncated bloom")
        self._bloom = (
            KeyPrefixBloom.deserialize(bloom_bytes) if bloom_len else None
        )
        self._entries = entries
        self._last_keys = [entry.last_key for entry in entries]

    # ------------------------------------------------------------ blocks

    @property
    def block_count(self) -> int:
        self.ensure_loaded()
        return len(self._entries)

    def read_block(self, index: int) -> List[Tuple[Any, ...]]:
        """Read and decode block ``index`` (one seek if uncached).

        Served from the read cache when the decoded block is resident;
        the returned list is shared with the cache - do not mutate.
        """
        self.ensure_loaded()
        cached = self._cache.get_block(self._cache_uid, index)
        if cached is not None:
            return cached.rows
        rows, raw_len = self._read_block_uncached(index)
        self._cache.put_block(self._cache_uid, index, rows, raw_len)
        return rows

    def _read_block_uncached(self, index: int
                             ) -> Tuple[List[Tuple[Any, ...]], int]:
        """Disk read + decompress + decode; returns (rows, raw bytes)."""
        entry = self._entries[index]
        payload = self.disk.read(self.filename, entry.offset,
                                 entry.compressed_len)
        self._m_blocks_read.inc()
        self._m_block_bytes.inc(entry.compressed_len)
        raw = decompress(self._codec, payload)
        rows = decode_rows(raw, self._row_codec, entry.row_count,
                           metrics=self._decode_metrics)
        return rows, len(raw)

    def _scan_block(self, index: int) -> Tuple[List[Tuple[Any, ...]],
                                               List[Tuple[Any, ...]]]:
        """Block rows plus their keys, both cache-resident when warm.

        Keys are extracted at most once per cached block (stored on
        the cache entry), so warm scans skip both the decode and the
        per-row key extraction.
        """
        cached = self._cache.get_block(self._cache_uid, index)
        if cached is None:
            rows, raw_len = self._read_block_uncached(index)
            cached = self._cache.put_block(self._cache_uid, index, rows,
                                           raw_len)
            if cached is None:  # caching disabled
                key_of = self.schema.key_of
                return rows, [key_of(row) for row in rows]
        if cached.keys is None:
            key_of = self.schema.key_of
            cached.keys = [key_of(row) for row in cached.rows]
        return cached.rows, cached.keys

    def scan_pairs(self) -> Iterator[Tuple[Tuple[Any, ...], bytes]]:
        """Full ascending scan yielding (row, raw_encoding) pairs.

        The merge path streams these straight into the output tablet,
        skipping a decode/re-encode round trip.
        """
        self.ensure_loaded()
        for index in range(len(self._entries)):
            entry = self._entries[index]
            payload = self.disk.read(self.filename, entry.offset,
                                     entry.compressed_len)
            self._m_blocks_read.inc()
            self._m_block_bytes.inc(entry.compressed_len)
            yield from decode_block_pairs(payload, self._codec,
                                          self._row_codec, entry.row_count,
                                          metrics=self._decode_metrics)

    def first_block_for(self, key_range: KeyRange) -> int:
        """Index of the first block that may hold in-range keys."""
        self.ensure_loaded()
        seek = key_range.seek_min()
        if seek is None:
            return 0
        # First block whose last key is >= the seek prefix.  Tuple
        # comparison does the right thing for prefixes: (a,) <= (a, b).
        return bisect.bisect_left(self._last_keys, seek)

    def last_block_for(self, key_range: KeyRange) -> int:
        """Index of the last block that may hold in-range keys."""
        self.ensure_loaded()
        if key_range.max_prefix is None:
            return len(self._entries) - 1
        # First block whose last key is beyond the max bound may still
        # contain in-range keys (its earlier rows); blocks after it
        # cannot.
        low, high = 0, len(self._entries)
        while low < high:
            mid = (low + high) // 2
            if key_range.after_range(self._last_keys[mid]):
                high = mid
            else:
                low = mid + 1
        return min(low, len(self._entries) - 1)

    def may_contain_prefix(self, encoded_columns: List[bytes]) -> Optional[bool]:
        """Bloom-filter probe; None when no filter is stored.

        A negative probe is the filter's payoff: the caller skips this
        tablet entirely, so ``bloom.negatives / bloom.probes`` is the
        §3.4.5 skip rate.
        """
        self.ensure_loaded()
        if self._bloom is None:
            return None
        self._m_bloom_probes.inc()
        verdict = self._bloom.may_contain_prefix(encoded_columns)
        if verdict:
            self._m_bloom_positive.inc()
        else:
            self._m_bloom_negative.inc()
        return verdict

    # ----------------------------------------------------------- cursors

    def scan(self, key_range: KeyRange, descending: bool = False
             ) -> Iterator[Tuple[Any, ...]]:
        """Yield rows within the key range, in key order.

        Rows are *not* filtered by timestamp here; the merge cursor
        does that (and counts them as scanned, which is what Figure 9
        measures).
        """
        self.ensure_loaded()
        if not self._entries:
            return
        if descending:
            yield from self._scan_desc(key_range)
        else:
            yield from self._scan_asc(key_range)

    def _scan_asc(self, key_range: KeyRange) -> Iterator[Tuple[Any, ...]]:
        start_block = self.first_block_for(key_range)
        for index in range(start_block, len(self._entries)):
            rows, keys = self._scan_block(index)
            position = 0
            if index == start_block:
                seek = key_range.seek_min()
                if seek is not None:
                    position = bisect.bisect_left(keys, seek)
            for row_index in range(position, len(rows)):
                key = keys[row_index]
                # An exclusive prefix bound can exclude rows beyond the
                # seek position (and past the first block); the check is
                # monotone, so it stops firing once the scan passes it.
                if key_range.before_range(key):
                    continue
                if key_range.after_range(key):
                    return
                yield rows[row_index]

    def _scan_desc(self, key_range: KeyRange) -> Iterator[Tuple[Any, ...]]:
        start_block = self.last_block_for(key_range)
        for index in range(start_block, -1, -1):
            rows, keys = self._scan_block(index)
            position = len(rows) - 1
            for row_index in range(position, -1, -1):
                key = keys[row_index]
                if key_range.after_range(key):
                    continue
                if key_range.before_range(key):
                    return
                yield rows[row_index]
