"""On-disk tablets: writer, reader, and cursors.

File layout (paper §3.2, §3.5):

    [block 0][block 1]...[block n-1][compressed footer][trailer]

* Each block holds rows sorted by primary key, compressed.
* The footer records the tablet's schema, its timespan, a block index
  with the **last key in each block**, (optionally) a key-prefix
  Bloom filter (§3.4.5), and - for tablets written since block format
  v2 - the block format version.  Old footers end at the Bloom bytes,
  so a missing version field means v1; v1 blocks carry no version
  byte of their own, which is why the negotiation lives here.
* The trailer is the "final two words of the file": the footer's
  decompressed size and its offset within the file, 8 bytes each,
  little-endian.  The compressed footer therefore spans
  ``[offset, file_size - 16)``.

Format v2.1 (checksummed storage) extends the trailer to 24 bytes:
the two legacy words, then the CRC of the *compressed* footer bytes
(4 bytes LE) and the magic ``b"LT21"``.  The footer additionally
carries one CRC per block (over each block's compressed payload),
appended after the ``block_format`` field through the same
trailing-field mechanism, so the footer CRC guards the block CRCs and
the block CRCs guard the data.  Readers detect v2.1 by the magic: a
legacy 16-byte trailer's last four bytes are the high bytes of the
footer offset, which are always zero for any real file, so the magic
can never collide.  Every flipped bit is therefore caught somewhere:
in a block (block CRC), in the footer (footer CRC), or in the trailer
itself (magic/offset validation or footer CRC mismatch).


Block bodies come in two formats.  v1 is row-major: each row's v1
encoding concatenated.  v2 (``core/codec.py``) is column-major with
delta timestamps, prefix-compressed key strings, and restart points;
whole blocks encode and decode through the schema-compiled batch
codec.  Readers handle both; merges rewrite v1 blocks as v2.

Reading a footer costs three seeks on a cold cache (inode, trailer,
footer - §3.5); once cached in memory the reader answers block lookups
with a single block read (one seek), which is exactly the 4-vs-1 seek
behaviour Figure 6 measures.
"""

from __future__ import annotations

import bisect
import json
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, List, Optional, Tuple

from ..disk.vfs import SimulatedDisk
from ..obs.metrics import NULL_REGISTRY
from ..util.bloom import KeyPrefixBloom
from ..util.checksum import crc32c
from ..util.varint import decode_uvarint, encode_uvarint
from .block import (
    BlockBuilder,
    codec_id,
    compress,
    decode_block_pairs,
    decode_rows,
    decompress,
)
from .codec import BLOCK_FORMAT_V1, BLOCK_FORMAT_V2, SchemaCodec
from .encoding import RowCodec
from .errors import ChecksumError, CorruptTabletError
from .readcache import NULL_READ_CACHE
from .row import KeyRange
from .schema import ColumnType, Schema

TRAILER_BYTES = 16

# Format v2.1: legacy trailer + footer CRC (4 bytes LE) + magic.
CHECKSUM_TRAILER_BYTES = 24
CHECKSUM_MAGIC = b"LT21"

_UNSET = object()


@dataclass
class TabletMeta:
    """Descriptor-level metadata for one on-disk tablet.

    ``tier`` is "hot" for the local spinning disk; "cold" marks
    tablets migrated to the write-once archive tier (the §6 LHAM-style
    extension: "we are considering using Amazon S3 or another cloud
    service as an additional backing store for old LittleTable data").

    ``min_key``/``max_key`` are the tablet's key-range zone map: the
    first and last primary key the writer saw.  The prune index skips
    tablets whose key interval misses a query's key range without
    opening their readers.  They are None for tablets written before
    zone maps existed (key columns are never BLOBs, so the values are
    JSON-safe).
    """

    tablet_id: int
    filename: str
    min_ts: int
    max_ts: int
    row_count: int
    size_bytes: int
    schema_version: int
    created_at: int  # engine time when the tablet was written
    tier: str = "hot"
    min_key: Optional[Tuple[Any, ...]] = None
    max_key: Optional[Tuple[Any, ...]] = None

    def to_dict(self) -> dict:
        out = {
            "tablet_id": self.tablet_id,
            "filename": self.filename,
            "min_ts": self.min_ts,
            "max_ts": self.max_ts,
            "row_count": self.row_count,
            "size_bytes": self.size_bytes,
            "schema_version": self.schema_version,
            "created_at": self.created_at,
            "tier": self.tier,
        }
        if self.min_key is not None:
            out["min_key"] = list(self.min_key)
        if self.max_key is not None:
            out["max_key"] = list(self.max_key)
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "TabletMeta":
        data = dict(data)
        data.setdefault("tier", "hot")
        for zone in ("min_key", "max_key"):
            if data.get(zone) is not None:
                data[zone] = tuple(data[zone])
            else:
                data[zone] = None
        return cls(**data)


@dataclass
class _BlockEntry:
    offset: int
    compressed_len: int
    row_count: int
    last_key: Tuple[Any, ...]


def _prefix_column_encoders(schema: Schema):
    """Per-column encoders for Bloom prefix parts (key cols sans ts)."""

    def string_encoder(value: str) -> bytes:
        raw = value.encode("utf-8")
        return encode_uvarint(len(raw)) + raw

    def int_encoder(value: int) -> bytes:
        return encode_uvarint((value << 1) ^ (value >> 63))

    encoders = []
    for index in schema.key_indexes[:-1]:
        t = schema.columns[index].type
        if t is ColumnType.STRING:
            encoders.append(string_encoder)
        elif t is ColumnType.TIMESTAMP:
            encoders.append(encode_uvarint)
        else:
            encoders.append(int_encoder)
    return encoders


class TabletSink:
    """Streams sorted rows - or whole pre-compressed blocks - into one
    tablet file.

    The flush path feeds it (row, size) pairs from a memtable; the
    merge path feeds it decoded rows and, when an entire v2 block from
    one source survives unmodified, the block's compressed payload
    verbatim (``add_block_passthrough``), skipping the decode and
    re-encode entirely.

    Bloom filters are fed incrementally as keys arrive (sorted keys
    repeat their leading columns, so most prefix levels are skipped);
    when the expected row count is unknown the per-key prefix parts
    are buffered and the filter is sized and filled at finish.
    """

    def __init__(self, disk: SimulatedDisk, schema: Schema,
                 block_size: int, compression: str,
                 bloom_bits_per_row: int = 0,
                 block_format: int = BLOCK_FORMAT_V2,
                 metrics=None, expected_rows: int = 0,
                 checksums: bool = True, io_limiter=None):
        self.disk = disk
        self.schema = schema
        self.codec = codec_id(compression)
        self.block_size = block_size
        self.block_format = block_format
        self.checksums = checksums
        # Optional token bucket pacing background writes: debited once
        # per compressed block as it is cut, so a large merge yields
        # between blocks instead of bursting the whole rewrite.
        self.io_limiter = io_limiter
        self._block_crcs: List[int] = []
        self.bloom_bits_per_row = bloom_bits_per_row
        self.schema_codec = SchemaCodec(schema, metrics)
        self._key_of = self.schema_codec.key_of
        self._size_of = self.schema_codec.size_of
        self._ts_index = schema.ts_index
        self._row_codec = RowCodec(schema)  # footer keys only
        self._body = bytearray()
        self._entries: List[_BlockEntry] = []
        self._rows: List[Tuple[Any, ...]] = []
        self._keys: List[Tuple[Any, ...]] = []
        self._pending_bytes = 0
        self._builder = (BlockBuilder(block_size)
                         if block_format == BLOCK_FORMAT_V1 else None)
        self.row_count = 0
        self.min_ts: Optional[int] = None
        self.max_ts: Optional[int] = None
        self.first_key: Optional[Tuple[Any, ...]] = None
        self.last_key: Optional[Tuple[Any, ...]] = None
        self._expected_rows = expected_rows
        self._bloom: Optional[KeyPrefixBloom] = None
        self._bloom_buffered: Optional[List[Tuple[bytes, ...]]] = None
        self._bloom_state: list = []
        if bloom_bits_per_row:
            self._bloom_width = schema.key_width - 1
            self._bloom_encoders = _prefix_column_encoders(schema)
            self._bloom_prev_vals: List[Any] = [_UNSET] * self._bloom_width
            self._bloom_parts: List[bytes] = [b""] * self._bloom_width
            if expected_rows > 0:
                self._bloom = KeyPrefixBloom(
                    expected_keys=expected_rows,
                    key_width=max(1, self._bloom_width),
                    bits_per_key=bloom_bits_per_row,
                )
            else:
                self._bloom_buffered = []

    @property
    def wants_bloom(self) -> bool:
        return bool(self.bloom_bits_per_row)

    @property
    def pending_bytes(self) -> int:
        """Estimated uncompressed size of the block being built."""
        if self._builder is not None:
            return self._builder.size_bytes
        return self._pending_bytes

    # ------------------------------------------------------------- rows

    def _note_row(self, key: Tuple[Any, ...], ts: int) -> None:
        if self.min_ts is None or ts < self.min_ts:
            self.min_ts = ts
        if self.max_ts is None or ts > self.max_ts:
            self.max_ts = ts
        if self.first_key is None:
            self.first_key = key
        self.last_key = key
        self.row_count += 1
        if self.bloom_bits_per_row:
            self._bloom_add(key)

    def _bloom_add(self, key: Tuple[Any, ...]) -> None:
        prev_vals = self._bloom_prev_vals
        parts = self._bloom_parts
        encoders = self._bloom_encoders
        for level in range(self._bloom_width):
            value = key[level]
            if value != prev_vals[level]:
                parts[level] = encoders[level](value)
                prev_vals[level] = value
        if self._bloom is not None:
            self._bloom.add_key_incremental(parts, self._bloom_state)
        else:
            self._bloom_buffered.append(tuple(parts))

    def add_row(self, row: Tuple[Any, ...],
                key: Optional[Tuple[Any, ...]] = None,
                size: Optional[int] = None) -> None:
        """Append one decoded row (sorted, unique).

        ``size`` is the row's v1-encoded size when the caller already
        knows it (memtables do); it only drives block cutting.
        """
        if key is None:
            key = self._key_of(row)
        if self._builder is not None:
            self.add_encoded(row, self.schema_codec.encode_row_v1(row),
                             key=key)
            return
        if size is None:
            size = self._size_of(row)
        if self._pending_bytes and \
                self._pending_bytes + size > self.block_size:
            self._cut_v2()
        self._rows.append(row)
        self._keys.append(key)
        self._pending_bytes += size
        self._note_row(key, row[self._ts_index])

    def add_encoded(self, row: Tuple[Any, ...], encoded: bytes,
                    key: Optional[Tuple[Any, ...]] = None) -> None:
        """Append one row with its v1 encoding (v1-format sinks only)."""
        if key is None:
            key = self._key_of(row)
        if self._builder.would_overflow(len(encoded)):
            self._cut_v1()
        self._builder.add(encoded)
        self._note_row(key, row[self._ts_index])

    # ----------------------------------------------------------- blocks

    def _cut_v2(self) -> None:
        raw = self.schema_codec.encode_rows(self._rows)
        payload = compress(self.codec, raw)
        if self.io_limiter is not None:
            self.io_limiter.acquire(len(payload))
        self._entries.append(_BlockEntry(
            len(self._body), len(payload), len(self._rows), self._keys[-1]))
        if self.checksums:
            self._block_crcs.append(crc32c(payload))
        self._body += payload
        self._rows = []
        self._keys = []
        self._pending_bytes = 0

    def _cut_v1(self) -> None:
        payload, count, _raw = self._builder.finish(self.codec)
        if self.io_limiter is not None:
            self.io_limiter.acquire(len(payload))
        self._entries.append(_BlockEntry(
            len(self._body), len(payload), count, self.last_key))
        if self.checksums:
            self._block_crcs.append(crc32c(payload))
        self._body += payload

    def _cut_pending(self) -> None:
        if self._builder is not None:
            if len(self._builder):
                self._cut_v1()
        elif self._rows:
            self._cut_v2()

    def add_block_passthrough(self, payload: bytes, row_count: int,
                              last_key: Tuple[Any, ...]) -> None:
        """Append one already-compressed v2 block verbatim.

        The caller guarantees the block's rows are sorted after
        everything added so far and before everything added later,
        that the payload's codec matches the sink's, and that it
        feeds key/timestamp bookkeeping itself (``add_bloom_prefixes``
        / ``note_ts_bounds``) since the rows are never decoded here.
        """
        self._cut_pending()
        if self.io_limiter is not None:
            self.io_limiter.acquire(len(payload))
        self._entries.append(_BlockEntry(
            len(self._body), len(payload), row_count, last_key))
        if self.checksums:
            self._block_crcs.append(crc32c(payload))
        self._body += payload
        self.row_count += row_count
        if self.first_key is None:
            self.first_key = last_key  # refined by finish() overrides
        self.last_key = last_key

    def add_bloom_prefixes(self, prefix_rows: Iterable[Tuple[Any, ...]]
                           ) -> None:
        """Feed Bloom prefixes for rows added via passthrough blocks.

        ``prefix_rows`` yields key tuples *without* the trailing
        timestamp (e.g. ``zip(*decoded key columns)``).
        """
        if not self.bloom_bits_per_row:
            return
        for values in prefix_rows:
            self._bloom_add(values)

    def note_ts_bounds(self, min_ts: int, max_ts: int) -> None:
        """Widen the tablet's timespan (passthrough bookkeeping)."""
        if self.min_ts is None or min_ts < self.min_ts:
            self.min_ts = min_ts
        if self.max_ts is None or max_ts > self.max_ts:
            self.max_ts = max_ts

    # ----------------------------------------------------------- finish

    def finish(self, filename: str, tablet_id: int, created_at: int,
               min_key: Optional[Tuple[Any, ...]] = None,
               max_key: Optional[Tuple[Any, ...]] = None
               ) -> Optional[TabletMeta]:
        """Cut the final block, write the file, return its metadata.

        Returns None (writing nothing) if no rows were added.
        ``min_key``/``max_key`` override the tracked zone map - the
        merge path passes bounds derived from the source tablets'
        metadata because passed-through blocks never expose their
        first key.
        """
        self._cut_pending()
        if self.row_count == 0:
            return None
        bloom_bytes = b""
        if self.bloom_bits_per_row:
            bloom = self._bloom
            if bloom is None:
                bloom = KeyPrefixBloom(
                    expected_keys=max(self._expected_rows, self.row_count),
                    key_width=max(1, self._bloom_width),
                    bits_per_key=self.bloom_bits_per_row,
                )
                state: list = []
                for parts in self._bloom_buffered:
                    bloom.add_key_incremental(parts, state)
            bloom_bytes = bloom.serialize()
        footer = self._encode_footer(bloom_bytes)
        compressed_footer = compress(self.codec, footer)
        footer_offset = len(self._body)
        trailer = (len(footer).to_bytes(8, "little")
                   + footer_offset.to_bytes(8, "little"))
        if self.checksums:
            trailer += (crc32c(compressed_footer).to_bytes(4, "little")
                        + CHECKSUM_MAGIC)
        file_bytes = bytes(self._body) + compressed_footer + trailer
        if self.io_limiter is not None:
            self.io_limiter.acquire(len(compressed_footer) + len(trailer))
        self.disk.fire("tablet.write")
        self.disk.write_file(filename, file_bytes)
        return TabletMeta(
            tablet_id=tablet_id,
            filename=filename,
            min_ts=self.min_ts,
            max_ts=self.max_ts,
            row_count=self.row_count,
            size_bytes=len(file_bytes),
            schema_version=self.schema.version,
            created_at=created_at,
            min_key=min_key if min_key is not None else self.first_key,
            max_key=max_key if max_key is not None else self.last_key,
        )

    def _encode_footer(self, bloom_bytes: bytes) -> bytes:
        schema_json = json.dumps(self.schema.to_dict()).encode("utf-8")
        out = bytearray()
        out += encode_uvarint(len(schema_json))
        out += schema_json
        out += encode_uvarint(self.min_ts)
        out += encode_uvarint(self.max_ts)
        out += encode_uvarint(self.row_count)
        out.append(self.codec)
        out += encode_uvarint(len(self._entries))
        for entry in self._entries:
            key_bytes = self._row_codec.encode_key(entry.last_key)
            out += encode_uvarint(entry.offset)
            out += encode_uvarint(entry.compressed_len)
            out += encode_uvarint(entry.row_count)
            out += encode_uvarint(len(key_bytes))
            out += key_bytes
        out += encode_uvarint(len(bloom_bytes))
        out += bloom_bytes
        # Trailing fields: absent in pre-v2 footers (which end at the
        # Bloom bytes), so readers treat a missing version as v1.
        out += encode_uvarint(self.block_format)
        # v2.1: one CRC per block, over the compressed payload.  The
        # reader only looks for these when the trailer carries the
        # v2.1 magic, so legacy parsers stay compatible.
        if self.checksums:
            out += encode_uvarint(len(self._entries))
            for crc in self._block_crcs:
                out += crc.to_bytes(4, "little")
        return bytes(out)


class TabletWriter:
    """Writes one tablet file from an iterator of sorted rows."""

    def __init__(self, disk: SimulatedDisk, schema: Schema,
                 block_size: int, compression: str,
                 bloom_bits_per_row: int = 0,
                 block_format: int = BLOCK_FORMAT_V2,
                 metrics=None, checksums: bool = True, io_limiter=None):
        self.disk = disk
        self.schema = schema
        self.codec = codec_id(compression)
        self.compression = compression
        self.block_size = block_size
        self.bloom_bits_per_row = bloom_bits_per_row
        self.block_format = block_format
        self.checksums = checksums
        self.metrics = metrics
        self.io_limiter = io_limiter
        self._row_codec = RowCodec(schema)

    def write(self, filename: str, rows: Iterable[Tuple[Any, ...]],
              tablet_id: int, created_at: int, expected_rows: int = 0,
              encoded_pairs: Optional[Iterable[Tuple[Tuple[Any, ...], bytes]]]
              = None,
              sized_pairs: Optional[Iterable[Tuple[Tuple[Any, ...], int]]]
              = None) -> Optional[TabletMeta]:
        """Encode and write ``rows`` (already sorted by key, unique).

        Returns the tablet's metadata, or None if ``rows`` was empty
        (no file is written).  ``expected_rows`` sizes the Bloom
        filter up front (0 defers sizing to the actual count).  When
        the caller already knows each row's encoded size
        (memtables do, §3.2's flush path), ``sized_pairs`` supplies
        (row, size) pairs; ``encoded_pairs`` supplies (row, v1 bytes)
        pairs (the legacy merge path); in either case ``rows`` is
        ignored.
        """
        sink = TabletSink(self.disk, self.schema, self.block_size,
                          self.compression, self.bloom_bits_per_row,
                          self.block_format, metrics=self.metrics,
                          expected_rows=expected_rows,
                          checksums=self.checksums,
                          io_limiter=self.io_limiter)
        if sized_pairs is not None:
            for row, size in sized_pairs:
                sink.add_row(row, size=size)
        elif encoded_pairs is not None:
            if self.block_format == BLOCK_FORMAT_V1:
                for row, encoded in encoded_pairs:
                    sink.add_encoded(row, encoded)
            else:
                for row, encoded in encoded_pairs:
                    sink.add_row(row, size=len(encoded))
        else:
            for row in rows:
                sink.add_row(row)
        return sink.finish(filename, tablet_id, created_at)


class _ParsedFooter:
    """The reader state a parsed footer yields, cacheable by uid.

    Reopening a reader for a tablet whose footer is resident (same
    file identity, tracked by the read cache's uid) restores this
    without the three cold seeks or the parse.
    """

    __slots__ = ("schema", "row_codec", "min_ts", "max_ts", "row_count",
                 "codec", "entries", "last_keys", "bloom", "body_size",
                 "block_format", "block_crcs")

    def __init__(self, schema, row_codec, min_ts, max_ts, row_count,
                 codec, entries, last_keys, bloom, body_size,
                 block_format, block_crcs=None):
        self.schema = schema
        self.row_codec = row_codec
        self.min_ts = min_ts
        self.max_ts = max_ts
        self.row_count = row_count
        self.codec = codec
        self.entries = entries
        self.last_keys = last_keys
        self.bloom = bloom
        self.body_size = body_size
        self.block_format = block_format
        self.block_crcs = block_crcs


class TabletReader:
    """Reads one tablet file; the parsed footer is cached in memory.

    §3.2: "On average, these indexes are only 0.5% of their tablets'
    sizes, so LittleTable caches them almost indefinitely in main
    memory."  The table keeps one reader per live tablet.

    ``cache`` (a :class:`~repro.core.readcache.ReadCache`) holds
    decoded blocks and parsed footers across readers, keyed by
    ``cache_uid`` - the tablet's process-unique identity, allocated
    when the table registers the tablet and invalidated when its file
    is deleted or replaced.  Without a cache every read decodes from
    the (simulated) disk, exactly the pre-cache behaviour.  Lists
    returned from cached blocks are shared: callers must not mutate
    them.
    """

    def __init__(self, disk: SimulatedDisk, filename: str, metrics=None,
                 cache=None, cache_uid: Optional[int] = None):
        self.disk = disk
        self.filename = filename
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self._m_blocks_read = self.metrics.counter("tablet.blocks_read")
        self._m_block_bytes = self.metrics.counter("tablet.block_bytes_read")
        self._m_footer_loads = self.metrics.counter("tablet.footer_loads")
        self._m_checksum_failures = self.metrics.counter(
            "storage.checksum_failures")
        self._m_bloom_probes = self.metrics.counter("bloom.probes")
        self._m_bloom_negative = self.metrics.counter("bloom.negatives")
        self._m_bloom_positive = self.metrics.counter("bloom.positives")
        # decode_rows takes a real registry or None (never the null).
        self._decode_metrics = metrics if metrics is not None else None
        self._cache = cache if cache is not None else NULL_READ_CACHE
        self._cache_uid = (cache_uid if cache_uid is not None
                           else self._cache.allocate_uid())
        self._loaded = False
        self.schema: Optional[Schema] = None
        self.min_ts = 0
        self.max_ts = 0
        self.row_count = 0
        self._codec = 0
        self._entries: List[_BlockEntry] = []
        self._last_keys: List[Tuple[Any, ...]] = []
        self._row_codec: Optional[RowCodec] = None
        self._bloom: Optional[KeyPrefixBloom] = None
        self._body_size = 0
        self.block_format = BLOCK_FORMAT_V1
        self._block_crcs: Optional[List[int]] = None
        self._schema_codec: Optional[SchemaCodec] = None

    @property
    def has_checksums(self) -> bool:
        """True when this tablet carries v2.1 content CRCs."""
        self.ensure_loaded()
        return self._block_crcs is not None

    # ----------------------------------------------------------- footer

    def ensure_loaded(self) -> None:
        """Load and parse the footer on first use (3 cold seeks).

        A footer already resident in the read cache (keyed by the
        tablet's uid) is restored without touching the disk.
        """
        if self._loaded:
            return
        cached = self._cache.get_footer(self._cache_uid)
        if cached is not None:
            self._install_footer(cached)
            self._loaded = True
            return
        disk = self.disk
        disk.open(self.filename)  # inode
        size = disk.size(self.filename)
        if size < TRAILER_BYTES:
            raise CorruptTabletError(f"{self.filename}: too small")
        # v2.1 files end in a 24-byte trailer tagged with the magic; a
        # legacy trailer's last 4 bytes are the high bytes of the
        # footer offset (always zero), so the magic cannot collide.
        tail_len = min(size, CHECKSUM_TRAILER_BYTES)
        tail = disk.read(self.filename, size - tail_len, tail_len)
        footer_crc: Optional[int] = None
        if (tail_len == CHECKSUM_TRAILER_BYTES
                and tail[20:24] == CHECKSUM_MAGIC):
            footer_size = int.from_bytes(tail[0:8], "little")
            footer_offset = int.from_bytes(tail[8:16], "little")
            footer_crc = int.from_bytes(tail[16:20], "little")
            trailer_bytes = CHECKSUM_TRAILER_BYTES
        else:
            trailer = tail[-TRAILER_BYTES:]
            footer_size = int.from_bytes(trailer[:8], "little")
            footer_offset = int.from_bytes(trailer[8:16], "little")
            trailer_bytes = TRAILER_BYTES
        compressed_len = size - trailer_bytes - footer_offset
        if compressed_len < 0 or footer_offset > size:
            raise CorruptTabletError(f"{self.filename}: bad trailer")
        compressed = disk.read(self.filename, footer_offset, compressed_len)
        if footer_crc is not None and crc32c(compressed) != footer_crc:
            self._m_checksum_failures.inc()
            raise ChecksumError(
                f"{self.filename}: footer checksum mismatch")
        self._body_size = footer_offset
        self._parse_footer(compressed, footer_size,
                           has_checksums=footer_crc is not None)
        self._loaded = True
        self._m_footer_loads.inc()
        self._cache.put_footer(self._cache_uid, _ParsedFooter(
            self.schema, self._row_codec, self.min_ts, self.max_ts,
            self.row_count, self._codec, self._entries, self._last_keys,
            self._bloom, self._body_size, self.block_format,
            self._block_crcs))

    def _install_footer(self, footer: _ParsedFooter) -> None:
        self.schema = footer.schema
        self._row_codec = footer.row_codec
        self.min_ts = footer.min_ts
        self.max_ts = footer.max_ts
        self.row_count = footer.row_count
        self._codec = footer.codec
        self._entries = footer.entries
        self._last_keys = footer.last_keys
        self._bloom = footer.bloom
        self._body_size = footer.body_size
        self.block_format = footer.block_format
        self._block_crcs = footer.block_crcs
        self._schema_codec = SchemaCodec(self.schema, self._decode_metrics)

    def _parse_footer(self, compressed: bytes, footer_size: int,
                      has_checksums: bool = False) -> None:
        # The codec byte lives inside the (possibly compressed) footer,
        # so detect the footer's own encoding by attempting zlib first
        # and falling back to raw; the trailer's decompressed-size word
        # disambiguates.
        try:
            footer = decompress(1, compressed)
        except CorruptTabletError:
            footer = compressed
        if len(footer) != footer_size:
            if len(compressed) == footer_size:
                footer = compressed
            else:
                raise CorruptTabletError(
                    f"{self.filename}: footer size mismatch"
                )
        self._parse_footer_body(footer, has_checksums)

    def _parse_footer_body(self, footer: bytes,
                           has_checksums: bool = False) -> None:
        offset = 0
        schema_len, offset = decode_uvarint(footer, offset)
        try:
            schema_dict = json.loads(footer[offset:offset + schema_len])
        except (ValueError, UnicodeDecodeError) as exc:
            raise CorruptTabletError(f"{self.filename}: bad schema: {exc}") from exc
        offset += schema_len
        self.schema = Schema.from_dict(schema_dict)
        self._row_codec = RowCodec(self.schema)
        self.min_ts, offset = decode_uvarint(footer, offset)
        self.max_ts, offset = decode_uvarint(footer, offset)
        self.row_count, offset = decode_uvarint(footer, offset)
        if offset >= len(footer):
            raise CorruptTabletError(f"{self.filename}: truncated footer")
        self._codec = footer[offset]
        offset += 1
        block_count, offset = decode_uvarint(footer, offset)
        entries: List[_BlockEntry] = []
        for _ in range(block_count):
            block_offset, offset = decode_uvarint(footer, offset)
            compressed_len, offset = decode_uvarint(footer, offset)
            row_count, offset = decode_uvarint(footer, offset)
            key_len, offset = decode_uvarint(footer, offset)
            key_bytes = footer[offset:offset + key_len]
            if len(key_bytes) != key_len:
                raise CorruptTabletError(f"{self.filename}: truncated key")
            offset += key_len
            last_key, _ = self._row_codec.decode_key(key_bytes)
            entries.append(_BlockEntry(block_offset, compressed_len,
                                       row_count, last_key))
        bloom_len, offset = decode_uvarint(footer, offset)
        bloom_bytes = footer[offset:offset + bloom_len]
        if len(bloom_bytes) != bloom_len:
            raise CorruptTabletError(f"{self.filename}: truncated bloom")
        offset += bloom_len
        self._bloom = (
            KeyPrefixBloom.deserialize(bloom_bytes) if bloom_len else None
        )
        # Footers written before block format v2 end here; the version
        # field's absence means the blocks are row-major v1.
        if offset < len(footer):
            block_format, offset = decode_uvarint(footer, offset)
            if block_format not in (BLOCK_FORMAT_V1, BLOCK_FORMAT_V2):
                raise CorruptTabletError(
                    f"{self.filename}: unknown block format {block_format}")
            self.block_format = block_format
        else:
            self.block_format = BLOCK_FORMAT_V1
        # v2.1 (signalled by the trailer magic): per-block CRCs.  The
        # footer CRC already vouched for these bytes, so failures here
        # mean a buggy writer, not bit rot - still refuse to serve.
        self._block_crcs = None
        if has_checksums:
            if offset >= len(footer):
                raise CorruptTabletError(
                    f"{self.filename}: missing block checksums")
            crc_count, offset = decode_uvarint(footer, offset)
            if crc_count != len(entries):
                raise CorruptTabletError(
                    f"{self.filename}: block checksum count mismatch")
            if offset + 4 * crc_count > len(footer):
                raise CorruptTabletError(
                    f"{self.filename}: truncated block checksums")
            self._block_crcs = [
                int.from_bytes(footer[offset + 4 * i:offset + 4 * i + 4],
                               "little")
                for i in range(crc_count)
            ]
            offset += 4 * crc_count
        self._entries = entries
        self._last_keys = [entry.last_key for entry in entries]
        self._schema_codec = SchemaCodec(self.schema, self._decode_metrics)

    # ------------------------------------------------------------ blocks

    @property
    def block_count(self) -> int:
        self.ensure_loaded()
        return len(self._entries)

    def block_entries(self) -> List[_BlockEntry]:
        """The footer's block index (offset, length, count, last key)."""
        self.ensure_loaded()
        return self._entries

    @property
    def codec_byte(self) -> int:
        """The compression codec id this tablet's blocks use."""
        self.ensure_loaded()
        return self._codec

    @property
    def schema_codec(self) -> SchemaCodec:
        self.ensure_loaded()
        return self._schema_codec

    def read_block_payload(self, index: int) -> bytes:
        """The compressed bytes of block ``index`` (one seek).

        On v2.1 tablets the payload's CRC is verified here - every
        disk read of a block passes through this method, so a flipped
        bit anywhere in the body surfaces as :class:`ChecksumError`
        before any row is decoded.
        """
        self.ensure_loaded()
        entry = self._entries[index]
        payload = self.disk.read(self.filename, entry.offset,
                                 entry.compressed_len)
        self._m_blocks_read.inc()
        self._m_block_bytes.inc(entry.compressed_len)
        crcs = self._block_crcs
        if crcs is not None and crc32c(payload) != crcs[index]:
            self._m_checksum_failures.inc()
            raise ChecksumError(
                f"{self.filename}: block {index} checksum mismatch")
        return payload

    def decode_payload(self, index: int, payload: bytes
                       ) -> Tuple[List[Tuple[Any, ...]],
                                  List[Tuple[Any, ...]]]:
        """Decode one block's compressed payload into (rows, keys)."""
        entry = self._entries[index]
        raw = decompress(self._codec, payload)
        if self.block_format == BLOCK_FORMAT_V2:
            rows, keys = self._schema_codec.decode_block(raw)
            if len(rows) != entry.row_count:
                raise CorruptTabletError(
                    f"{self.filename}: block {index} row count mismatch")
            self._count_decoded(len(rows), len(raw))
        else:
            rows = decode_rows(raw, self._row_codec, entry.row_count,
                               metrics=self._decode_metrics)
            key_of = self.schema.key_of
            keys = [key_of(row) for row in rows]
        return rows, keys

    def _count_decoded(self, row_count: int, raw_len: int) -> None:
        metrics = self._decode_metrics
        if metrics is not None:
            metrics.counter("block.decoded").inc()
            metrics.counter("block.rows_decoded").inc(row_count)
            metrics.counter("block.decoded_bytes").inc(raw_len)

    def read_block(self, index: int) -> List[Tuple[Any, ...]]:
        """Read and decode block ``index`` (one seek if uncached).

        Served from the read cache when the decoded block is resident;
        the returned list is shared with the cache - do not mutate.
        """
        self.ensure_loaded()
        cached = self._cache.get_block(self._cache_uid, index)
        if cached is not None:
            return cached.rows
        rows, raw_len, keys = self._read_block_uncached(index)
        self._cache.put_block(self._cache_uid, index, rows, raw_len,
                              keys=keys)
        return rows

    def _read_block_uncached(self, index: int
                             ) -> Tuple[List[Tuple[Any, ...]], int,
                                        Optional[List[Tuple[Any, ...]]]]:
        """Disk read + decompress + decode; (rows, raw bytes, keys).

        v2 blocks decode rows and keys in one batch pass; for v1
        blocks keys are None and extracted lazily by scans.
        """
        entry = self._entries[index]
        payload = self.read_block_payload(index)
        raw = decompress(self._codec, payload)
        if self.block_format == BLOCK_FORMAT_V2:
            rows, keys = self._schema_codec.decode_block(raw)
            if len(rows) != entry.row_count:
                raise CorruptTabletError(
                    f"{self.filename}: block {index} row count mismatch")
            self._count_decoded(len(rows), len(raw))
            return rows, len(raw), keys
        rows = decode_rows(raw, self._row_codec, entry.row_count,
                           metrics=self._decode_metrics)
        return rows, len(raw), None

    def _scan_block(self, index: int) -> Tuple[List[Tuple[Any, ...]],
                                               List[Tuple[Any, ...]]]:
        """Block rows plus their keys, both cache-resident when warm.

        Keys come straight out of the v2 batch decode; for v1 blocks
        they are extracted at most once per cached block (stored on
        the cache entry), so warm scans skip both the decode and the
        per-row key extraction.
        """
        cached = self._cache.get_block(self._cache_uid, index)
        if cached is None:
            rows, raw_len, keys = self._read_block_uncached(index)
            cached = self._cache.put_block(self._cache_uid, index, rows,
                                           raw_len, keys=keys)
            if cached is None:  # caching disabled
                if keys is None:
                    key_of = self.schema.key_of
                    keys = [key_of(row) for row in rows]
                return rows, keys
        if cached.keys is None:
            key_of = self.schema.key_of
            cached.keys = [key_of(row) for row in cached.rows]
        return cached.rows, cached.keys

    @property
    def last_keys(self) -> List[Tuple[Any, ...]]:
        """Each block's last key (the block index's search structure).

        The vectorized scan uses these to prove a block lies entirely
        inside the key bounds (so it can skip materializing keys):
        every key of block ``i`` is > ``last_keys[i-1]`` and <=
        ``last_keys[i]``, and the range predicates are monotone.
        """
        self.ensure_loaded()
        return self._last_keys

    def scan_block_columns(self, index: int, need_keys: bool = True
                           ) -> Tuple[List[List[Any]],
                                      Optional[List[Tuple[Any, ...]]], int]:
        """Block ``index`` as per-column value lists (vectorized path).

        Returns ``(columns, keys, row_count)``; ``keys`` is None when
        ``need_keys`` is false (interior blocks proven fully in range
        never pay for key materialization).  A warm cache entry is
        transposed once and the column view is kept on the entry;
        a cold read decodes columns straight from the v2 block body
        and deliberately does not populate the row cache - one-off
        rollup scans should not evict hot row blocks.
        """
        self.ensure_loaded()
        entry = self._entries[index]
        cached = self._cache.get_block(self._cache_uid, index)
        if cached is not None:
            columns = cached.columns
            if columns is None:
                columns = cached.columns = list(zip(*cached.rows))
            if not need_keys:
                return columns, None, len(cached.rows)
            if cached.keys is None:
                key_of = self.schema.key_of
                cached.keys = [key_of(row) for row in cached.rows]
            return columns, cached.keys, len(cached.rows)
        payload = self.read_block_payload(index)
        raw = decompress(self._codec, payload)
        columns = self._schema_codec.decode_block_columns(raw)
        count = len(columns[0]) if columns else 0
        if count != entry.row_count:
            raise CorruptTabletError(
                f"{self.filename}: block {index} row count mismatch")
        self._count_decoded(count, len(raw))
        keys = None
        if need_keys:
            key_indexes = self.schema.key_indexes
            keys = list(zip(*(columns[i] for i in key_indexes)))
        return columns, keys, count

    def probe_key(self, key: Tuple[Any, ...]) -> bool:
        """Does this tablet hold exactly ``key``?  (Duplicate checks.)

        Warm blocks answer from the cache; cold v2 blocks decode only
        the restart span covering the key via ``decode_range`` and do
        not pollute the cache.
        """
        self.ensure_loaded()
        index = bisect.bisect_left(self._last_keys, key)
        if index >= len(self._entries):
            return False
        cached = self._cache.get_block(self._cache_uid, index)
        if cached is not None:
            if cached.keys is None:
                key_of = self.schema.key_of
                cached.keys = [key_of(row) for row in cached.rows]
            keys = cached.keys
        elif self.block_format == BLOCK_FORMAT_V2:
            payload = self.read_block_payload(index)
            raw = decompress(self._codec, payload)
            _rows, keys, _base = self._schema_codec.decode_range(
                raw, lo_key=key, hi_prefix=key)
        else:
            _rows, keys = self._scan_block(index)
        position = bisect.bisect_left(keys, key)
        return position < len(keys) and keys[position] == key

    def scan_pairs(self) -> Iterator[Tuple[Tuple[Any, ...], bytes]]:
        """Full ascending scan yielding (row, v1 encoding) pairs.

        The legacy (v1-format) merge path streams these straight into
        the output tablet; v2 tablets re-encode through the compiled
        row encoder, since a v1-format consumer is asking.
        """
        self.ensure_loaded()
        if self.block_format == BLOCK_FORMAT_V2:
            encode = self._schema_codec.encode_row_v1
            for index in range(len(self._entries)):
                rows, _keys = self.decode_payload(
                    index, self.read_block_payload(index))
                for row in rows:
                    yield row, encode(row)
            return
        for index in range(len(self._entries)):
            entry = self._entries[index]
            payload = self.read_block_payload(index)
            yield from decode_block_pairs(payload, self._codec,
                                          self._row_codec, entry.row_count,
                                          metrics=self._decode_metrics)

    def first_block_for(self, key_range: KeyRange) -> int:
        """Index of the first block that may hold in-range keys."""
        self.ensure_loaded()
        seek = key_range.seek_min()
        if seek is None:
            return 0
        # First block whose last key is >= the seek prefix.  Tuple
        # comparison does the right thing for prefixes: (a,) <= (a, b).
        return bisect.bisect_left(self._last_keys, seek)

    def last_block_for(self, key_range: KeyRange) -> int:
        """Index of the last block that may hold in-range keys."""
        self.ensure_loaded()
        if key_range.max_prefix is None:
            return len(self._entries) - 1
        # First block whose last key is beyond the max bound may still
        # contain in-range keys (its earlier rows); blocks after it
        # cannot.
        low, high = 0, len(self._entries)
        while low < high:
            mid = (low + high) // 2
            if key_range.after_range(self._last_keys[mid]):
                high = mid
            else:
                low = mid + 1
        return min(low, len(self._entries) - 1)

    def may_contain_prefix(self, encoded_columns: List[bytes]) -> Optional[bool]:
        """Bloom-filter probe; None when no filter is stored.

        A negative probe is the filter's payoff: the caller skips this
        tablet entirely, so ``bloom.negatives / bloom.probes`` is the
        §3.4.5 skip rate.
        """
        self.ensure_loaded()
        if self._bloom is None:
            return None
        self._m_bloom_probes.inc()
        verdict = self._bloom.may_contain_prefix(encoded_columns)
        if verdict:
            self._m_bloom_positive.inc()
        else:
            self._m_bloom_negative.inc()
        return verdict

    # ----------------------------------------------------------- cursors

    def scan(self, key_range: KeyRange, descending: bool = False
             ) -> Iterator[Tuple[Any, ...]]:
        """Yield rows within the key range, in key order.

        Rows are *not* filtered by timestamp here; the merge cursor
        does that (and counts them as scanned, which is what Figure 9
        measures).
        """
        self.ensure_loaded()
        if not self._entries:
            return
        if descending:
            yield from self._scan_desc(key_range)
        else:
            yield from self._scan_asc(key_range)

    def _scan_asc(self, key_range: KeyRange) -> Iterator[Tuple[Any, ...]]:
        start_block = self.first_block_for(key_range)
        for index in range(start_block, len(self._entries)):
            rows, keys = self._scan_block(index)
            position = 0
            if index == start_block:
                seek = key_range.seek_min()
                if seek is not None:
                    position = bisect.bisect_left(keys, seek)
            for row_index in range(position, len(rows)):
                key = keys[row_index]
                # An exclusive prefix bound can exclude rows beyond the
                # seek position (and past the first block); the check is
                # monotone, so it stops firing once the scan passes it.
                if key_range.before_range(key):
                    continue
                if key_range.after_range(key):
                    return
                yield rows[row_index]

    def _scan_desc(self, key_range: KeyRange) -> Iterator[Tuple[Any, ...]]:
        start_block = self.last_block_for(key_range)
        for index in range(start_block, -1, -1):
            rows, keys = self._scan_block(index)
            position = len(rows) - 1
            for row_index in range(position, -1, -1):
                key = keys[row_index]
                if key_range.after_range(key):
                    continue
                if key_range.before_range(key):
                    return
                yield rows[row_index]
