"""The LittleTable database: a catalog of tables over one disk.

This is the server-side object: it owns the simulated disk, creates
and drops tables, runs maintenance (flushing, merging, TTL reclaim),
and implements crash/recovery semantics.  The network server
(:mod:`repro.net.server`) exposes it over TCP; in-process users (tests,
benchmarks, the Dashboard applications) can use it directly.
"""

from __future__ import annotations

import dataclasses
import os
import warnings
from typing import Any, Dict, List, Optional, Sequence

from ..disk.faults import FailpointRegistry, classify_storage_error
from ..disk.storage import Storage
from ..disk.vfs import SimulatedDisk
from ..obs.metrics import MetricsRegistry
from ..obs.trace import Tracer
from ..util.clock import Clock, SystemClock
from .config import DEFAULT_CONFIG, EngineConfig
from .descriptor import TableDescriptor
from .durability import DurabilityPolicy
from .errors import NoSuchTableError, ReadOnlyModeError, TableExistsError
from .iosched import IORateLimiter
from .maintenance import MaintenancePolicy, MaintenanceReport
from .readcache import ReadCache
from .recovery import ScrubReport, startup_scrub
from .row import Query
from .schema import Schema
from .table import QueryResult, Table

# Environment hook for the failpoint framework: arms the disk with a
# registry parsed from e.g. "flush.before_descriptor=crash*1" without
# touching any code (see repro.disk.faults.FailpointRegistry.from_env).
FAILPOINTS_ENV = "LITTLETABLE_FAILPOINTS"

# Consecutive storage-layer I/O errors (EIO) before the engine
# degrades to read-only; a single ENOSPC degrades immediately.
EIO_READ_ONLY_THRESHOLD = 3

# Loose durability-adjacent constructor kwargs that fold into
# DurabilityPolicy (mirroring the ClientConfig consolidation).  They
# keep working behind DeprecationWarning shims; everything else in
# ``**legacy`` is a genuine typo and raises TypeError.
_LEGACY_DURABILITY_KWARGS = ("startup_scrub", "checksums")


class LittleTable:
    """A single-node LittleTable instance.

    >>> from repro.core import Column, ColumnType, Schema
    >>> db = LittleTable()
    >>> schema = Schema(
    ...     [Column("network", ColumnType.INT64),
    ...      Column("device", ColumnType.INT64),
    ...      Column("ts", ColumnType.TIMESTAMP),
    ...      Column("bytes", ColumnType.INT64)],
    ...     key=["network", "device", "ts"])
    >>> table = db.create_table("usage", schema)
    """

    def __init__(self, disk: Optional[SimulatedDisk] = None,
                 config: Optional[EngineConfig] = None,
                 clock: Optional[Clock] = None,
                 cold_disk: Optional[SimulatedDisk] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 tracer: Optional[Tracer] = None,
                 maintenance_policy: Optional[MaintenancePolicy] = None,
                 durability: Optional[DurabilityPolicy] = None,
                 **legacy: Any):
        self.disk = disk if disk is not None else SimulatedDisk()
        # Optional write-once archive tier for old tablets (§6's
        # LHAM-style extension); see Table.migrate_to_cold.
        self.cold_disk = cold_disk
        self.config = config if config is not None else EngineConfig()
        # Database-default durability policy; per-table overrides come
        # from create_table / the persisted descriptor.  The loose
        # scrub/checksum kwargs fold in here as deprecated shims.
        policy = durability if durability is not None else DurabilityPolicy()
        if legacy:
            unknown = sorted(set(legacy) - set(_LEGACY_DURABILITY_KWARGS))
            if unknown:
                raise TypeError(
                    "LittleTable() got unexpected keyword arguments: "
                    + ", ".join(unknown))
            warnings.warn(
                "LittleTable(%s) is deprecated; set the field on "
                "DurabilityPolicy and pass durability=" %
                ", ".join(f"{k}=..." for k in sorted(legacy)),
                DeprecationWarning, stacklevel=2)
            policy = dataclasses.replace(policy, **legacy)
        policy.validate()
        self.durability = policy
        overrides = {name: getattr(policy, name)
                     for name in _LEGACY_DURABILITY_KWARGS
                     if getattr(policy, name) is not None}
        if overrides:
            self.config = dataclasses.replace(self.config, **overrides)
        self.config.validate()
        # Set by a warm standby's Follower (repro.net.replica) so lag
        # shows up in wal_status()/health_summary(); None on a primary.
        self.replication = None
        self.clock = clock if clock is not None else SystemClock()
        # One registry/tracer for the whole instance: tables, tablet
        # readers, the disks, and the network server all record here,
        # and ``db.metrics.snapshot()`` is the single source of truth
        # that the STATS command, the CLI, and the dashboard render.
        # Pass ``metrics=NULL_REGISTRY`` to disable collection.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()
        self.disk.attach_metrics(self.metrics)
        if self.cold_disk is not None:
            self.cold_disk.attach_metrics(self.metrics)
        # One engine-wide read cache (decoded blocks + parsed footers):
        # the byte budget is shared across all tables, like an OS page
        # cache.  ``config.read_cache_bytes = 0`` disables it.
        self.read_cache = ReadCache(self.config.read_cache_bytes,
                                    metrics=self.metrics)
        # How background maintenance behaves (tick interval, workers,
        # insert backpressure, merge budget).  The scheduler itself is
        # lazy: start_maintenance() spins it up, close() stops it.
        self.maintenance_policy = (
            maintenance_policy if maintenance_policy is not None
            else MaintenancePolicy())
        self.maintenance_policy.validate()
        # One token bucket pacing background writes (flush + merge)
        # across all tables: a merge on one table competes with every
        # other table's IO exactly as they share the real disk.  The
        # SLO controller (when armed) modulates the rate live.
        self.io_limiter = None
        if self.config.io_rate_limit_bytes_s is not None:
            self.io_limiter = IORateLimiter(
                self.config.io_rate_limit_bytes_s, metrics=self.metrics)
        self._scheduler = None
        self._tables: Dict[str, Table] = {}
        # Read-only degradation state (ISSUE: "the server degrades to
        # read-only on ENOSPC or persistent EIO").  Inserts are
        # rejected with ReadOnlyModeError; queries keep serving.
        self._read_only_reason: Optional[str] = None
        self._io_failure_streak = 0
        self._m_read_only = self.metrics.gauge("fault.read_only")
        self._m_read_only_entries = self.metrics.counter(
            "fault.read_only_entries")
        self._m_read_only_rejections = self.metrics.counter(
            "fault.read_only_rejections")
        # Startup scrub BEFORE the env failpoint hook arms: recovery
        # is the administrative pass cleaning up the last crash, not
        # part of the workload under test.
        if self.config.startup_scrub:
            self.last_scrub = startup_scrub(self.disk, self.metrics)
        else:
            self.last_scrub = ScrubReport()
        if self.disk.failpoints is None:
            spec = os.environ.get(FAILPOINTS_ENV, "")
            if spec:
                self.disk.failpoints = FailpointRegistry.from_env(spec)
        if self.disk.failpoints is not None:
            self.disk.failpoints.attach_metrics(self.metrics)
        self._open_existing_tables()

    @classmethod
    def open(cls, data_dir: Optional[str], **kwargs: Any) -> "LittleTable":
        """Open (or create) a persistent engine over ``data_dir``.

        The canonical way to get a file-backed instance — the CLI, the
        servers, and the shard router all open engines through here.
        ``data_dir=None`` returns an in-memory engine; any
        :class:`LittleTable` constructor keyword passes through, so a
        shard router can hand every worker the same clock, metrics
        registry, and config.
        """
        if data_dir is None:
            return cls(**kwargs)
        from ..disk.storage import FileStorage

        return cls(disk=SimulatedDisk(FileStorage(data_dir)), **kwargs)

    def _open_existing_tables(self) -> None:
        for name in TableDescriptor.list_tables(self.disk):
            descriptor = TableDescriptor.load(self.disk, name)
            # Per-table policy layers over the database default; the
            # persisted tier wins so WAL-covered tables replay even
            # when the engine opens with a plain default policy.
            effective = self.durability.merged_with(
                DurabilityPolicy.from_dict(descriptor.durability))
            table = Table(self.disk, descriptor, self.config,
                          self.clock, cold_disk=self.cold_disk,
                          metrics=self.metrics,
                          tracer=self.tracer,
                          read_cache=self.read_cache,
                          durability=effective)
            table._fault_listener = self._note_storage_failure
            table.io_limiter = self.io_limiter
            if table.wal is not None:
                table.replay_wal()
            self._tables[name] = table

    # ----------------------------------------------------------- catalog

    def table_names(self) -> List[str]:
        """Names of all tables, sorted."""
        return sorted(self._tables)

    def table(self, name: str) -> Table:
        """Look up a table by name."""
        try:
            return self._tables[name]
        except KeyError:
            raise NoSuchTableError(f"no such table: {name!r}") from None

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def create_table(self, name: str, schema: Schema,
                     ttl_micros: Optional[int] = None,
                     durability: Optional[DurabilityPolicy] = None) -> Table:
        """Create a new, empty table.

        ``durability`` layers over the database default; the effective
        policy's table-level fields persist in the descriptor so the
        table keeps its tier across re-opens.
        """
        if name in self._tables:
            raise TableExistsError(f"table exists: {name!r}")
        if "/" in name or not name:
            raise ValueError(f"bad table name: {name!r}")
        self._check_writable()
        effective = self.durability.merged_with(durability)
        effective.validate()
        descriptor = TableDescriptor(name=name, schema=schema,
                                     ttl_micros=ttl_micros)
        # Persist only the table-level fields (engine-level knobs like
        # follow_addr / scrub overrides don't belong to one table); a
        # none-tier policy persists nothing, keeping the descriptor
        # byte-identical to pre-durability engines.
        table_fields = ("tier", "group_commit_ms", "wal_segment_bytes")
        persisted = {key: value for key, value in effective.to_dict().items()
                     if key in table_fields}
        descriptor.durability = persisted or None
        descriptor.save(self.disk)
        table = Table(self.disk, descriptor, self.config, self.clock,
                      cold_disk=self.cold_disk, metrics=self.metrics,
                      tracer=self.tracer, read_cache=self.read_cache,
                      durability=effective)
        table._fault_listener = self._note_storage_failure
        table.io_limiter = self.io_limiter
        self._tables[name] = table
        return table

    def drop_table(self, name: str) -> None:
        """Drop a table and delete its files.

        §3.5: applications "drop a table and recreate it with a new
        schema ... frequently during new feature development".
        """
        table = self.table(name)
        # Serialize with in-flight maintenance and swaps: once both
        # locks are held no flush/merge is mid-write and no new one
        # can start; the catalog entry goes away before the files.
        with table._maintenance_lock, table.lock:
            del self._tables[name]
            metas = list(table.descriptor.tablets)
            table.descriptor.tablets = []
            pending = list(table._pending_deletes)
            table._pending_deletes = []
        for meta in metas:
            table._delete_tablet_file(meta)
        # Deferred deletes carry their target disk explicitly (a
        # migrated tablet's hot copy must not route by its new tier).
        table._dispose(pending)
        if table.wal is not None:
            table.wal.delete_files()
        if self.disk.exists(table.descriptor.path()):
            self.disk.delete(table.descriptor.path())

    # -------------------------------------------------------- operations
    #
    # The facade is symmetric: insert/query/latest all take the table
    # name, so callers need not reach through ``db.table(x)`` for the
    # common operations (they still can, for the full Table API).

    def insert(self, table_name: str, rows: Sequence[Dict[str, Any]]) -> int:
        """Insert dict rows into a table."""
        self._check_writable()
        return self.table(table_name).insert(rows)

    def query(self, table_name: str,
              query: Optional[Query] = None) -> QueryResult:
        """Run one query command against a table.

        ``query`` defaults to the unbounded rectangle (all keys, all
        time); the server row limit still applies, exactly as with
        ``Table.query``.
        """
        return self.table(table_name).query(
            query if query is not None else Query())

    def latest(self, table_name: str, prefix: Sequence[Any],
               max_lookback_micros: Optional[int] = None):
        """Latest row whose key starts with ``prefix`` (§3.4.5)."""
        return self.table(table_name).latest(
            prefix, max_lookback_micros=max_lookback_micros)

    def maintenance(self) -> MaintenanceReport:
        """Run one maintenance tick on every table.

        Returns a typed :class:`MaintenanceReport` (the old
        ``Dict[str, Dict[str, int]]`` shape remains readable through
        its mapping accessors and ``.as_dict()``, deprecated).  One
        table failing never stops the pass: the error lands on that
        table's entry.
        """
        report = MaintenanceReport()
        streak_before = self._io_failure_streak
        for name in self.table_names():
            try:
                table = self._tables[name]
            except KeyError:  # dropped concurrently
                continue
            try:
                report.add(table.maintenance(
                    merge_budget=self.maintenance_policy
                    .merge_budget_per_tick,
                    expire_ttl=self.maintenance_policy.expire_ttl))
            except Exception as exc:  # crash isolation per table
                from .maintenance import TableMaintenanceReport

                report.add(TableMaintenanceReport(
                    table=name,
                    errors=[f"maintenance: {type(exc).__name__}: {exc}"]))
        # A full pass with no fresh storage failure breaks the EIO
        # streak: only *consecutive* errors count toward read-only.
        if self._io_failure_streak == streak_before:
            self._io_failure_streak = 0
        return report

    def maintenance_until_quiet(self, max_rounds: int = 1000) -> int:
        """Repeat maintenance until no table has work.  Returns rounds.

        Quiescence is :attr:`MaintenanceReport.is_quiet`, which covers
        *every* work kind - the old hand-rolled check ignored TTL
        expiry (and errors), so a database still reclaiming could be
        declared quiet one round early.
        """
        for round_index in range(max_rounds):
            if self.maintenance().is_quiet:
                return round_index
        return max_rounds

    def start_maintenance(self):
        """Start the background :class:`MaintenanceScheduler` under
        :attr:`maintenance_policy` (idempotent).  Returns it."""
        from .scheduler import MaintenanceScheduler

        if self._scheduler is None:
            self._scheduler = MaintenanceScheduler(
                self, self.maintenance_policy)
        self._scheduler.start()
        return self._scheduler

    def stop_maintenance(self) -> None:
        """Stop the background scheduler, if running (idempotent)."""
        if self._scheduler is not None:
            self._scheduler.stop()

    @property
    def scheduler(self):
        """The background scheduler, or None before start_maintenance."""
        return self._scheduler

    def flush_all(self) -> None:
        """Flush every table's memtables (clean shutdown)."""
        for table in self._tables.values():
            table.flush_all()

    def close(self) -> None:
        """Clean shutdown: stop maintenance, flush everything to disk.

        After ``close()`` every inserted row is durable; the instance
        remains usable (closing is idempotent), matching the paper's
        "clean shutdown flushes all tables" behaviour.
        """
        self.stop_maintenance()
        self.flush_all()

    def __enter__(self) -> "LittleTable":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------- degraded (read-only) mode

    @property
    def read_only(self) -> bool:
        """True while the engine is degraded to read-only."""
        return self._read_only_reason is not None

    @property
    def read_only_reason(self) -> Optional[str]:
        """Why the engine is read-only, or None when writable."""
        return self._read_only_reason

    def enter_read_only(self, reason: str) -> None:
        """Degrade to read-only: reject writes, keep serving reads.

        Entered automatically on ENOSPC (immediately) or after
        ``EIO_READ_ONLY_THRESHOLD`` consecutive I/O failures; may also
        be called directly (e.g. by an operator before maintenance).
        """
        if self._read_only_reason is None:
            self._m_read_only_entries.inc()
        self._read_only_reason = reason
        self._m_read_only.set(1)

    def exit_read_only(self) -> None:
        """Clear read-only mode after the operator resolves the cause."""
        self._read_only_reason = None
        self._io_failure_streak = 0
        self._m_read_only.set(0)

    def _check_writable(self) -> None:
        if self._read_only_reason is not None:
            self._m_read_only_rejections.inc()
            raise ReadOnlyModeError(
                f"engine is read-only: {self._read_only_reason}")

    def _note_storage_failure(self, exc: BaseException) -> None:
        """Fault listener installed on every table (write-path errors).

        Classifies the failure by errno: disk-full degrades at once
        (retrying cannot help until space is freed); plain I/O errors
        must persist across ``EIO_READ_ONLY_THRESHOLD`` consecutive
        events before degrading, so one transient error doesn't take
        the write path down.
        """
        kind = classify_storage_error(exc)
        if kind == "enospc":
            self.enter_read_only(f"disk full: {exc}")
        elif kind == "eio":
            self._io_failure_streak += 1
            if (self._io_failure_streak >= EIO_READ_ONLY_THRESHOLD
                    and self._read_only_reason is None):
                self.enter_read_only(
                    f"{self._io_failure_streak} consecutive I/O errors;"
                    f" last: {exc}")

    def stats(self) -> Dict[str, Any]:
        """Full metrics snapshot: counters, gauges, histograms.

        Part of the unified facade - ``repro.connect(...)`` returns a
        :class:`~repro.net.remote.RemoteDatabase` whose ``stats()``
        answers with exactly this shape, so monitoring code runs
        unchanged in process and over the wire.
        """
        return self.metrics.snapshot()

    def health(self) -> Dict[str, Any]:
        """Degradation state (alias of :meth:`health_summary`).

        Named for facade parity with the remote adapter's
        ``health()``.
        """
        return self.health_summary()

    def health_summary(self) -> Dict[str, Any]:
        """Degradation state + fault counters, JSON-safe.

        Served through the STATS command so clients and ``ltdb stats``
        can see a degraded server without a separate endpoint.
        """
        counters = self.metrics.snapshot()["counters"]
        wal_segments = 0
        wal_bytes = 0
        buffered = 0
        tiers: Dict[str, str] = {}
        for name in self.table_names():
            table = self._tables[name]
            tiers[name] = table.durability.tier
            if table.wal is not None:
                status = table.wal.status()
                wal_segments += status["segment_count"]
                wal_bytes += status["wal_bytes"]
                buffered += status["buffered_records"]
        durability: Dict[str, Any] = {
            "default_tier": self.durability.tier,
            "tiers": tiers,
            "wal_segments": wal_segments,
            "wal_bytes": wal_bytes,
            "buffered_records": buffered,
            "rows_replayed": counters.get("wal.rows_replayed", 0),
        }
        if self.replication is not None:
            durability["replication"] = self.replication.status()
        return {
            "read_only": self.read_only,
            "read_only_reason": self._read_only_reason,
            "io_failure_streak": self._io_failure_streak,
            "checksum_failures": counters.get(
                "storage.checksum_failures", 0),
            "quarantined_tablets": counters.get(
                "storage.quarantined_tablets", 0),
            "scrub": self.last_scrub.as_dict(),
            "durability": durability,
        }

    def wal_status(self) -> Dict[str, Any]:
        """Per-table WAL state: LSNs, segments, buffered records.

        Part of the unified admin surface - the remote adapter's
        ``wal_status()`` answers with exactly this shape over the
        wire.  Tables on the ``none`` tier report just their tier.
        """
        status: Dict[str, Any] = {
            "default_tier": self.durability.tier,
            "tables": {name: self._tables[name].wal_status()
                       for name in self.table_names()},
        }
        if self.replication is not None:
            status["replication"] = self.replication.status()
        return status

    # ---------------------------------------------- snapshot & restore

    def snapshot(self, dest: str) -> Dict[str, Any]:
        """Capture a consistent point-in-time snapshot into ``dest``.

        O(1) stop-the-world: per table, the COW tablet list and
        descriptor are captured under the table lock; sealed tablets
        are then hard-linked (or byte-copied) off-lock, and unflushed
        memtable rows are written as sidecar tablets, so the snapshot
        is a self-contained, fsck-clean LittleTable data directory.
        Raises :class:`~repro.core.errors.SnapshotError` if ``dest``
        is non-empty; the live database is never modified.
        """
        from .snapshot import create_snapshot

        return create_snapshot(self, dest)

    def restore(self, src: str) -> Dict[str, Any]:
        """Install tables from a snapshot into this (empty) database.

        Raises :class:`~repro.core.errors.SnapshotError` when the
        manifest is missing/corrupt or any table already exists; a
        failed restore installs nothing.
        """
        from .snapshot import restore_into

        return restore_into(self, src)

    # ------------------------------------------------- crash & archival

    def simulate_crash(self) -> "LittleTable":
        """Return the database as it would recover after a crash.

        All in-memory (unflushed) rows are lost; everything persisted
        via atomic descriptor updates survives.  The returned instance
        shares the same disk.  The original instance must no longer be
        used.
        """
        self.stop_maintenance()
        return LittleTable(disk=self.disk, config=self.config,
                           clock=self.clock, cold_disk=self.cold_disk,
                           maintenance_policy=self.maintenance_policy,
                           durability=self.durability)

    def archive_to(self, spare: Storage) -> int:
        """Copy all files to a spare's storage, rsync-style (§3.5).

        Copies files missing from the spare and removes files the
        primary no longer has, repeating until a pass copies nothing -
        the same convergence rule as the paper's "run rsync ... until a
        sync completes without copying any files".  Returns the number
        of files copied.
        """
        copied = 0
        while True:
            pass_copied = 0
            primary_files = set(self.disk.list())
            spare_files = set(spare.list())
            for name in sorted(primary_files):
                data = self.disk.storage.read_all(name)
                if name in spare_files:
                    if spare.read_all(name) == data:
                        continue
                    spare.delete(name)
                spare.write_file(name, data)
                pass_copied += 1
            for name in sorted(spare_files - primary_files):
                spare.delete(name)
            copied += pass_copied
            if pass_copied == 0:
                return copied
