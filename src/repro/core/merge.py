"""The tablet merge policy (paper §3.4.1, §3.4.2, and the appendix).

"To merge tablets efficiently, LittleTable instead orders tablets by
their timespans' lower bounds and merges the oldest adjacent pair such
that the newer one is at least half the size of the older.  It includes
in this merge any newer tablets adjacent to this pair, up to a maximum
tablet size.  By merging only adjacent tablets, this approach does not
affect the disjointness of tablets' timespans."

The appendix proves that with this policy both the final number of
tablets and the number of times any one row is rewritten are O(log T)
in the table size T.  ``tests/core/test_merge_policy.py`` checks those
bounds as properties.

Two further rules from §3.4.2 and §5.1.3:

* tablets from different *time periods* are never merged, and a merge
  of tablets that rolled over from a finer period is delayed by a
  pseudorandom fraction of the containing period;
* a tablet may not be merged until ``merge_min_age`` (90 s by default)
  after it was written, "to maximize the number of tablets available to
  any one merge".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .config import EngineConfig
from .periods import Period, period_for, rollover_delay
from .tablet import TabletMeta


@dataclass
class MergePlan:
    """A decision to merge a run of timespan-adjacent tablets."""

    tablets: List[TabletMeta]
    period: Period

    @property
    def total_bytes(self) -> int:
        return sum(t.size_bytes for t in self.tablets)

    @property
    def total_rows(self) -> int:
        return sum(t.row_count for t in self.tablets)


def order_by_timespan(tablets: List[TabletMeta]) -> List[TabletMeta]:
    """Tablets ordered by timespan lower bound (ties by id = age)."""
    return sorted(tablets, key=lambda t: (t.min_ts, t.tablet_id))


def _merge_allowed(tablet: TabletMeta, now: int, table_name: str,
                   config: EngineConfig) -> bool:
    """Per-tablet eligibility: minimum age and rollover delay."""
    if now - tablet.created_at < config.merge_min_age_micros:
        return False
    partitioned = config.time_partitioning
    current_period = period_for(tablet.min_ts, now, partitioned)
    creation_period = period_for(tablet.min_ts, tablet.created_at,
                                 partitioned)
    if current_period.level > creation_period.level:
        # This tablet rolled over into a coarser period; spread the
        # resulting merge surge across tables (§3.4.2).
        delay = rollover_delay(table_name, current_period,
                               config.merge_rollover_delay_fraction)
        if now < current_period.end + delay:
            return False
    return True


def choose_merge(tablets: List[TabletMeta], now: int, table_name: str,
                 config: EngineConfig) -> Optional[MergePlan]:
    """Pick the next merge, or None if nothing is mergeable.

    Finds the oldest adjacent pair (t_i, t_{i+1}) with
    ``size(t_i) <= 2 * size(t_{i+1})``, both in the same period and
    individually eligible, then extends the run rightwards through
    eligible same-period tablets while the total stays within the
    maximum merged tablet size.
    """
    if len(tablets) < 2:
        return None
    if config.merge_policy == "never":
        return None
    ordered = order_by_timespan(tablets)
    if config.merge_policy == "always-all":
        return _choose_merge_all(ordered, now, table_name, config)
    for i in range(len(ordered) - 1):
        older, newer = ordered[i], ordered[i + 1]
        if older.size_bytes > 2 * newer.size_bytes:
            continue
        period = period_for(older.min_ts, now, config.time_partitioning)
        if not period.contains(newer.min_ts):
            continue
        if not (_merge_allowed(older, now, table_name, config)
                and _merge_allowed(newer, now, table_name, config)):
            continue
        total = older.size_bytes + newer.size_bytes
        if total > config.max_merged_tablet_bytes:
            continue
        run = [older, newer]
        for follower in ordered[i + 2:]:
            if not period.contains(follower.min_ts):
                break
            if not _merge_allowed(follower, now, table_name, config):
                break
            if total + follower.size_bytes > config.max_merged_tablet_bytes:
                break
            run.append(follower)
            total += follower.size_bytes
        return MergePlan(run, period)
    return None


def _choose_merge_all(ordered: List[TabletMeta], now: int, table_name: str,
                      config: EngineConfig) -> Optional[MergePlan]:
    """The "always-all" ablation policy: merge every eligible tablet
    into one, regardless of sizes.  This is §3.4.1's cautionary
    example - "it would end up rewriting all of the existing rows of a
    table every time it merged in a newly flushed on-disk tablet"."""
    eligible = [t for t in ordered
                if _merge_allowed(t, now, table_name, config)]
    if len(eligible) < 2:
        return None
    period = period_for(eligible[0].min_ts, now, config.time_partitioning)
    return MergePlan(eligible, period)


def is_quiescent(tablets: List[TabletMeta], now: int, table_name: str,
                 config: EngineConfig) -> bool:
    """True when :func:`choose_merge` would find nothing to do."""
    return choose_merge(tablets, now, table_name, config) is None


def pending_merge_runs(tablets: List[TabletMeta], now: int,
                       table_name: str, config: EngineConfig,
                       limit: int = 8) -> List[MergePlan]:
    """The merge debt: plans the policy would execute back-to-back.

    Simulates repeated :func:`choose_merge` against a synthetic tablet
    set, replacing each chosen run with the pseudo-tablet the merge
    would produce (``created_at=now``, so - as in reality - the
    product's own re-merge is blocked by the minimum age).  Purely
    advisory: the scheduler's queue-depth gauge and ``.stats`` use the
    count to show how far behind maintenance is.  Stops after
    ``limit`` plans.
    """
    simulated = list(tablets)
    plans: List[MergePlan] = []
    while len(plans) < limit:
        plan = choose_merge(simulated, now, table_name, config)
        if plan is None:
            return plans
        plans.append(plan)
        merged_ids = {t.tablet_id for t in plan.tablets}
        product = TabletMeta(
            tablet_id=-(len(plans)),  # synthetic, never collides
            filename=f"<pending-merge-{len(plans)}>",
            min_ts=min(t.min_ts for t in plan.tablets),
            max_ts=max(t.max_ts for t in plan.tablets),
            row_count=plan.total_rows,
            size_bytes=plan.total_bytes,
            schema_version=0,
            created_at=now,
        )
        simulated = [t for t in simulated
                     if t.tablet_id not in merged_ids]
        simulated.append(product)
    return plans


def merge_debt_bytes(tablets: List[TabletMeta], now: int,
                     table_name: str, config: EngineConfig,
                     limit: int = 8) -> int:
    """Bytes the pending merge plans would rewrite (advisory).

    The scheduler's ``sched.merge_debt_bytes`` gauge sums this across
    tables: it is the backlog the IO rate limiter will eventually have
    to pay down, and the quantity flush debt is prioritised against.
    """
    return sum(plan.total_bytes
               for plan in pending_merge_runs(tablets, now, table_name,
                                              config, limit=limit))
