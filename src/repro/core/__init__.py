"""The LittleTable engine: schemas, tablets, merge policy, tables.

Public entry point: :class:`LittleTable` (the database) plus the
schema/query vocabulary (:class:`Schema`, :class:`Column`,
:class:`ColumnType`, :class:`Query`, :class:`KeyRange`,
:class:`TimeRange`).
"""

from .check import (Issue, LockOrderChecker, LockOrderError, check_database,
                    check_table, instrument_table_locks, is_healthy,
                    repair_database)
from .config import EngineConfig
from .database import LittleTable
from .descriptor import TableDescriptor
from .durability import DEFAULT_DURABILITY, DurabilityPolicy
from .errors import (
    ChecksumError,
    CorruptTabletError,
    DuplicateKeyError,
    LittleTableError,
    NoSuchTableError,
    OverloadedError,
    ProtocolViolationError,
    QueryError,
    ReadOnlyModeError,
    ReplicaDivergedError,
    SchemaError,
    ServerError,
    ShardDegradedError,
    SnapshotError,
    TableExistsError,
    ValidationError,
)
from .iosched import IORateLimiter, SLOController
from .maintenance import (MaintenancePolicy, MaintenanceReport,
                          TableMaintenanceReport)
from .merge import MergePlan, choose_merge, pending_merge_runs
from .periods import Period, PeriodLevel, period_for
from .scheduler import MaintenanceScheduler
from .readcache import LatestRowCache, ReadCache, TabletPruneIndex
from .recovery import ScrubReport, startup_scrub
from .snapshot import create_snapshot, load_manifest, restore_into
from .wal import WalRecord, WalReplayReport, WriteAheadLog
from .row import ASCENDING, DESCENDING, KeyRange, Query, QueryStats, TimeRange
from .schema import Column, ColumnType, Schema
from .table import QueryResult, Table
from .tablet import TabletMeta, TabletReader, TabletWriter

__all__ = [
    "Issue",
    "LockOrderChecker",
    "LockOrderError",
    "check_database",
    "check_table",
    "instrument_table_locks",
    "is_healthy",
    "repair_database",
    "ScrubReport",
    "startup_scrub",
    "MaintenancePolicy",
    "MaintenanceReport",
    "MaintenanceScheduler",
    "TableMaintenanceReport",
    "IORateLimiter",
    "SLOController",
    "pending_merge_runs",
    "EngineConfig",
    "LittleTable",
    "TableDescriptor",
    "DEFAULT_DURABILITY",
    "DurabilityPolicy",
    "WalRecord",
    "WalReplayReport",
    "WriteAheadLog",
    "create_snapshot",
    "load_manifest",
    "restore_into",
    "ChecksumError",
    "CorruptTabletError",
    "DuplicateKeyError",
    "ReadOnlyModeError",
    "ReplicaDivergedError",
    "SnapshotError",
    "LittleTableError",
    "NoSuchTableError",
    "OverloadedError",
    "ProtocolViolationError",
    "QueryError",
    "SchemaError",
    "ServerError",
    "ShardDegradedError",
    "TableExistsError",
    "ValidationError",
    "MergePlan",
    "choose_merge",
    "LatestRowCache",
    "ReadCache",
    "TabletPruneIndex",
    "Period",
    "PeriodLevel",
    "period_for",
    "ASCENDING",
    "DESCENDING",
    "KeyRange",
    "Query",
    "QueryStats",
    "TimeRange",
    "Column",
    "ColumnType",
    "Schema",
    "QueryResult",
    "Table",
    "TabletMeta",
    "TabletReader",
    "TabletWriter",
]
