"""Integrity checking: fsck for LittleTable.

Walks a table's descriptor and every on-disk tablet, verifying the
invariants the engine relies on:

* every tablet file exists on its recorded tier and parses;
* footer metadata (row count, timespan, schema version) matches the
  descriptor entry;
* rows are sorted by primary key, unique, and every timestamp lies
  within the tablet's recorded timespan;
* block index last-keys agree with the rows;
* a Bloom filter is present when the table's config expects one
  (warning only - filters are an optimization, §3.4.5).

Exposed to operators through the CLI's ``.fsck`` command.  A healthy
check is also the cheapest possible regression net for the storage
format, so the test suite runs it after every interesting workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..disk.storage import StorageError
from .database import LittleTable
from .errors import CorruptTabletError
from .row import KeyRange
from .table import Table

ERROR = "error"
WARNING = "warning"


@dataclass
class Issue:
    """One finding: severity, location, and what is wrong."""

    severity: str
    table: str
    tablet_id: int  # 0 for table-level findings
    message: str

    def __str__(self) -> str:
        where = (f"{self.table}/tab-{self.tablet_id}" if self.tablet_id
                 else self.table)
        return f"[{self.severity}] {where}: {self.message}"


def check_table(table: Table) -> List[Issue]:
    """Verify one table.  Returns the issues found (empty = healthy)."""
    issues: List[Issue] = []
    name = table.name
    seen_ids = set()
    for meta in table.on_disk_tablets:
        if meta.tablet_id in seen_ids:
            issues.append(Issue(ERROR, name, meta.tablet_id,
                                "duplicate tablet id in descriptor"))
            continue
        seen_ids.add(meta.tablet_id)
        issues.extend(_check_tablet(table, meta))
    if table.descriptor.next_tablet_id <= max(seen_ids, default=0):
        issues.append(Issue(ERROR, name, 0,
                            "next_tablet_id would reuse an existing id"))
    return issues


def _check_tablet(table: Table, meta) -> List[Issue]:
    issues: List[Issue] = []
    name = table.name
    try:
        disk = table._disk_for(meta)
    except CorruptTabletError as exc:
        return [Issue(ERROR, name, meta.tablet_id, str(exc))]
    if not disk.exists(meta.filename):
        return [Issue(ERROR, name, meta.tablet_id,
                      f"missing file {meta.filename!r} on tier "
                      f"{meta.tier!r}")]
    actual_size = disk.size(meta.filename)
    if actual_size != meta.size_bytes:
        issues.append(Issue(
            ERROR, name, meta.tablet_id,
            f"size mismatch: descriptor says {meta.size_bytes}, file is "
            f"{actual_size}"))
    reader = table._reader(meta)
    try:
        reader.ensure_loaded()
    except (CorruptTabletError, StorageError) as exc:
        issues.append(Issue(ERROR, name, meta.tablet_id,
                            f"footer unreadable: {exc}"))
        return issues
    if reader.row_count != meta.row_count:
        issues.append(Issue(
            ERROR, name, meta.tablet_id,
            f"row count mismatch: descriptor {meta.row_count}, footer "
            f"{reader.row_count}"))
    if (reader.min_ts, reader.max_ts) != (meta.min_ts, meta.max_ts):
        issues.append(Issue(
            ERROR, name, meta.tablet_id,
            f"timespan mismatch: descriptor [{meta.min_ts}, {meta.max_ts}]"
            f", footer [{reader.min_ts}, {reader.max_ts}]"))
    if reader.schema.version != meta.schema_version:
        issues.append(Issue(
            ERROR, name, meta.tablet_id,
            f"schema version mismatch: descriptor {meta.schema_version}, "
            f"footer {reader.schema.version}"))
    issues.extend(_check_rows(table, meta, reader))
    if table.config.bloom_filters and reader._bloom is None:
        issues.append(Issue(
            WARNING, name, meta.tablet_id,
            "no Bloom filter although the config expects one"))
    return issues


def _check_rows(table: Table, meta, reader) -> List[Issue]:
    issues: List[Issue] = []
    name = table.name
    schema = reader.schema
    previous_key = None
    count = 0
    min_ts = None
    max_ts = None
    try:
        for row in reader.scan(KeyRange.all()):
            key = schema.key_of(row)
            if previous_key is not None and key <= previous_key:
                issues.append(Issue(
                    ERROR, name, meta.tablet_id,
                    f"rows out of order or duplicated at key {key!r}"))
                break
            previous_key = key
            ts = schema.ts_of(row)
            min_ts = ts if min_ts is None else min(min_ts, ts)
            max_ts = ts if max_ts is None else max(max_ts, ts)
            count += 1
    except (CorruptTabletError, StorageError) as exc:
        issues.append(Issue(ERROR, name, meta.tablet_id,
                            f"row scan failed: {exc}"))
        return issues
    if count != reader.row_count:
        issues.append(Issue(
            ERROR, name, meta.tablet_id,
            f"scanned {count} rows, footer promises {reader.row_count}"))
    if count and (min_ts < meta.min_ts or max_ts > meta.max_ts):
        issues.append(Issue(
            ERROR, name, meta.tablet_id,
            f"rows outside the recorded timespan: data "
            f"[{min_ts}, {max_ts}] vs descriptor "
            f"[{meta.min_ts}, {meta.max_ts}]"))
    return issues


def check_database(db: LittleTable) -> Dict[str, List[Issue]]:
    """Run :func:`check_table` over every table.

    Returns {table_name: issues}; all-empty values mean a clean bill.
    """
    return {name: check_table(db.table(name))
            for name in db.table_names()}


def is_healthy(db: LittleTable) -> bool:
    """True when no table has any error-severity issue."""
    return all(
        all(issue.severity != ERROR for issue in issues)
        for issues in check_database(db).values()
    )
