"""Integrity checking: fsck for LittleTable.

Walks a table's descriptor and every on-disk tablet, verifying the
invariants the engine relies on:

* every tablet file exists on its recorded tier and parses;
* footer metadata (row count, timespan, schema version) matches the
  descriptor entry;
* rows are sorted by primary key, unique, and every timestamp lies
  within the tablet's recorded timespan;
* block index last-keys agree with the rows;
* a Bloom filter is present when the table's config expects one
  (warning only - filters are an optimization, §3.4.5).

Exposed to operators through the CLI's ``.fsck`` command.  A healthy
check is also the cheapest possible regression net for the storage
format, so the test suite runs it after every interesting workload.

This module also hosts the **lock-order checker** used by the
concurrency stress suite: a thread-sanitizer-style assertion layer
that wraps a table's locks with rank bookkeeping and raises
:class:`LockOrderError` the instant any thread acquires them against
the documented hierarchy (``_maintenance_lock`` rank 10 -> state
``lock`` rank 20 -> ``_reader_lock`` rank 30).  Deadlocks become
deterministic test failures instead of hung CI jobs.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List

from ..disk.storage import StorageError
from .database import LittleTable
from .errors import CorruptTabletError
from .row import KeyRange
from .table import Table

ERROR = "error"
WARNING = "warning"


class LockOrderError(AssertionError):
    """A thread acquired locks against the documented hierarchy."""


class _OrderedLock:
    """A lock wrapper that reports acquisitions to a checker.

    Delegates ``_release_save`` / ``_acquire_restore`` / ``_is_owned``
    (with bookkeeping) so a ``threading.Condition`` built over the
    wrapper still works - Condition.wait releases all recursion levels
    through exactly those hooks.
    """

    def __init__(self, inner, name: str, rank: int,
                 checker: "LockOrderChecker"):
        self._inner = inner
        self.name = name
        self.rank = rank
        self._checker = checker

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        self._checker._before_acquire(self)
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            self._checker._after_acquire(self)
        return acquired

    def release(self) -> None:
        self._inner.release()
        self._checker._after_release(self)

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()

    # threading.Condition integration ---------------------------------

    def _release_save(self):
        state = self._inner._release_save()
        self._checker._forget_all(self)
        return state

    def _acquire_restore(self, state) -> None:
        self._checker._before_acquire(self)
        self._inner._acquire_restore(state)
        self._checker._after_acquire(self)

    def _is_owned(self) -> bool:
        return self._inner._is_owned()


class LockOrderChecker:
    """Rank-based lock-order assertions, one held-stack per thread.

    ``wrap(lock, name, rank)`` returns an :class:`_OrderedLock`; any
    thread that acquires a wrapped lock while holding one of equal or
    higher rank (reentrant re-acquisition of the *same* lock excepted)
    gets a :class:`LockOrderError` immediately - the interleaving that
    *could* deadlock fails deterministically even when the schedule
    that actually would is never hit.
    """

    def __init__(self):
        self._held = threading.local()
        self.violations: List[str] = []

    def _stack(self) -> List["_OrderedLock"]:
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = []
            self._held.stack = stack
        return stack

    def wrap(self, lock, name: str, rank: int) -> _OrderedLock:
        return _OrderedLock(lock, name, rank, self)

    def _before_acquire(self, lock: _OrderedLock) -> None:
        stack = self._stack()
        if not stack:
            return
        if any(held is lock for held in stack):  # reentrant: fine
            return
        worst = max(stack, key=lambda held: held.rank)
        if worst.rank >= lock.rank:
            message = (
                f"lock order violation in {threading.current_thread().name}:"
                f" acquiring {lock.name!r} (rank {lock.rank}) while holding"
                f" {worst.name!r} (rank {worst.rank})")
            self.violations.append(message)
            raise LockOrderError(message)

    def _after_acquire(self, lock: _OrderedLock) -> None:
        self._stack().append(lock)

    def _after_release(self, lock: _OrderedLock) -> None:
        stack = self._stack()
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] is lock:
                del stack[index]
                return

    def _forget_all(self, lock: _OrderedLock) -> None:
        """Condition.wait released every recursion level at once."""
        self._held.stack = [held for held in self._stack()
                            if held is not lock]


def instrument_table_locks(table: Table,
                           checker: LockOrderChecker) -> LockOrderChecker:
    """Wrap one table's locks with order assertions (stress tests).

    Rebuilds the table's flush condition over the wrapped state lock
    so backpressure waits keep working.  Returns the checker.
    """
    table._maintenance_lock = checker.wrap(
        table._maintenance_lock, f"{table.name}._maintenance_lock", 10)
    table.lock = checker.wrap(table.lock, f"{table.name}.lock", 20)
    table._reader_lock = checker.wrap(
        table._reader_lock, f"{table.name}._reader_lock", 30)
    table._flush_cond = threading.Condition(table.lock)
    return checker


@dataclass
class Issue:
    """One finding: severity, location, and what is wrong."""

    severity: str
    table: str
    tablet_id: int  # 0 for table-level findings
    message: str

    def __str__(self) -> str:
        where = (f"{self.table}/tab-{self.tablet_id}" if self.tablet_id
                 else self.table)
        return f"[{self.severity}] {where}: {self.message}"


def check_table(table: Table) -> List[Issue]:
    """Verify one table.  Returns the issues found (empty = healthy)."""
    issues: List[Issue] = []
    name = table.name
    seen_ids = set()
    for meta in table.on_disk_tablets:
        if meta.tablet_id in seen_ids:
            issues.append(Issue(ERROR, name, meta.tablet_id,
                                "duplicate tablet id in descriptor"))
            continue
        seen_ids.add(meta.tablet_id)
        issues.extend(_check_tablet(table, meta))
    if table.descriptor.next_tablet_id <= max(seen_ids, default=0):
        issues.append(Issue(ERROR, name, 0,
                            "next_tablet_id would reuse an existing id"))
    return issues


def _check_tablet(table: Table, meta) -> List[Issue]:
    issues: List[Issue] = []
    name = table.name
    try:
        disk = table._disk_for(meta)
    except CorruptTabletError as exc:
        return [Issue(ERROR, name, meta.tablet_id, str(exc))]
    if not disk.exists(meta.filename):
        return [Issue(ERROR, name, meta.tablet_id,
                      f"missing file {meta.filename!r} on tier "
                      f"{meta.tier!r}")]
    actual_size = disk.size(meta.filename)
    if actual_size != meta.size_bytes:
        issues.append(Issue(
            ERROR, name, meta.tablet_id,
            f"size mismatch: descriptor says {meta.size_bytes}, file is "
            f"{actual_size}"))
    reader = table._reader(meta)
    try:
        reader.ensure_loaded()
    except (CorruptTabletError, StorageError) as exc:
        issues.append(Issue(ERROR, name, meta.tablet_id,
                            f"footer unreadable: {exc}"))
        return issues
    if reader.row_count != meta.row_count:
        issues.append(Issue(
            ERROR, name, meta.tablet_id,
            f"row count mismatch: descriptor {meta.row_count}, footer "
            f"{reader.row_count}"))
    if (reader.min_ts, reader.max_ts) != (meta.min_ts, meta.max_ts):
        issues.append(Issue(
            ERROR, name, meta.tablet_id,
            f"timespan mismatch: descriptor [{meta.min_ts}, {meta.max_ts}]"
            f", footer [{reader.min_ts}, {reader.max_ts}]"))
    if reader.schema.version != meta.schema_version:
        issues.append(Issue(
            ERROR, name, meta.tablet_id,
            f"schema version mismatch: descriptor {meta.schema_version}, "
            f"footer {reader.schema.version}"))
    issues.extend(_check_rows(table, meta, reader))
    if table.config.bloom_filters and reader._bloom is None:
        issues.append(Issue(
            WARNING, name, meta.tablet_id,
            "no Bloom filter although the config expects one"))
    if table.config.checksums and not reader.has_checksums:
        issues.append(Issue(
            WARNING, name, meta.tablet_id,
            "no content checksums (pre-v2.1 file); a merge upgrades it"))
    return issues


def _check_rows(table: Table, meta, reader) -> List[Issue]:
    issues: List[Issue] = []
    name = table.name
    schema = reader.schema
    previous_key = None
    count = 0
    min_ts = None
    max_ts = None
    try:
        for row in reader.scan(KeyRange.all()):
            key = schema.key_of(row)
            if previous_key is not None and key <= previous_key:
                issues.append(Issue(
                    ERROR, name, meta.tablet_id,
                    f"rows out of order or duplicated at key {key!r}"))
                break
            previous_key = key
            ts = schema.ts_of(row)
            min_ts = ts if min_ts is None else min(min_ts, ts)
            max_ts = ts if max_ts is None else max(max_ts, ts)
            count += 1
    except (CorruptTabletError, StorageError) as exc:
        issues.append(Issue(ERROR, name, meta.tablet_id,
                            f"row scan failed: {exc}"))
        return issues
    if count != reader.row_count:
        issues.append(Issue(
            ERROR, name, meta.tablet_id,
            f"scanned {count} rows, footer promises {reader.row_count}"))
    if count and (min_ts < meta.min_ts or max_ts > meta.max_ts):
        issues.append(Issue(
            ERROR, name, meta.tablet_id,
            f"rows outside the recorded timespan: data "
            f"[{min_ts}, {max_ts}] vs descriptor "
            f"[{meta.min_ts}, {meta.max_ts}]"))
    return issues


def check_database(db: LittleTable) -> Dict[str, List[Issue]]:
    """Run :func:`check_table` over every table.

    Returns {table_name: issues}; all-empty values mean a clean bill.
    """
    return {name: check_table(db.table(name))
            for name in db.table_names()}


def repair_database(db: LittleTable) -> Dict[str, List[str]]:
    """Quarantine every hot tablet with an error-severity finding.

    The repair a checksummed LSM store can do without replicas:
    isolate what is provably damaged so the table serves everything
    still intact.  Files move to ``quarantine/`` (never deleted) and
    the descriptor drops them, exactly like the read path's automatic
    quarantine.  Cold-tier tablets are reported by :func:`check_table`
    but never auto-quarantined - the archive copy is the only copy,
    and dropping its reference would orphan it.

    Returns {table_name: [quarantined filenames]} for what was moved.
    Backs ``ltdb fsck --repair``.
    """
    moved: Dict[str, List[str]] = {}
    for name, issues in check_database(db).items():
        table = db.table(name)
        bad_ids = {issue.tablet_id for issue in issues
                   if issue.severity == ERROR and issue.tablet_id}
        filenames: List[str] = []
        for meta in list(table.on_disk_tablets):
            if meta.tablet_id in bad_ids and meta.tier == "hot":
                reason = "; ".join(
                    issue.message for issue in issues
                    if issue.tablet_id == meta.tablet_id)
                if table.quarantine_tablet(meta, reason):
                    filenames.append(meta.filename)
        if filenames:
            moved[name] = filenames
    return moved


def is_healthy(db: LittleTable) -> bool:
    """True when no table has any error-severity issue."""
    return all(
        all(issue.severity != ERROR for issue in issues)
        for issues in check_database(db).values()
    )
