"""Table schemas.

Paper §3.1: "The schema of a table in LittleTable consists of a set of
columns, each of which has a name, type, and default value.  An ordered
subset of these columns form the table's primary key.  The final column
in this subset must be of type timestamp and named 'ts'."

Paper §3.5: supported column types are 32-bit and 64-bit integers,
double-precision floats, timestamps, variable-length strings, and byte
arrays; there are no NULL values (applications use sentinels instead).

Schema evolution (§3.5): clients can append columns to the tail of the
schema, widen int32 columns to int64, and alter the TTL.  Old tablets
are *not* rewritten; their rows are translated on read.
"""

from __future__ import annotations

import base64
import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .errors import SchemaError, ValidationError

INT32_MIN = -(1 << 31)
INT32_MAX = (1 << 31) - 1
INT64_MIN = -(1 << 63)
INT64_MAX = (1 << 63) - 1

TIMESTAMP_COLUMN = "ts"


class ColumnType(enum.Enum):
    """The six column types of §3.5."""

    INT32 = "int32"
    INT64 = "int64"
    DOUBLE = "double"
    TIMESTAMP = "timestamp"
    STRING = "string"
    BLOB = "blob"


_TYPE_DEFAULTS: Dict[ColumnType, Any] = {
    ColumnType.INT32: 0,
    ColumnType.INT64: 0,
    ColumnType.DOUBLE: 0.0,
    ColumnType.TIMESTAMP: 0,
    ColumnType.STRING: "",
    ColumnType.BLOB: b"",
}


def check_value(column_type: ColumnType, value: Any) -> Any:
    """Validate (and lightly coerce) a value for a column type.

    Returns the canonical stored value.  There are no NULLs: None is
    always rejected here (a missing ``ts`` is handled by the table,
    which substitutes the current time before validation).
    """
    if value is None:
        raise ValidationError("NULL values are not supported (use sentinels)")
    if column_type is ColumnType.INT32:
        if isinstance(value, bool) or not isinstance(value, int):
            raise ValidationError(f"expected int32, got {value!r}")
        if not INT32_MIN <= value <= INT32_MAX:
            raise ValidationError(f"int32 out of range: {value}")
        return value
    if column_type is ColumnType.INT64:
        if isinstance(value, bool) or not isinstance(value, int):
            raise ValidationError(f"expected int64, got {value!r}")
        if not INT64_MIN <= value <= INT64_MAX:
            raise ValidationError(f"int64 out of range: {value}")
        return value
    if column_type is ColumnType.DOUBLE:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ValidationError(f"expected double, got {value!r}")
        return float(value)
    if column_type is ColumnType.TIMESTAMP:
        if isinstance(value, bool) or not isinstance(value, int):
            raise ValidationError(f"expected timestamp (int micros), got {value!r}")
        if value < 0:
            raise ValidationError(f"timestamps must be non-negative: {value}")
        return value
    if column_type is ColumnType.STRING:
        if not isinstance(value, str):
            raise ValidationError(f"expected string, got {value!r}")
        return value
    if column_type is ColumnType.BLOB:
        if isinstance(value, bytearray):
            return bytes(value)
        if not isinstance(value, bytes):
            raise ValidationError(f"expected blob, got {value!r}")
        return value
    raise SchemaError(f"unknown column type {column_type!r}")


@dataclass(frozen=True)
class Column:
    """One column: name, type, and a (non-NULL) default value."""

    name: str
    type: ColumnType
    default: Any = None  # None here means "use the type default"

    def resolved_default(self) -> Any:
        if self.default is None:
            return _TYPE_DEFAULTS[self.type]
        return check_value(self.type, self.default)


class Schema:
    """An ordered list of columns plus the primary-key column names.

    The key columns must be a prefix-independent ordered subset of the
    columns; the last key column must be named ``ts`` with type
    timestamp.  Rows are stored as tuples in column order.
    """

    def __init__(self, columns: Sequence[Column], key: Sequence[str],
                 version: int = 1):
        if not columns:
            raise SchemaError("a schema needs at least one column")
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            raise SchemaError("duplicate column names")
        for column in columns:
            if not column.name or not isinstance(column.name, str):
                raise SchemaError(f"bad column name: {column.name!r}")
        if not key:
            raise SchemaError("a schema needs at least one key column")
        by_name = {c.name: c for c in columns}
        for key_name in key:
            if key_name not in by_name:
                raise SchemaError(f"key column {key_name!r} is not a column")
        if len(set(key)) != len(key):
            raise SchemaError("duplicate key columns")
        last = by_name[key[-1]]
        if last.name != TIMESTAMP_COLUMN or last.type is not ColumnType.TIMESTAMP:
            raise SchemaError(
                "the final key column must be a timestamp named 'ts' (§3.1)"
            )
        for key_name in key[:-1]:
            if by_name[key_name].type is ColumnType.BLOB:
                raise SchemaError("blob columns cannot be key columns")
        self.columns: Tuple[Column, ...] = tuple(columns)
        self.key: Tuple[str, ...] = tuple(key)
        self.version = version
        self._index = {c.name: i for i, c in enumerate(self.columns)}
        self.key_indexes: Tuple[int, ...] = tuple(self._index[k] for k in key)
        self.ts_index: int = self._index[TIMESTAMP_COLUMN]
        self._defaults = tuple(c.resolved_default() for c in self.columns)

    # ------------------------------------------------------------ basics

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Schema)
            and self.columns == other.columns
            and self.key == other.key
            and self.version == other.version
        )

    def __repr__(self) -> str:
        cols = ", ".join(f"{c.name} {c.type.value}" for c in self.columns)
        return f"Schema([{cols}], key={list(self.key)}, v{self.version})"

    def column_index(self, name: str) -> int:
        """Return the position of a column by name."""
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(f"no such column: {name!r}") from None

    def column(self, name: str) -> Column:
        return self.columns[self.column_index(name)]

    def has_column(self, name: str) -> bool:
        return name in self._index

    @property
    def key_width(self) -> int:
        """Number of key columns, including the timestamp."""
        return len(self.key)

    # -------------------------------------------------------------- rows

    def row_from_dict(self, values: Dict[str, Any],
                      now: Optional[int] = None) -> Tuple[Any, ...]:
        """Build a validated row tuple from a column->value mapping.

        Missing non-key columns take their defaults.  A missing or None
        ``ts`` takes ``now`` if given (§3.1: "a client may also omit a
        row's timestamp entirely, in which case the server sets it to
        the current time").  Missing other key columns are an error.
        """
        unknown = set(values) - set(self._index)
        if unknown:
            raise ValidationError(f"unknown columns: {sorted(unknown)}")
        row: List[Any] = []
        for position, column in enumerate(self.columns):
            if column.name in values and values[column.name] is not None:
                row.append(check_value(column.type, values[column.name]))
            elif position == self.ts_index and now is not None:
                row.append(check_value(ColumnType.TIMESTAMP, now))
            elif position in self.key_indexes:
                raise ValidationError(f"missing key column {column.name!r}")
            else:
                row.append(self._defaults[position])
        return tuple(row)

    def validate_row(self, row: Sequence[Any]) -> Tuple[Any, ...]:
        """Validate a positional row tuple (column order)."""
        if len(row) != len(self.columns):
            raise ValidationError(
                f"row has {len(row)} values, schema has {len(self.columns)}"
            )
        return tuple(
            check_value(column.type, value)
            for column, value in zip(self.columns, row)
        )

    def row_to_dict(self, row: Sequence[Any]) -> Dict[str, Any]:
        """Convert a row tuple back to a column->value dict."""
        return {c.name: v for c, v in zip(self.columns, row)}

    def key_of(self, row: Sequence[Any]) -> Tuple[Any, ...]:
        """Extract the primary-key tuple (ending in ts) from a row."""
        return tuple(row[i] for i in self.key_indexes)

    def ts_of(self, row: Sequence[Any]) -> int:
        """Extract the timestamp from a row."""
        return row[self.ts_index]

    # --------------------------------------------------------- evolution

    def with_appended_column(self, column: Column) -> "Schema":
        """§3.5: clients can append columns to the tail of the schema."""
        if self.has_column(column.name):
            raise SchemaError(f"column {column.name!r} already exists")
        column.resolved_default()  # validate the default now
        return Schema(self.columns + (column,), self.key, self.version + 1)

    def with_widened_column(self, name: str) -> "Schema":
        """§3.5: increase the precision of an int32 column to 64 bits."""
        position = self.column_index(name)
        old = self.columns[position]
        if old.type is not ColumnType.INT32:
            raise SchemaError(f"only int32 columns can be widened, not {name!r}")
        widened = Column(old.name, ColumnType.INT64, old.default)
        columns = self.columns[:position] + (widened,) + self.columns[position + 1:]
        return Schema(columns, self.key, self.version + 1)

    def translate_row(self, row: Sequence[Any], from_schema: "Schema") -> Tuple[Any, ...]:
        """Translate a row written under an older schema to this one.

        §3.5: "LittleTable translates its rows to the latest version,
        extending the precision of cells or filling them in with the
        default values from the table schema as necessary."
        """
        if from_schema.version > self.version:
            raise SchemaError("cannot translate from a newer schema")
        translated: List[Any] = []
        for position, column in enumerate(self.columns):
            if from_schema.has_column(column.name):
                value = row[from_schema.column_index(column.name)]
                # int32 -> int64 widening needs no value change.
                translated.append(value)
            else:
                translated.append(self._defaults[position])
        return tuple(translated)

    # ------------------------------------------------------ serialization

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe representation (blob defaults are base64)."""
        columns = []
        for column in self.columns:
            default: Any = column.default
            if isinstance(default, (bytes, bytearray)):
                default = {"b64": base64.b64encode(bytes(default)).decode("ascii")}
            columns.append(
                {"name": column.name, "type": column.type.value, "default": default}
            )
        return {"columns": columns, "key": list(self.key), "version": self.version}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Schema":
        """Inverse of :meth:`to_dict`."""
        columns = []
        for item in data["columns"]:
            default = item.get("default")
            if isinstance(default, dict) and "b64" in default:
                default = base64.b64decode(default["b64"])
            columns.append(Column(item["name"], ColumnType(item["type"]), default))
        return cls(columns, data["key"], data.get("version", 1))
