"""The maintenance scheduler: the one way background work runs.

The paper's deployment runs "a background thread [that] periodically
merges tablets" and flushes by age (§3.3) - continuously, without
stalling the writer.  This module is that thread (well, threads) for
the reproduction, shared by the embedded and served configurations:

* a **ticker** wakes every ``policy.tick_interval_s``, scans the
  catalog for tables with due work (:meth:`Table.maintenance_due` is a
  cheap probe), and enqueues them;
* a pool of ``policy.workers`` **workers** drains a *priority* queue,
  running :meth:`Table.maintenance` per table.  Tables with flush debt
  (queued or due memtables) always outrank tables that only owe
  merges or TTL expiry: an unflushed memtable holds up the writer
  (backpressure) and, on the WAL tier, log recycling, while merge
  debt merely costs read amplification until it drains.  A table is
  never enqueued twice concurrently, so two workers cannot contend on
  one table's maintenance lock; distinct tables proceed in parallel.
* the ticker also arms each table's **insert backpressure** (re-armed
  every tick, so tables created after ``start()`` pick it up too),
  and ``stop()`` disarms it.

When the policy sets a latency SLO (``slo_p99_ms``) the ticker runs an
:class:`~repro.core.iosched.SLOController` step each pass: the
controller watches the insert/query p99 histograms and adapts the
merge IO rate (through the database's shared
:class:`~repro.core.iosched.IORateLimiter`), the effective
flush-pending limit, and the per-tick merge budget - replacing the
fixed ``max_flush_pending`` depth with a closed loop around tail
latency.

Crash isolation is per table per tick: a failing flush on one table is
recorded on that table's report (and the ``maintenance.errors``
counter) while every other table's work proceeds.  The ticker itself
never dies to an exception.

Observability: ``maintenance.queue_depth`` (gauge),
``maintenance.ticks``, ``maintenance.table_runs``,
``maintenance.tick_duration_us``, ``sched.flush_priority_runs`` /
``sched.merge_priority_runs``, ``sched.merge_debt_bytes``, the
controller's ``sched.*`` gauges, plus everything the tables record.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from typing import Optional, Set

from .errors import NoSuchTableError
from .iosched import SLOController
from .maintenance import MaintenancePolicy, MaintenanceReport
from .merge import merge_debt_bytes

#: Queue priorities: flush debt always outranks merge/TTL backlog, and
#: the stop sentinel sorts after all real work.
_PRIORITY_FLUSH = 0
_PRIORITY_MERGE = 1
_PRIORITY_STOP = 1 << 30

#: Worker-queue entry payload telling a worker to exit.
_STOP = None


class MaintenanceScheduler:
    """Background worker pool running maintenance for one database.

    >>> db = LittleTable(maintenance_policy=MaintenancePolicy(
    ...     tick_interval_s=0.5, workers=2))
    >>> db.start_maintenance()      # doctest: +SKIP
    ... # inserts and queries proceed; flushes/merges/TTL run behind
    >>> db.stop_maintenance()       # doctest: +SKIP

    Usually owned by :class:`~repro.core.database.LittleTable` (via
    ``start_maintenance()``) or :class:`~repro.net.server.LittleTableServer`;
    standalone construction works too.
    """

    def __init__(self, db, policy: Optional[MaintenancePolicy] = None,
                 metrics=None):
        if policy is None:
            policy = getattr(db, "maintenance_policy", None)
        if policy is None:
            policy = MaintenancePolicy()
        policy.validate()
        self.db = db
        self.policy = policy
        self.metrics = metrics if metrics is not None else db.metrics
        self._queue: "queue.PriorityQueue" = queue.PriorityQueue()
        self._seq = itertools.count()
        # Tables currently queued or being worked, so one table never
        # occupies two workers (its maintenance lock would serialize
        # them anyway; this keeps the second worker useful).
        self._queued: Set[str] = set()
        self._set_lock = threading.Lock()
        self._stop = threading.Event()
        self._ticker: Optional[threading.Thread] = None
        self._workers: list = []
        self._report_lock = threading.Lock()
        self._lifetime = MaintenanceReport()
        # The SLO control loop, armed lazily on the first tick when
        # the policy asks for one (policy edits take effect live).
        self.controller: Optional[SLOController] = None
        self._g_depth = self.metrics.gauge("maintenance.queue_depth")
        self._m_ticks = self.metrics.counter("maintenance.ticks")
        self._m_runs = self.metrics.counter("maintenance.table_runs")
        self._m_errors = self.metrics.counter("maintenance.errors")
        self._h_tick = self.metrics.histogram("maintenance.tick_duration_us")
        self._m_flush_runs = self.metrics.counter("sched.flush_priority_runs")
        self._m_merge_runs = self.metrics.counter("sched.merge_priority_runs")
        self._g_merge_debt = self.metrics.gauge("sched.merge_debt_bytes")

    @property
    def running(self) -> bool:
        return self._ticker is not None and self._ticker.is_alive()

    def start(self) -> None:
        """Start the ticker and the worker pool (idempotent)."""
        if self.running:
            return
        self._stop.clear()
        self._workers = []
        for index in range(self.policy.workers):
            worker = threading.Thread(
                target=self._worker_loop, daemon=True,
                name=f"lt-maintenance-{index}")
            worker.start()
            self._workers.append(worker)
        self._ticker = threading.Thread(
            target=self._ticker_loop, daemon=True, name="lt-maintenance-tick")
        self._ticker.start()

    def stop(self, timeout: float = 5.0) -> None:
        """Stop cleanly: finish in-flight table runs, disarm
        backpressure, drain the queue (idempotent).

        Pending (not yet picked up) table names are drained *before*
        the worker sentinels go in: a worker must never start a fresh
        table run after ``stop()`` begins, only finish the one it is
        already in.  (The old ordering drained after joining, so names
        queued ahead of the sentinels still ran.)
        """
        self._stop.set()
        if self._ticker is not None:
            self._ticker.join(timeout=timeout)
            self._ticker = None
        # Drain un-started work first, so the sentinels are the next
        # thing every worker sees.  Only drained names leave _queued;
        # a name a worker is mid-run on stays held until its finally.
        for _priority, _seq, name in self._drain_queue():
            if name is not _STOP:
                with self._set_lock:
                    self._queued.discard(name)
        for _worker in self._workers:
            self._queue.put((_PRIORITY_STOP, next(self._seq), _STOP))
        for worker in self._workers:
            worker.join(timeout=timeout)
        self._workers = []
        # A racing tick() (tests drive it directly) may have enqueued
        # between the drain and the joins; clear the leftovers.
        self._drain_queue()
        with self._set_lock:
            self._queued.clear()
        self._g_depth.set(0)
        # Stalled inserts must not wait out their full budget against a
        # scheduler that will never flush: disarm wakes them all.
        for name in self.db.table_names():
            try:
                self.db.table(name).set_flush_backpressure(None)
            except NoSuchTableError:
                pass

    def _drain_queue(self) -> list:
        drained = []
        while True:
            try:
                drained.append(self._queue.get_nowait())
            except queue.Empty:
                return drained

    # ------------------------------------------------------------- loops

    def _ticker_loop(self) -> None:
        while not self._stop.wait(self.policy.tick_interval_s):
            try:
                self.tick()
            except Exception:  # keep the loop alive, count the wound
                self._m_errors.inc()

    def _ensure_controller(self) -> Optional[SLOController]:
        if self.policy.slo_p99_ms is None:
            self.controller = None
            return None
        if (self.controller is None
                or self.controller.slo_us != self.policy.slo_p99_ms * 1000.0):
            limiter = getattr(self.db, "io_limiter", None)
            config = getattr(self.db, "config", None)
            base_rate = getattr(config, "io_rate_limit_bytes_s", None)
            self.controller = SLOController(
                self.metrics, self.policy.slo_p99_ms,
                limiter=limiter, base_rate_bytes_s=base_rate,
                max_flush_pending=self.policy.max_flush_pending,
                recover_fraction=self.policy.slo_recover_fraction)
        return self.controller

    def _flush_pending_limit(self) -> Optional[int]:
        if self.controller is not None:
            return self.controller.flush_pending_limit()
        return self.policy.max_flush_pending

    def _merge_budget(self) -> int:
        if self.controller is not None:
            return self.controller.merge_budget(
                self.policy.merge_budget_per_tick)
        return self.policy.merge_budget_per_tick

    def tick(self) -> int:
        """One scheduling pass: step the controller, arm backpressure,
        enqueue due tables (flush debt ahead of merge debt).

        Returns the number of tables enqueued.  Runs in the ticker
        normally; tests call it directly for determinism.
        """
        started = time.perf_counter()
        controller = self._ensure_controller()
        if controller is not None:
            controller.step()
        flush_limit = self._flush_pending_limit()
        enqueued = 0
        merge_debt = 0
        for name in self.db.table_names():
            try:
                table = self.db.table(name)
            except NoSuchTableError:  # dropped between list and lookup
                continue
            # Re-armed every tick: tables created after start() get
            # backpressure too, and a policy (or controller) change
            # takes effect live.
            table.set_flush_backpressure(
                flush_limit, wait_s=self.policy.backpressure_wait_s)
            now = table.clock.now()
            flush_due = bool(table.flush_pending_count
                             or table.pending_flush_work(now))
            if not flush_due:
                merge_debt += merge_debt_bytes(
                    table.descriptor.tablets, now, name, table.config)
            with self._set_lock:
                if name in self._queued:
                    continue
                if not table.maintenance_due(now=now):
                    continue
                self._queued.add(name)
            priority = _PRIORITY_FLUSH if flush_due else _PRIORITY_MERGE
            self._queue.put((priority, next(self._seq), name))
            (self._m_flush_runs if flush_due else self._m_merge_runs).inc()
            enqueued += 1
        self._g_merge_debt.set(merge_debt)
        self._m_ticks.inc()
        self._g_depth.set(self._queue.qsize())
        self._h_tick.observe((time.perf_counter() - started) * 1e6)
        return enqueued

    def _worker_loop(self) -> None:
        while True:
            _priority, _seq, name = self._queue.get()
            if name is _STOP:
                return
            try:
                self._run_table(name)
            finally:
                with self._set_lock:
                    self._queued.discard(name)
                self._g_depth.set(self._queue.qsize())

    def _run_table(self, name: str) -> None:
        try:
            table = self.db.table(name)
        except NoSuchTableError:  # dropped while queued
            return
        try:
            report = table.maintenance(
                merge_budget=self._merge_budget(),
                expire_ttl=self.policy.expire_ttl)
        except Exception as exc:  # Table.maintenance isolates per work
            # kind already; this catches the truly unexpected.
            from .maintenance import TableMaintenanceReport

            report = TableMaintenanceReport(
                table=name,
                errors=[f"maintenance: {type(exc).__name__}: {exc}"])
            self._m_errors.inc()
        self._m_runs.inc()
        with self._report_lock:
            self._lifetime.add(report)

    # ----------------------------------------------------------- queries

    def run_once(self) -> MaintenanceReport:
        """One synchronous pass over every table (no threads): what
        the deprecated ad-hoc loops called; also used by tests."""
        report = self.db.maintenance()
        with self._report_lock:
            self._lifetime.merge_from(report)
        return report

    def lifetime_report(self) -> MaintenanceReport:
        """Accumulated work since construction (copy)."""
        with self._report_lock:
            copied = MaintenanceReport()
            copied.merge_from(self._lifetime)
            return copied
