"""The maintenance scheduler: the one way background work runs.

The paper's deployment runs "a background thread [that] periodically
merges tablets" and flushes by age (§3.3) - continuously, without
stalling the writer.  This module is that thread (well, threads) for
the reproduction, shared by the embedded and served configurations:

* a **ticker** wakes every ``policy.tick_interval_s``, scans the
  catalog for tables with due work (:meth:`Table.maintenance_due` is a
  cheap probe), and enqueues them;
* a pool of ``policy.workers`` **workers** drains the queue, running
  :meth:`Table.maintenance` per table.  A table is never enqueued
  twice concurrently, so two workers cannot contend on one table's
  maintenance lock; distinct tables proceed in parallel.
* the ticker also arms each table's **insert backpressure** from the
  policy (re-armed every tick, so tables created after ``start()``
  pick it up too), and ``stop()`` disarms it.

Crash isolation is per table per tick: a failing flush on one table is
recorded on that table's report (and the ``maintenance.errors``
counter) while every other table's work proceeds.  The ticker itself
never dies to an exception.

Observability: ``maintenance.queue_depth`` (gauge),
``maintenance.ticks``, ``maintenance.table_runs``,
``maintenance.tick_duration_us``, plus everything the tables record.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Optional, Set

from .errors import NoSuchTableError
from .maintenance import MaintenancePolicy, MaintenanceReport

#: Worker-queue sentinel: one per worker tells it to exit.
_STOP = None


class MaintenanceScheduler:
    """Background worker pool running maintenance for one database.

    >>> db = LittleTable(maintenance_policy=MaintenancePolicy(
    ...     tick_interval_s=0.5, workers=2))
    >>> db.start_maintenance()      # doctest: +SKIP
    ... # inserts and queries proceed; flushes/merges/TTL run behind
    >>> db.stop_maintenance()       # doctest: +SKIP

    Usually owned by :class:`~repro.core.database.LittleTable` (via
    ``start_maintenance()``) or :class:`~repro.net.server.LittleTableServer`;
    standalone construction works too.
    """

    def __init__(self, db, policy: Optional[MaintenancePolicy] = None,
                 metrics=None):
        if policy is None:
            policy = getattr(db, "maintenance_policy", None)
        if policy is None:
            policy = MaintenancePolicy()
        policy.validate()
        self.db = db
        self.policy = policy
        self.metrics = metrics if metrics is not None else db.metrics
        self._queue: "queue.Queue" = queue.Queue()
        # Tables currently queued or being worked, so one table never
        # occupies two workers (its maintenance lock would serialize
        # them anyway; this keeps the second worker useful).
        self._queued: Set[str] = set()
        self._set_lock = threading.Lock()
        self._stop = threading.Event()
        self._ticker: Optional[threading.Thread] = None
        self._workers: list = []
        self._report_lock = threading.Lock()
        self._lifetime = MaintenanceReport()
        self._g_depth = self.metrics.gauge("maintenance.queue_depth")
        self._m_ticks = self.metrics.counter("maintenance.ticks")
        self._m_runs = self.metrics.counter("maintenance.table_runs")
        self._m_errors = self.metrics.counter("maintenance.errors")
        self._h_tick = self.metrics.histogram("maintenance.tick_duration_us")

    @property
    def running(self) -> bool:
        return self._ticker is not None and self._ticker.is_alive()

    def start(self) -> None:
        """Start the ticker and the worker pool (idempotent)."""
        if self.running:
            return
        self._stop.clear()
        self._workers = []
        for index in range(self.policy.workers):
            worker = threading.Thread(
                target=self._worker_loop, daemon=True,
                name=f"lt-maintenance-{index}")
            worker.start()
            self._workers.append(worker)
        self._ticker = threading.Thread(
            target=self._ticker_loop, daemon=True, name="lt-maintenance-tick")
        self._ticker.start()

    def stop(self, timeout: float = 5.0) -> None:
        """Stop cleanly: finish in-flight table runs, disarm
        backpressure, drain the queue (idempotent)."""
        self._stop.set()
        if self._ticker is not None:
            self._ticker.join(timeout=timeout)
            self._ticker = None
        for _worker in self._workers:
            self._queue.put(_STOP)
        for worker in self._workers:
            worker.join(timeout=timeout)
        self._workers = []
        # Drain whatever the workers never picked up.
        while True:
            try:
                self._queue.get_nowait()
            except queue.Empty:
                break
        with self._set_lock:
            self._queued.clear()
        self._g_depth.set(0)
        # Stalled inserts must not wait out their full budget against a
        # scheduler that will never flush: disarm wakes them all.
        for name in self.db.table_names():
            try:
                self.db.table(name).set_flush_backpressure(None)
            except NoSuchTableError:
                pass

    # ------------------------------------------------------------- loops

    def _ticker_loop(self) -> None:
        while not self._stop.wait(self.policy.tick_interval_s):
            try:
                self.tick()
            except Exception:  # keep the loop alive, count the wound
                self._m_errors.inc()

    def tick(self) -> int:
        """One scheduling pass: arm backpressure, enqueue due tables.

        Returns the number of tables enqueued.  Runs in the ticker
        normally; tests call it directly for determinism.
        """
        started = time.perf_counter()
        enqueued = 0
        for name in self.db.table_names():
            try:
                table = self.db.table(name)
            except NoSuchTableError:  # dropped between list and lookup
                continue
            # Re-armed every tick: tables created after start() get
            # backpressure too, and a policy edit takes effect live.
            table.set_flush_backpressure(
                self.policy.max_flush_pending,
                wait_s=self.policy.backpressure_wait_s)
            with self._set_lock:
                if name in self._queued:
                    continue
                if not table.maintenance_due():
                    continue
                self._queued.add(name)
            self._queue.put(name)
            enqueued += 1
        self._m_ticks.inc()
        self._g_depth.set(self._queue.qsize())
        self._h_tick.observe((time.perf_counter() - started) * 1e6)
        return enqueued

    def _worker_loop(self) -> None:
        while True:
            name = self._queue.get()
            if name is _STOP:
                return
            try:
                self._run_table(name)
            finally:
                with self._set_lock:
                    self._queued.discard(name)
                self._g_depth.set(self._queue.qsize())

    def _run_table(self, name: str) -> None:
        try:
            table = self.db.table(name)
        except NoSuchTableError:  # dropped while queued
            return
        try:
            report = table.maintenance(
                merge_budget=self.policy.merge_budget_per_tick,
                expire_ttl=self.policy.expire_ttl)
        except Exception as exc:  # Table.maintenance isolates per work
            # kind already; this catches the truly unexpected.
            from .maintenance import TableMaintenanceReport

            report = TableMaintenanceReport(
                table=name,
                errors=[f"maintenance: {type(exc).__name__}: {exc}"])
            self._m_errors.inc()
        self._m_runs.inc()
        with self._report_lock:
            self._lifetime.add(report)

    # ----------------------------------------------------------- queries

    def run_once(self) -> MaintenanceReport:
        """One synchronous pass over every table (no threads): what
        the deprecated ad-hoc loops called; also used by tests."""
        report = self.db.maintenance()
        with self._report_lock:
            self._lifetime.merge_from(report)
        return report

    def lifetime_report(self) -> MaintenanceReport:
        """Accumulated work since construction (copy)."""
        with self._report_lock:
            copied = MaintenanceReport()
            copied.merge_from(self._lifetime)
            return copied
