"""Keys, key ranges, time ranges, and query descriptions.

Paper §3.1: "every query in LittleTable is an ordered scan of rows
within a two-dimensional bounding box of timestamps in one dimension
and primary keys or prefixes thereof in the other.  These bounds may be
inclusive or exclusive."

Keys are tuples of column values ordered as the schema's key columns
(ending in the timestamp).  A *prefix* bound compares only the first
``len(prefix)`` key columns; tuple truncation preserves lexicographic
order, so the bound predicates below are monotone along any sorted run
of keys, which is what lets cursors binary-search with them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence, Tuple

from .errors import QueryError

ASCENDING = "asc"
DESCENDING = "desc"


@dataclass(frozen=True)
class KeyRange:
    """Bounds on the key dimension; either side may be a key prefix.

    ``None`` on a side means unbounded.  ``contains`` compares the row
    key truncated to the bound's length, implementing prefix semantics:
    ``KeyRange.prefix((n, d))`` matches every key that starts with
    network ``n`` and device ``d``.
    """

    min_prefix: Optional[Tuple[Any, ...]] = None
    min_inclusive: bool = True
    max_prefix: Optional[Tuple[Any, ...]] = None
    max_inclusive: bool = True

    @classmethod
    def all(cls) -> "KeyRange":
        """The unbounded key range."""
        return cls()

    @classmethod
    def prefix(cls, prefix: Sequence[Any]) -> "KeyRange":
        """Match exactly the keys beginning with ``prefix``."""
        p = tuple(prefix)
        return cls(min_prefix=p, min_inclusive=True,
                   max_prefix=p, max_inclusive=True)

    def before_range(self, key: Tuple[Any, ...]) -> bool:
        """True if ``key`` lies below the minimum bound."""
        if self.min_prefix is None:
            return False
        truncated = key[:len(self.min_prefix)]
        if self.min_inclusive:
            return truncated < self.min_prefix
        return truncated <= self.min_prefix

    def after_range(self, key: Tuple[Any, ...]) -> bool:
        """True if ``key`` lies above the maximum bound."""
        if self.max_prefix is None:
            return False
        truncated = key[:len(self.max_prefix)]
        if self.max_inclusive:
            return truncated > self.max_prefix
        return truncated >= self.max_prefix

    def contains(self, key: Tuple[Any, ...]) -> bool:
        """True if ``key`` lies within both bounds."""
        return not self.before_range(key) and not self.after_range(key)

    def seek_min(self) -> Optional[Tuple[Any, ...]]:
        """A key tuple at or below the first in-range key.

        Ascending cursors position here and then skip any rows for
        which :meth:`before_range` still holds (only possible for an
        exclusive prefix bound).
        """
        return self.min_prefix


@dataclass(frozen=True)
class TimeRange:
    """Bounds on the timestamp dimension, in microseconds."""

    min_ts: Optional[int] = None
    min_inclusive: bool = True
    max_ts: Optional[int] = None
    max_inclusive: bool = True

    @classmethod
    def all(cls) -> "TimeRange":
        """The unbounded time range."""
        return cls()

    @classmethod
    def between(cls, min_ts: Optional[int], max_ts: Optional[int]) -> "TimeRange":
        """The inclusive range [min_ts, max_ts]."""
        return cls(min_ts=min_ts, max_ts=max_ts)

    def contains(self, ts: int) -> bool:
        """True if ``ts`` lies within the range."""
        if self.min_ts is not None:
            if self.min_inclusive:
                if ts < self.min_ts:
                    return False
            elif ts <= self.min_ts:
                return False
        if self.max_ts is not None:
            if self.max_inclusive:
                if ts > self.max_ts:
                    return False
            elif ts >= self.max_ts:
                return False
        return True

    def overlaps(self, span_min: int, span_max: int) -> bool:
        """True if the inclusive span [span_min, span_max] intersects.

        Used to select the tablets whose timespans overlap a query's
        timestamp bounds (§3.2).  Bound exclusivity is ignored here -
        over-selecting a tablet is harmless (rows are filtered), while
        under-selecting would lose results.
        """
        if self.min_ts is not None and span_max < self.min_ts:
            return False
        if self.max_ts is not None and span_min > self.max_ts:
            return False
        return True


@dataclass(frozen=True)
class Query:
    """A two-dimensional bounding-box query (§3.1)."""

    key_range: KeyRange = field(default_factory=KeyRange.all)
    time_range: TimeRange = field(default_factory=TimeRange.all)
    direction: str = ASCENDING
    limit: Optional[int] = None

    def __post_init__(self) -> None:
        if self.direction not in (ASCENDING, DESCENDING):
            raise QueryError(f"bad direction {self.direction!r}")
        if self.limit is not None and self.limit < 0:
            raise QueryError("limit must be non-negative")


@dataclass
class QueryStats:
    """Per-query efficiency counters (drive Figure 9)."""

    rows_scanned: int = 0
    rows_returned: int = 0
    tablets_opened: int = 0
    # Tablets the prune index skipped without opening a reader.
    tablets_pruned: int = 0

    @property
    def scan_ratio(self) -> float:
        """Rows scanned per row returned (1.0 is perfect)."""
        if self.rows_returned == 0:
            return float(self.rows_scanned) if self.rows_scanned else 1.0
        return self.rows_scanned / self.rows_returned
