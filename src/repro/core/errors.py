"""Exception hierarchy for the LittleTable engine."""

from __future__ import annotations


class LittleTableError(Exception):
    """Base class for all engine errors."""


class SchemaError(LittleTableError):
    """Invalid schema definition or incompatible schema change."""


class ValidationError(LittleTableError):
    """A row does not conform to its table's schema."""


class DuplicateKeyError(LittleTableError):
    """An insert would violate primary-key uniqueness (paper §3.4.4)."""


class NoSuchTableError(LittleTableError):
    """The named table does not exist."""


class TableExistsError(LittleTableError):
    """A table with that name already exists."""


class CorruptTabletError(LittleTableError):
    """An on-disk tablet or descriptor failed to parse."""


class QueryError(LittleTableError):
    """Malformed query bounds or options."""
