"""Exception hierarchy for the LittleTable engine."""

from __future__ import annotations


class LittleTableError(Exception):
    """Base class for all engine errors."""


class SchemaError(LittleTableError):
    """Invalid schema definition or incompatible schema change."""


class ValidationError(LittleTableError):
    """A row does not conform to its table's schema."""


class DuplicateKeyError(LittleTableError):
    """An insert would violate primary-key uniqueness (paper §3.4.4)."""


class NoSuchTableError(LittleTableError):
    """The named table does not exist."""


class TableExistsError(LittleTableError):
    """A table with that name already exists."""


class CorruptTabletError(LittleTableError):
    """An on-disk tablet or descriptor failed to parse."""


class ChecksumError(CorruptTabletError):
    """A stored CRC (block, footer, or descriptor) did not match the
    bytes read back - bit rot or a torn write slipped past structural
    parsing.  The offending tablet is quarantined; this error reports
    the detection to the in-flight reader."""


class ReadOnlyModeError(LittleTableError):
    """The engine has degraded to read-only (disk full or persistent
    I/O errors).  Writes are rejected; reads keep serving.  Clears via
    ``LittleTable.exit_read_only()`` once the disk recovers."""


class QueryError(LittleTableError):
    """Malformed query bounds or options."""


class ProtocolViolationError(LittleTableError):
    """The server rejected a request it could not understand (unknown
    command, bad alter action, malformed fields).  Reported by the
    client adaptor for *server-side* protocol complaints - distinct
    from :class:`repro.net.protocol.ProtocolError`, which is a local
    framing failure."""


class ServerError(LittleTableError):
    """The server hit an unexpected internal failure handling a
    request.  The connection stays up; the command did not happen.

    When the failure came back over the wire with an error code the
    client does not recognize, the original code string is preserved
    on :attr:`code` (never silently discarded)."""

    #: The wire error code as the server sent it, when this error
    #: crossed the network with a code the client could not map to a
    #: local exception class.  None for locally-raised ServerErrors.
    code = None


class SnapshotError(LittleTableError):
    """A point-in-time snapshot or restore failed: the destination is
    not empty, the source is not a valid snapshot, or its manifest
    fails verification.  The live database is never modified by a
    failed snapshot; a failed ``restore`` installs no tables."""


class ReplicaDivergedError(LittleTableError):
    """A warm standby detected that it can no longer converge with its
    primary: the primary's LSNs regressed (it was restored or
    replaced), or streamed records contradict already-applied state.
    The follower stops applying; re-seed it from a fresh snapshot."""


class OverloadedError(LittleTableError):
    """The server shed this request *before executing it* - admission
    control found the in-flight cap saturated, the request overran its
    queue-time deadline, or a shard is in overload cooldown.

    Always retryable regardless of idempotence: a shed request was
    never started, so nothing - not even partially - was applied.
    :attr:`retry_after_s` carries the server's hint for how long to
    back off before retrying (also sent on the wire as
    ``retry_after``)."""

    #: Suggested client backoff in seconds, or None when the server
    #: offered no hint.
    retry_after_s = None

    def __init__(self, message: str = "server overloaded",
                 retry_after_s=None):
        super().__init__(message)
        if retry_after_s is not None:
            self.retry_after_s = retry_after_s


class ShardDegradedError(LittleTableError):
    """The shard worker owning the requested keys has crashed or hit
    unrecoverable storage errors.  The router stays up: keys on other
    shards keep serving, and this shard's tables are degraded until
    the operator revives the worker (``ShardRouter.revive_shard``)."""
