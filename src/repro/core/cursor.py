"""Merge cursors: combining tablet streams into one sorted result.

Paper §3.2: "Using these starting points, LittleTable opens a cursor on
each tablet, filters any rows that fall outside the query's timestamp
bounds (which generally do not align exactly with the tablets'
timespans), and merge-sorts the resulting streams to form a single
result stream ordered by primary key."

The scanned/returned accounting here is what Figure 9 reports: a row
pulled from a tablet cursor (inside the key bounds) counts as scanned;
it counts as returned only if it also passes the timestamp and TTL
filters.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterable, Iterator, List, Optional, Tuple

from .row import Query, QueryStats
from .schema import Schema


def merge_sorted(sources: List[Iterator[Tuple[Any, ...]]],
                 key_of: Callable[[Tuple[Any, ...]], Tuple[Any, ...]],
                 descending: bool = False) -> Iterator[Tuple[Any, ...]]:
    """K-way merge of per-tablet streams already sorted by key.

    Keys are unique across sources (primary-key uniqueness, §3.4.4),
    so no shadowing logic is needed.
    """
    if len(sources) == 1:
        return iter(sources[0])
    return heapq.merge(*sources, key=key_of, reverse=descending)


def execute_query(sources: List[Iterator[Tuple[Any, ...]]],
                  schema: Schema,
                  query: Query,
                  now: int,
                  ttl_micros: Optional[int],
                  stats: QueryStats) -> Iterator[Tuple[Any, ...]]:
    """Filter and yield the merged stream for ``query``.

    ``sources`` must already be restricted to the query's key bounds
    (each tablet cursor seeks by key) and translated to the current
    schema; this function applies the timestamp bounds, TTL expiry
    (§3.3: "the server also filters expired rows from query results"),
    the client limit, and counts scanned vs returned rows into
    ``stats``.
    """
    descending = query.direction == "desc"
    merged = merge_sorted(sources, schema.key_of, descending)
    time_range = query.time_range
    expiry_cutoff = None if ttl_micros is None else now - ttl_micros
    limit = query.limit
    returned = 0
    for row in merged:
        stats.rows_scanned += 1
        ts = schema.ts_of(row)
        if not time_range.contains(ts):
            continue
        if expiry_cutoff is not None and ts < expiry_cutoff:
            continue
        stats.rows_returned += 1
        yield row
        returned += 1
        if limit is not None and returned >= limit:
            return
