"""64 kB blocks: the unit of tablet I/O and compression.

Paper §3.2: on-disk tablets are "a sequence of rows sorted by their
primary keys and grouped into 64 kB blocks"; §3.5: blocks and footers
are compressed (LZO1X-1 there, zlib level 1 here - see DESIGN.md §2).
"""

from __future__ import annotations

import zlib
from typing import Any, List, Tuple

from .encoding import RowCodec
from .errors import CorruptTabletError

CODEC_NONE = 0
CODEC_ZLIB = 1

_CODEC_IDS = {"none": CODEC_NONE, "zlib": CODEC_ZLIB}
_CODEC_NAMES = {v: k for k, v in _CODEC_IDS.items()}


def codec_id(name: str) -> int:
    """Map a codec name ("none"/"zlib") to its on-disk id."""
    try:
        return _CODEC_IDS[name]
    except KeyError:
        raise ValueError(f"unknown compression codec {name!r}") from None


def codec_name(ident: int) -> str:
    """Inverse of :func:`codec_id`."""
    try:
        return _CODEC_NAMES[ident]
    except KeyError:
        raise CorruptTabletError(f"unknown codec id {ident}") from None


def compress(codec: int, data: bytes) -> bytes:
    """Compress a block or footer body."""
    if codec == CODEC_NONE:
        return data
    if codec == CODEC_ZLIB:
        # Level 1: cheap, like the paper's LZO1X-1.
        return zlib.compress(data, 1)
    raise CorruptTabletError(f"unknown codec id {codec}")


def decompress(codec: int, data: bytes) -> bytes:
    """Inverse of :func:`compress`."""
    if codec == CODEC_NONE:
        return data
    if codec == CODEC_ZLIB:
        try:
            return zlib.decompress(data)
        except zlib.error as exc:
            raise CorruptTabletError(f"bad zlib block: {exc}") from exc
    raise CorruptTabletError(f"unknown codec id {codec}")


class BlockBuilder:
    """Accumulates encoded rows until the block-size target is reached.

    The builder tracks the *uncompressed* size; a block is cut when
    adding a row would push it past the target (so blocks can exceed
    the target only when a single row does).
    """

    def __init__(self, target_bytes: int):
        if target_bytes <= 0:
            raise ValueError("target_bytes must be positive")
        self.target_bytes = target_bytes
        self._rows: List[bytes] = []
        self._size = 0

    def __len__(self) -> int:
        return len(self._rows)

    @property
    def size_bytes(self) -> int:
        return self._size

    def would_overflow(self, encoded_len: int) -> bool:
        """True if adding this row should cut the block first."""
        return bool(self._rows) and self._size + encoded_len > self.target_bytes

    def add(self, encoded_row: bytes) -> None:
        """Append one encoded row."""
        self._rows.append(encoded_row)
        self._size += len(encoded_row)

    def finish(self, codec: int) -> Tuple[bytes, int, int]:
        """Compress and reset.  Returns (payload, row_count, raw_size)."""
        raw = b"".join(self._rows)
        row_count = len(self._rows)
        raw_size = self._size
        self._rows = []
        self._size = 0
        return compress(codec, raw), row_count, raw_size


def decode_rows(raw: bytes, codec_rows: RowCodec, row_count: int,
                metrics=None) -> List[Tuple[Any, ...]]:
    """Decode an already-decompressed block body into row tuples.

    ``metrics`` (a :class:`~repro.obs.metrics.MetricsRegistry`, or
    None) counts decoded blocks/rows/bytes - the decode side of the
    tablet reader's block-read accounting.  The read cache calls this
    at most once per resident block; :func:`decode_block` wraps it for
    callers holding the compressed payload.
    """
    rows: List[Tuple[Any, ...]] = []
    offset = 0
    for _ in range(row_count):
        row, offset = codec_rows.decode_row(raw, offset)
        rows.append(row)
    if offset != len(raw):
        raise CorruptTabletError("trailing bytes after last row in block")
    if metrics is not None:
        metrics.counter("block.decoded").inc()
        metrics.counter("block.rows_decoded").inc(row_count)
        metrics.counter("block.decoded_bytes").inc(len(raw))
    return rows


def decode_block(payload: bytes, codec: int, codec_rows: RowCodec,
                 row_count: int, metrics=None) -> List[Tuple[Any, ...]]:
    """Decompress and decode a block into row tuples."""
    raw = decompress(codec, payload)
    return decode_rows(raw, codec_rows, row_count, metrics=metrics)


def decode_block_pairs(payload: bytes, codec: int, codec_rows: RowCodec,
                       row_count: int, metrics=None
                       ) -> List[Tuple[Tuple[Any, ...], bytes]]:
    """Like :func:`decode_block` but keeps each row's raw encoding.

    Merges use this to stream rows into the output tablet without
    re-encoding them.
    """
    raw = decompress(codec, payload)
    pairs: List[Tuple[Tuple[Any, ...], bytes]] = []
    offset = 0
    for _ in range(row_count):
        row, end = codec_rows.decode_row(raw, offset)
        pairs.append((row, raw[offset:end]))
        offset = end
    if offset != len(raw):
        raise CorruptTabletError("trailing bytes after last row in block")
    if metrics is not None:
        metrics.counter("block.decoded").inc()
        metrics.counter("block.rows_decoded").inc(row_count)
        metrics.counter("block.decoded_bytes").inc(len(raw))
    return pairs
