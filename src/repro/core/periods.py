"""Application-driven time periods (paper §3.4.2).

"LittleTable groups time into three ranges, each measured in even
intervals from the Unix epoch: the six 4-hour periods of the most
recent day, the seven days of the most recent week, and all the weeks
previous to that."

A *period* is an interval ``[start, end)`` at one of three levels:

* ``FOUR_HOUR`` - timestamps within the current UTC day (or in the
  future) bin into 4-hour intervals;
* ``DAY`` - timestamps within the current week but before the current
  day bin into 1-day intervals;
* ``WEEK`` - older timestamps bin into 1-week intervals.

The binning is a function of both the timestamp *and* the current
time: as "now" advances, yesterday's 4-hour periods become part of a
day period, and last week's day periods become part of a week period.
In-memory tablets fill one per period (§3.4.3), and the merge policy
refuses to merge tablets whose (current) periods differ.
"""

from __future__ import annotations

import enum
import zlib
from dataclasses import dataclass

from ..util.clock import MICROS_PER_DAY, MICROS_PER_HOUR, MICROS_PER_WEEK

FOUR_HOURS = 4 * MICROS_PER_HOUR


class PeriodLevel(enum.IntEnum):
    """Granularity levels, ordered finest to coarsest."""

    FOUR_HOUR = 0
    DAY = 1
    WEEK = 2


_LEVEL_LENGTH = {
    PeriodLevel.FOUR_HOUR: FOUR_HOURS,
    PeriodLevel.DAY: MICROS_PER_DAY,
    PeriodLevel.WEEK: MICROS_PER_WEEK,
}


@dataclass(frozen=True, order=True)
class Period:
    """One time period: ``[start, end)`` at a given level."""

    start: int
    end: int
    level: PeriodLevel

    @property
    def length(self) -> int:
        return self.end - self.start

    def contains(self, ts: int) -> bool:
        return self.start <= ts < self.end

    def __repr__(self) -> str:
        return f"Period({self.level.name}, [{self.start}, {self.end}))"


def day_floor(ts: int) -> int:
    """Start of the UTC day containing ``ts``."""
    return (ts // MICROS_PER_DAY) * MICROS_PER_DAY


def week_floor(ts: int) -> int:
    """Start of the epoch-aligned week containing ``ts``."""
    return (ts // MICROS_PER_WEEK) * MICROS_PER_WEEK


#: The single all-encompassing period used when time partitioning is
#: ablated away (EngineConfig.time_partitioning = False).
UNPARTITIONED_PERIOD = Period(0, 1 << 62, PeriodLevel.WEEK)


def period_for(ts: int, now: int, partitioned: bool = True) -> Period:
    """The period containing ``ts`` as seen at time ``now``.

    Future timestamps (allowed by §3.1) bin at the finest granularity.
    With ``partitioned=False`` every timestamp maps to one giant
    period (the ablation of §3.4.2's design).
    """
    if ts < 0:
        raise ValueError("timestamps must be non-negative")
    if not partitioned:
        return UNPARTITIONED_PERIOD
    current_day = day_floor(now)
    current_week = week_floor(now)
    if ts >= current_day:
        start = (ts // FOUR_HOURS) * FOUR_HOURS
        return Period(start, start + FOUR_HOURS, PeriodLevel.FOUR_HOUR)
    if ts >= current_week:
        start = day_floor(ts)
        return Period(start, start + MICROS_PER_DAY, PeriodLevel.DAY)
    start = week_floor(ts)
    return Period(start, start + MICROS_PER_WEEK, PeriodLevel.WEEK)


def level_length(level: PeriodLevel) -> int:
    """The span of one period at ``level``, in microseconds."""
    return _LEVEL_LENGTH[level]


def rollover_delay(table_name: str, period: Period, fraction_scale: float) -> int:
    """Pseudorandom merge delay after a period rolls over (§3.4.2).

    "To prevent this policy from producing a surge of merge activity as
    the tablets from a smaller period roll over into the next largest
    one, LittleTable spreads the merge load across tables by delaying
    each merge by a pseudorandom fraction of the larger period."

    The delay is deterministic per (table, period) so that repeated
    policy evaluations agree, and is measured from the period's end.
    """
    if fraction_scale <= 0:
        return 0
    token = f"{table_name}:{period.start}:{int(period.level)}".encode("utf-8")
    seed = zlib.crc32(token)
    fraction = (seed / 0x100000000) * fraction_scale
    return int(fraction * period.length)
