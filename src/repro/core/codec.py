"""Schema-compiled batch codecs and block format v2.

The v1 row format (``encoding.py``) encodes one field at a time through
``encode_value``/``decode_value`` dispatch: every row pays one Python
call per column plus a type test per value.  Profiles of insert, flush,
merge, and scan are dominated by that interpreter overhead, not by the
bytes themselves.  This module removes it the way real LSM engines do
(Real-Time LSM-Trees; RocksDB's BlockBuilder): each :class:`Schema` is
*compiled once* into specialized batch encoders and decoders - plain
generated Python functions with the per-column work inlined - and rows
move through the engine in whole-block batches.

Block format v2 (one block = one column-major batch)::

    [0x02]                      format byte (redundant with the footer)
    [uvarint n]                 row count
    [uvarint K]                 restart interval
    [uvarint R]                 number of restarts = ceil(n / K)
    then one segment per column, in schema order:
      [uvarint seg_len][segment bytes]

Segment bodies by column type:

* ``DOUBLE``: one ``struct`` pack of all n values (``<nd``), no
  restart table (offsets are computable).
* every other type: ``[uvarint offs_len][R uvarint restart offsets]``
  (byte offsets of each restart row, relative to the data that
  follows) then the data:

  - ``TIMESTAMP``: the restart row's value as a full uvarint, then
    zigzag svarint deltas within the restart run;
  - ``INT32``/``INT64``: plain zigzag svarints (fused run, no
    per-value dispatch);
  - key ``STRING`` columns: prefix compression against the previous
    value - ``[uvarint shared][uvarint unshared][bytes]`` with
    ``shared = 0`` at every restart row;
  - non-key ``STRING`` and ``BLOB``: ``[uvarint len][bytes]``.

Restart rows always carry complete values, so :meth:`decode_range` can
binary-search restart points by decoding only key columns and then
decode just the covering restart span instead of the whole block.

v1 blocks carry no version byte; the tablet footer's trailing
``block_format`` field (absent in old footers, so absence means v1)
tells the reader which decoder to use.  Merges rewrite v1 blocks into
v2, upgrading old tablets in place over time.
"""

from __future__ import annotations

import struct
import time
from typing import Any, List, Optional, Sequence, Tuple

from ..obs.metrics import NULL_REGISTRY
from ..util.varint import decode_uvarint, encode_uvarint
from .errors import CorruptTabletError, ValidationError
from .schema import ColumnType, Schema, check_value

BLOCK_FORMAT_V1 = 1
BLOCK_FORMAT_V2 = 2

#: Restart interval: one complete (non-delta, non-prefix-compressed)
#: row every K rows, the granularity of ``decode_range``.
RESTART_INTERVAL = 16

_INT_TYPES = (ColumnType.INT32, ColumnType.INT64)


def _uvarint_size(value: int) -> int:
    return 1 if value < 0x80 else (value.bit_length() + 6) // 7


# --------------------------------------------------------------------------
# code generation helpers
#
# The generators below build the source of one specialized function per
# schema and ``exec`` it once.  Inlined loops beat per-value dispatch by
# 3-5x in CPython: no call frames, no enum identity tests, and varint
# emission appends straight into a shared bytearray.


def _emit_uvarint(var: str, out: str, indent: str) -> str:
    """Source lines appending ``var`` (consumed) as a uvarint to ``out``."""
    return (
        f"{indent}while {var} > 127:\n"
        f"{indent}    {out}({var} & 127 | 128)\n"
        f"{indent}    {var} >>= 7\n"
        f"{indent}{out}({var})\n"
    )


def _emit_read_uvarint(var: str, indent: str) -> str:
    """Source lines decoding a uvarint from ``buf`` at ``_p`` into ``var``."""
    return (
        f"{indent}{var} = buf[_p]; _p += 1\n"
        f"{indent}if {var} > 127:\n"
        f"{indent}    {var} &= 127\n"
        f"{indent}    _sh2 = 7\n"
        f"{indent}    while True:\n"
        f"{indent}        _byt = buf[_p]; _p += 1\n"
        f"{indent}        if _byt > 127:\n"
        f"{indent}            {var} |= (_byt & 127) << _sh2\n"
        f"{indent}            _sh2 += 7\n"
        f"{indent}            if _sh2 > 70:\n"
        f"{indent}                raise _corrupt('uvarint too long')\n"
        f"{indent}        else:\n"
        f"{indent}            {var} |= _byt << _sh2\n"
        f"{indent}            break\n"
    )


def _gen_validate_and_size(schema: Schema) -> str:
    n = len(schema.columns)
    lines = [
        "def validate_and_size(row):",
        f"    if len(row) != {n}:",
        "        raise _VE('row has %d values, schema has "
        f"{n}' % (len(row),))",
        "    _s = 0",
    ]
    for i, column in enumerate(schema.columns):
        t = column.type
        v = f"v{i}"
        lines.append(f"    {v} = row[{i}]")
        if t in _INT_TYPES:
            lo, hi = ((-(1 << 31), (1 << 31) - 1) if t is ColumnType.INT32
                      else (-(1 << 63), (1 << 63) - 1))
            lines += [
                f"    if type({v}) is not int:",
                f"        {v} = _cv(_t{i}, {v})",
                f"    elif {v} > {hi} or {v} < {lo}:",
                f"        raise _VE('{t.value} out of range: %d' % ({v},))",
                f"    _z = ({v} << 1) ^ ({v} >> 63)",
                "    _s += 1 if _z < 128 else (_z.bit_length() + 6) // 7",
            ]
        elif t is ColumnType.TIMESTAMP:
            lines += [
                f"    if type({v}) is not int:",
                f"        {v} = _cv(_t{i}, {v})",
                f"    elif {v} < 0:",
                f"        raise _VE('timestamps must be non-negative: %d'"
                f" % ({v},))",
                f"    _s += 1 if {v} < 128 else"
                f" ({v}.bit_length() + 6) // 7",
            ]
        elif t is ColumnType.DOUBLE:
            lines += [
                f"    if type({v}) is not float:",
                f"        if type({v}) is int:",
                f"            {v} = float({v})",
                "        else:",
                f"            {v} = _cv(_t{i}, {v})",
                "    _s += 8",
            ]
        elif t is ColumnType.STRING:
            lines += [
                f"    if type({v}) is not str:",
                f"        {v} = _cv(_t{i}, {v})",
                f"    _l = len({v})",
                f"    if not {v}.isascii():",
                f"        _l = len({v}.encode('utf-8'))",
                "    _s += _l + (1 if _l < 128 else"
                " (_l.bit_length() + 6) // 7)",
            ]
        else:  # BLOB
            lines += [
                f"    if type({v}) is not bytes:",
                f"        {v} = _cv(_t{i}, {v})",
                f"    _l = len({v})",
                "    _s += _l + (1 if _l < 128 else"
                " (_l.bit_length() + 6) // 7)",
            ]
    row_tuple = ", ".join(f"v{i}" for i in range(n))
    lines.append(f"    return ({row_tuple}{',' if n == 1 else ''}), _s")
    return "\n".join(lines)


def _gen_size_of(schema: Schema) -> str:
    lines = ["def size_of(row):", "    _s = 0"]
    for i, column in enumerate(schema.columns):
        t = column.type
        v = f"v{i}"
        lines.append(f"    {v} = row[{i}]")
        if t in _INT_TYPES:
            lines += [
                f"    _z = ({v} << 1) ^ ({v} >> 63)",
                "    _s += 1 if _z < 128 else (_z.bit_length() + 6) // 7",
            ]
        elif t is ColumnType.TIMESTAMP:
            lines.append(
                f"    _s += 1 if {v} < 128 else ({v}.bit_length() + 6) // 7")
        elif t is ColumnType.DOUBLE:
            lines.append("    _s += 8")
        elif t is ColumnType.STRING:
            lines += [
                f"    _l = len({v})",
                f"    if not {v}.isascii():",
                f"        _l = len({v}.encode('utf-8'))",
                "    _s += _l + (1 if _l < 128 else"
                " (_l.bit_length() + 6) // 7)",
            ]
        else:
            lines += [
                f"    _l = len({v})",
                "    _s += _l + (1 if _l < 128 else"
                " (_l.bit_length() + 6) // 7)",
            ]
    lines.append("    return _s")
    return "\n".join(lines)


def _gen_key_of(schema: Schema) -> str:
    parts = ", ".join(f"row[{i}]" for i in schema.key_indexes)
    tail = "," if len(schema.key_indexes) == 1 else ""
    return f"def key_of(row):\n    return ({parts}{tail})"


def _gen_encode_row_v1(schema: Schema) -> str:
    lines = [
        "def encode_row_v1(row):",
        "    _b = bytearray()",
        "    _a = _b.append",
    ]
    for i, column in enumerate(schema.columns):
        t = column.type
        lines.append(f"    _v = row[{i}]")
        if t in _INT_TYPES:
            lines.append("    _z = (_v << 1) ^ (_v >> 63)")
            lines.append(_emit_uvarint("_z", "_a", "    ").rstrip("\n"))
        elif t is ColumnType.TIMESTAMP:
            lines.append(_emit_uvarint("_v", "_a", "    ").rstrip("\n"))
        elif t is ColumnType.DOUBLE:
            lines.append("    _b += _packd(_v)")
        elif t is ColumnType.STRING:
            lines.append("    _r = _v.encode('utf-8')")
            lines.append("    _l = len(_r)")
            lines.append(_emit_uvarint("_l", "_a", "    ").rstrip("\n"))
            lines.append("    _b += _r")
        else:  # BLOB
            lines.append("    _l = len(_v)")
            lines.append(_emit_uvarint("_l", "_a", "    ").rstrip("\n"))
            lines.append("    _b += _v")
    lines.append("    return bytes(_b)")
    return "\n".join(lines)


def _varwidth_segment_tail(indent: str = "    ") -> str:
    """Shared assembly: append [seg_len][offs_len][offs][data] to parts."""
    return (
        f"{indent}_ob = bytes(_offs)\n"
        f"{indent}_sb = bytes(_seg)\n"
        f"{indent}_h = _euv(len(_ob))\n"
        f"{indent}_pa(_euv(len(_h) + len(_ob) + len(_sb)))\n"
        f"{indent}_pa(_h)\n"
        f"{indent}_pa(_ob)\n"
        f"{indent}_pa(_sb)\n"
    )


def _gen_encode_rows_v2(schema: Schema, K: int) -> str:
    ncols = len(schema.columns)
    cols = ", ".join(f"_c{i}" for i in range(ncols))
    tail = "," if ncols == 1 else ""
    key_set = set(schema.key_indexes)
    src = [
        "def encode_rows(rows):",
        "    n = len(rows)",
        "    if n == 0:",
        "        raise ValueError('cannot encode an empty block')",
        f"    ({cols}{tail}) = zip(*rows)",
        f"    _parts = [b'\\x02', _euv(n), _KB, _euv((n + {K - 1}) // {K})]",
        "    _pa = _parts.append",
    ]
    open_chunk = (
        "    _seg = bytearray()\n"
        "    _sa = _seg.append\n"
        "    _offs = bytearray()\n"
        "    _oa = _offs.append\n"
        "    _i = 0\n"
        "    while _i < n:\n"
        "        _x = len(_seg)\n"
        + _emit_uvarint("_x", "_oa", "        ")
    )
    for i, column in enumerate(schema.columns):
        t = column.type
        c = f"_c{i}"
        if t is ColumnType.DOUBLE:
            src.append("    _pa(_euv(8 * n))")
            src.append(f"    _pa(_pack('<%dd' % n, *{c}))")
            continue
        body = open_chunk
        if t in _INT_TYPES:
            body += (
                f"        for _v in {c}[_i:_i + {K}]:\n"
                "            _z = (_v << 1) ^ (_v >> 63)\n"
                + _emit_uvarint("_z", "_sa", "            ")
            )
        elif t is ColumnType.TIMESTAMP:
            body += (
                f"        _chunk = {c}[_i:_i + {K}]\n"
                "        _prev = _chunk[0]\n"
                "        _x = _prev\n"
                + _emit_uvarint("_x", "_sa", "        ")
                + "        for _v in _chunk[1:]:\n"
                "            _d = _v - _prev\n"
                "            _prev = _v\n"
                "            _z = (_d << 1) ^ (_d >> 63)\n"
                + _emit_uvarint("_z", "_sa", "            ")
            )
        elif t is ColumnType.STRING and i in key_set:
            body += (
                "        _pb = b''\n"
                f"        for _v in {c}[_i:_i + {K}]:\n"
                "            _b = _v.encode('utf-8')\n"
                "            if _b == _pb:\n"
                "                _sh = len(_b)\n"
                "            else:\n"
                "                _m = len(_b)\n"
                "                if len(_pb) < _m:\n"
                "                    _m = len(_pb)\n"
                "                _sh = 0\n"
                "                while _sh < _m and _b[_sh] == _pb[_sh]:\n"
                "                    _sh += 1\n"
                "            _u = len(_b) - _sh\n"
                "            _x = _sh\n"
                + _emit_uvarint("_x", "_sa", "            ")
                + "            _x = _u\n"
                + _emit_uvarint("_x", "_sa", "            ")
                + "            if _u:\n"
                "                _seg += _b[_sh:]\n"
                "            _pb = _b\n"
            )
        elif t is ColumnType.STRING:
            body += (
                f"        for _v in {c}[_i:_i + {K}]:\n"
                "            _b = _v.encode('utf-8')\n"
                "            _x = len(_b)\n"
                + _emit_uvarint("_x", "_sa", "            ")
                + "            _seg += _b\n"
            )
        else:  # BLOB
            body += (
                f"        for _v in {c}[_i:_i + {K}]:\n"
                "            _x = len(_v)\n"
                + _emit_uvarint("_x", "_sa", "            ")
                + "            _seg += _v\n"
            )
        body += f"        _i += {K}\n"
        body += _varwidth_segment_tail()
        src.append(body.rstrip("\n"))
    src.append("    return b''.join(_parts)")
    return "\n".join(src)


def _gen_decode_block_v2(schema: Schema, columns: bool = False) -> str:
    ncols = len(schema.columns)
    key_set = set(schema.key_indexes)
    name = "decode_block_columns" if columns else "decode_block"
    src = [
        f"def {name}(buf):",
        "    try:",
        "        if buf[0] != 2:",
        "            raise _corrupt('bad v2 block format byte %d'"
        " % (buf[0],))",
        "        _p = 1",
        _emit_read_uvarint("n", "        ").rstrip("\n"),
        _emit_read_uvarint("_k", "        ").rstrip("\n"),
        _emit_read_uvarint("_r", "        ").rstrip("\n"),
        "        if _k <= 0 or _r != (n + _k - 1) // _k:",
        "            raise _corrupt('bad v2 block restart table')",
    ]
    var_hdr = (
        _emit_read_uvarint("_sl", "        ")
        + "        _end = _p + _sl\n"
        "        if _end > len(buf):\n"
        "            raise _corrupt('truncated column segment')\n"
        + _emit_read_uvarint("_ol", "        ")
        + "        _p += _ol\n"
    )
    for i, column in enumerate(schema.columns):
        t = column.type
        c = f"_c{i}"
        if t is ColumnType.DOUBLE:
            src.append(
                _emit_read_uvarint("_sl", "        ")
                + "        _end = _p + _sl\n"
                "        if _sl != 8 * n or _end > len(buf):\n"
                "            raise _corrupt('bad double column segment')\n"
                + f"        {c} = _unpack('<%dd' % n, buf[_p:_end])\n"
                "        _p = _end"
            )
            continue
        body = var_hdr + f"        {c} = []\n        _ap = {c}.append\n"
        if t in _INT_TYPES:
            body += (
                "        for _j in range(n):\n"
                + _emit_read_uvarint("_z", "            ")
                + "            _ap((_z >> 1) ^ -(_z & 1))\n"
            )
        elif t is ColumnType.TIMESTAMP:
            body += (
                "        _i2 = 0\n"
                "        while _i2 < n:\n"
                + _emit_read_uvarint("_v", "            ")
                + "            _ap(_v)\n"
                "            _lim = _i2 + _k\n"
                "            if _lim > n:\n"
                "                _lim = n\n"
                "            _j = _i2 + 1\n"
                "            while _j < _lim:\n"
                + _emit_read_uvarint("_z", "                ")
                + "                _v += (_z >> 1) ^ -(_z & 1)\n"
                "                _ap(_v)\n"
                "                _j += 1\n"
                "            _i2 = _lim\n"
            )
        elif t is ColumnType.STRING and i in key_set:
            body += (
                "        _i2 = 0\n"
                "        while _i2 < n:\n"
                "            _pb = b''\n"
                "            _ps = ''\n"
                "            _lim = _i2 + _k\n"
                "            if _lim > n:\n"
                "                _lim = n\n"
                "            _j = _i2\n"
                "            while _j < _lim:\n"
                + _emit_read_uvarint("_sh", "                ")
                + _emit_read_uvarint("_u", "                ")
                + "                if _u == 0 and _sh == len(_pb):\n"
                "                    _ap(_ps)\n"
                "                else:\n"
                "                    if _sh > len(_pb):\n"
                "                        raise _corrupt('bad shared"
                " prefix length')\n"
                "                    _e2 = _p + _u\n"
                "                    if _e2 > _end:\n"
                "                        raise _corrupt('truncated"
                " string value')\n"
                "                    _pb = _pb[:_sh] + buf[_p:_e2]\n"
                "                    _p = _e2\n"
                "                    _ps = _pb.decode('utf-8')\n"
                "                    _ap(_ps)\n"
                "                _j += 1\n"
                "            _i2 = _lim\n"
            )
        elif t is ColumnType.STRING:
            body += (
                "        for _j in range(n):\n"
                + _emit_read_uvarint("_l", "            ")
                + "            _e2 = _p + _l\n"
                "            if _e2 > _end:\n"
                "                raise _corrupt('truncated string value')\n"
                "            _ap(buf[_p:_e2].decode('utf-8'))\n"
                "            _p = _e2\n"
            )
        else:  # BLOB
            body += (
                "        for _j in range(n):\n"
                + _emit_read_uvarint("_l", "            ")
                + "            _e2 = _p + _l\n"
                "            if _e2 > _end:\n"
                "                raise _corrupt('truncated blob value')\n"
                "            _ap(buf[_p:_e2])\n"
                "            _p = _e2\n"
            )
        body += (
            "        if _p != _end:\n"
            "            raise _corrupt('column segment length mismatch')"
        )
        src.append(body)
    cols = ", ".join(f"_c{i}" for i in range(ncols))
    keys = ", ".join(f"_c{i}" for i in schema.key_indexes)
    src += [
        "        if _p != len(buf):",
        "            raise _corrupt('trailing bytes after last column')",
    ]
    if columns:
        # The vectorized read path wants the column segments themselves:
        # no per-row tuple materialization, just the decoded value lists
        # in schema column order.
        src.append(f"        return [{cols}]")
    else:
        src += [
            f"        _rows = list(zip({cols}))",
            f"        _keys = list(zip({keys}))",
            "        return _rows, _keys",
        ]
    src += [
        "    except (IndexError, _StructError, UnicodeDecodeError) as _exc:",
        "        raise _corrupt('corrupt v2 block: %s' % (_exc,))",
    ]
    return "\n".join(src)


class _CompiledOps:
    """The per-schema compiled function bundle (no metrics, no state).

    One instance per :class:`Schema` object, memoized on the schema
    itself, so writers/readers/memtables constructed per flush or per
    merge pay nothing beyond an attribute lookup.
    """

    __slots__ = ("schema", "validate_and_size", "size_of", "key_of",
                 "encode_row_v1", "encode_rows", "decode_block",
                 "decode_block_columns")

    def __init__(self, schema: Schema):
        self.schema = schema
        namespace = {
            "_cv": check_value,
            "_VE": ValidationError,
            "_corrupt": CorruptTabletError,
            "_euv": encode_uvarint,
            "_pack": struct.pack,
            "_unpack": struct.unpack,
            "_packd": struct.Struct("<d").pack,
            "_StructError": struct.error,
            "_KB": encode_uvarint(RESTART_INTERVAL),
        }
        for i, column in enumerate(schema.columns):
            namespace[f"_t{i}"] = column.type
        source = "\n\n".join([
            _gen_validate_and_size(schema),
            _gen_size_of(schema),
            _gen_key_of(schema),
            _gen_encode_row_v1(schema),
            _gen_encode_rows_v2(schema, RESTART_INTERVAL),
            _gen_decode_block_v2(schema),
            _gen_decode_block_v2(schema, columns=True),
        ])
        exec(compile(source, f"<codec:{schema!r}>", "exec"), namespace)
        self.validate_and_size = namespace["validate_and_size"]
        self.size_of = namespace["size_of"]
        self.key_of = namespace["key_of"]
        self.encode_row_v1 = namespace["encode_row_v1"]
        self.encode_rows = namespace["encode_rows"]
        self.decode_block = namespace["decode_block"]
        self.decode_block_columns = namespace["decode_block_columns"]


def compiled_ops(schema: Schema) -> _CompiledOps:
    """The compiled bundle for ``schema``, built once per schema object."""
    ops = schema.__dict__.get("_compiled_codec_ops")
    if ops is None:
        ops = _CompiledOps(schema)
        schema.__dict__["_compiled_codec_ops"] = ops
    return ops


# --------------------------------------------------------------------------
# generic (interpreted) v2 readers: partial decode paths
#
# ``decode_range`` and ``decode_key_columns`` run on small spans (point
# probes, bloom keys for passed-through blocks), so they stay generic:
# they share one layout parser and per-type span decoders instead of
# per-schema generated code.


class _V2Layout:
    __slots__ = ("n", "k", "r", "segs")

    def __init__(self, n: int, k: int, r: int,
                 segs: List[Tuple[int, int]]):
        self.n = n
        self.k = k
        self.r = r
        #: per column: (segment start, segment end) - start points at
        #: the offs_len varint (or at packed data for DOUBLE columns).
        self.segs = segs


def _parse_v2_layout(buf: bytes, schema: Schema) -> _V2Layout:
    try:
        if buf[0] != BLOCK_FORMAT_V2:
            raise CorruptTabletError(
                f"bad v2 block format byte {buf[0]}")
        n, p = decode_uvarint(buf, 1)
        k, p = decode_uvarint(buf, p)
        r, p = decode_uvarint(buf, p)
        if k <= 0 or r != (n + k - 1) // k:
            raise CorruptTabletError("bad v2 block restart table")
        segs: List[Tuple[int, int]] = []
        for _column in schema.columns:
            seg_len, p = decode_uvarint(buf, p)
            end = p + seg_len
            if end > len(buf):
                raise CorruptTabletError("truncated column segment")
            segs.append((p, end))
            p = end
        if p != len(buf):
            raise CorruptTabletError("trailing bytes after last column")
        return _V2Layout(n, k, r, segs)
    except (IndexError, ValueError) as exc:
        raise CorruptTabletError(f"corrupt v2 block: {exc}") from exc


def _segment_offsets(buf: bytes, seg: Tuple[int, int],
                     r: int) -> Tuple[List[int], int]:
    """Parse a var-width segment's restart table.

    Returns (restart byte offsets, data start).  Offsets are relative
    to the data start.
    """
    offs_len, p = decode_uvarint(buf, seg[0])
    offs_end = p + offs_len
    offsets: List[int] = []
    for _ in range(r):
        value, p = decode_uvarint(buf, p)
        offsets.append(value)
    if p != offs_end:
        raise CorruptTabletError("bad restart offset table")
    return offsets, offs_end


def _decode_span(buf: bytes, schema: Schema, index: int,
                 layout: _V2Layout, chunk0: int, count: int,
                 offsets: Optional[List[int]] = None) -> List[Any]:
    """Decode ``count`` values of one column starting at restart
    ``chunk0`` (so the first decoded row is ``chunk0 * K``)."""
    column = schema.columns[index]
    t = column.type
    seg = layout.segs[index]
    n, k = layout.n, layout.k
    out: List[Any] = []
    if count <= 0:
        return out
    try:
        if t is ColumnType.DOUBLE:
            start = seg[0] + 8 * chunk0 * k
            end = start + 8 * count
            if end > seg[1]:
                raise CorruptTabletError("bad double column segment")
            return list(struct.unpack(f"<{count}d", buf[start:end]))
        if offsets is None:
            offsets, data_start = _segment_offsets(buf, seg, layout.r)
        else:
            _, data_start = _segment_offsets(buf, seg, layout.r)
        p = data_start + offsets[chunk0]
        row = chunk0 * k
        limit_row = row + count
        if t in _INT_TYPES:
            for _ in range(count):
                z, p = decode_uvarint(buf, p)
                out.append((z >> 1) ^ -(z & 1))
        elif t is ColumnType.TIMESTAMP:
            while row < limit_row:
                value, p = decode_uvarint(buf, p)
                out.append(value)
                lim = min(row + k, n, limit_row)
                j = row + 1
                while j < lim:
                    z, p = decode_uvarint(buf, p)
                    value += (z >> 1) ^ -(z & 1)
                    out.append(value)
                    j += 1
                row = min(row + k, n)
        elif t is ColumnType.STRING and index in schema.key_indexes:
            while row < limit_row:
                prev_b = b""
                prev_s = ""
                lim = min(row + k, n, limit_row)
                j = row
                while j < lim:
                    shared, p = decode_uvarint(buf, p)
                    unshared, p = decode_uvarint(buf, p)
                    if unshared == 0 and shared == len(prev_b):
                        out.append(prev_s)
                    else:
                        if shared > len(prev_b):
                            raise CorruptTabletError(
                                "bad shared prefix length")
                        end = p + unshared
                        if end > seg[1]:
                            raise CorruptTabletError(
                                "truncated string value")
                        prev_b = prev_b[:shared] + buf[p:end]
                        p = end
                        prev_s = prev_b.decode("utf-8")
                        out.append(prev_s)
                    j += 1
                row = min(row + k, n)
        elif t is ColumnType.STRING:
            for _ in range(count):
                length, p = decode_uvarint(buf, p)
                end = p + length
                if end > seg[1]:
                    raise CorruptTabletError("truncated string value")
                out.append(buf[p:end].decode("utf-8"))
                p = end
        else:  # BLOB
            for _ in range(count):
                length, p = decode_uvarint(buf, p)
                end = p + length
                if end > seg[1]:
                    raise CorruptTabletError("truncated blob value")
                out.append(buf[p:end])
                p = end
        return out
    except (IndexError, ValueError, struct.error) as exc:
        if isinstance(exc, CorruptTabletError):
            raise
        raise CorruptTabletError(f"corrupt v2 block: {exc}") from exc


def _decode_restart_value(buf: bytes, schema: Schema, index: int,
                          layout: _V2Layout, chunk: int,
                          offsets: List[int]) -> Any:
    """Decode one column's complete value at restart ``chunk``."""
    t = schema.columns[index].type
    seg = layout.segs[index]
    if t is ColumnType.DOUBLE:
        start = seg[0] + 8 * chunk * layout.k
        return struct.unpack_from("<d", buf, start)[0]
    _, data_start = _segment_offsets(buf, seg, layout.r)
    p = data_start + offsets[chunk]
    if t in _INT_TYPES:
        z, _ = decode_uvarint(buf, p)
        return (z >> 1) ^ -(z & 1)
    if t is ColumnType.TIMESTAMP:
        value, _ = decode_uvarint(buf, p)
        return value
    if t is ColumnType.STRING:
        shared, p = decode_uvarint(buf, p)
        unshared, p = decode_uvarint(buf, p)
        if shared != 0:
            raise CorruptTabletError("restart row with nonzero prefix")
        end = p + unshared
        if end > seg[1]:
            raise CorruptTabletError("truncated string value")
        return buf[p:end].decode("utf-8")
    raise CorruptTabletError(f"{t} cannot be a key column")


class SchemaCodec:
    """One schema's compiled codec plus its metrics hooks.

    Thin per-holder wrapper: the compiled function bundle is shared via
    :func:`compiled_ops`; each holder (table, reader, writer) gets its
    own counter objects from its registry.
    """

    __slots__ = ("schema", "ops", "validate_and_size", "size_of", "key_of",
                 "encode_row_v1", "_m_rows_encoded", "_m_rows_decoded",
                 "_m_blocks_encoded", "_m_blocks_decoded", "_m_encode_ns",
                 "_m_decode_ns", "_m_upgraded", "_offsets_cache")

    def __init__(self, schema: Schema, metrics=None):
        self.schema = schema
        ops = compiled_ops(schema)
        self.ops = ops
        self.validate_and_size = ops.validate_and_size
        self.size_of = ops.size_of
        self.key_of = ops.key_of
        self.encode_row_v1 = ops.encode_row_v1
        m = metrics if metrics is not None else NULL_REGISTRY
        self._m_rows_encoded = m.counter("codec.rows_encoded")
        self._m_rows_decoded = m.counter("codec.rows_decoded")
        self._m_blocks_encoded = m.counter("codec.blocks_encoded")
        self._m_blocks_decoded = m.counter("codec.blocks_decoded")
        self._m_encode_ns = m.counter("codec.encode_ns")
        self._m_decode_ns = m.counter("codec.decode_ns")
        self._m_upgraded = m.counter("codec.blocks_upgraded_v1_to_v2")

    # ------------------------------------------------------- block level

    def encode_rows(self, rows: Sequence[Tuple[Any, ...]]) -> bytes:
        """Encode a sorted row batch into one v2 block body."""
        started = time.perf_counter_ns()
        buf = self.ops.encode_rows(rows)
        self._m_encode_ns.inc(time.perf_counter_ns() - started)
        self._m_rows_encoded.inc(len(rows))
        self._m_blocks_encoded.inc()
        return buf

    def decode_block(self, buf: bytes
                     ) -> Tuple[List[Tuple[Any, ...]],
                                List[Tuple[Any, ...]]]:
        """Decode a whole v2 block body into ``(rows, keys)``."""
        started = time.perf_counter_ns()
        rows, keys = self.ops.decode_block(buf)
        self._m_decode_ns.inc(time.perf_counter_ns() - started)
        self._m_rows_decoded.inc(len(rows))
        self._m_blocks_decoded.inc()
        return rows, keys

    def decode_block_columns(self, buf: bytes) -> List[List[Any]]:
        """Decode a whole v2 block body into per-column value lists.

        The vectorized aggregate path consumes columns directly; no row
        tuples are materialized.  Returns one list per schema column, in
        schema order (DOUBLE columns come back as tuples from
        ``struct.unpack``; slicing and indexing work the same).
        """
        started = time.perf_counter_ns()
        columns = self.ops.decode_block_columns(buf)
        self._m_decode_ns.inc(time.perf_counter_ns() - started)
        if columns:
            self._m_rows_decoded.inc(len(columns[0]))
        self._m_blocks_decoded.inc()
        return columns

    def decode_range(self, buf: bytes,
                     lo_key: Optional[Tuple[Any, ...]] = None,
                     hi_prefix: Optional[Tuple[Any, ...]] = None
                     ) -> Tuple[List[Tuple[Any, ...]],
                                List[Tuple[Any, ...]], int]:
        """Decode only the restart spans covering ``[lo_key, hi_prefix]``.

        Binary-searches the restart table (decoding just the restart
        rows' key columns), then decodes the covering span of every
        column.  Returns ``(rows, keys, base_row_index)``; callers
        apply their exact range filter to the returned keys.  ``lo_key``
        is a full or prefix key tuple (plain tuple comparison);
        ``hi_prefix`` is a key prefix - rows whose key's leading
        columns exceed it are outside the range.
        """
        schema = self.schema
        layout = _parse_v2_layout(buf, schema)
        n, k, r = layout.n, layout.k, layout.r
        key_indexes = schema.key_indexes
        offsets_by_col = {}

        def offsets_for(index: int) -> List[int]:
            offs = offsets_by_col.get(index)
            if offs is None:
                offs = _segment_offsets(buf, layout.segs[index], r)[0]
                offsets_by_col[index] = offs
            return offs

        restart_keys: dict = {}

        def restart_key(chunk: int) -> Tuple[Any, ...]:
            key = restart_keys.get(chunk)
            if key is None:
                key = tuple(
                    _decode_restart_value(buf, schema, index, layout,
                                          chunk, offsets_for(index))
                    for index in key_indexes
                )
                restart_keys[chunk] = key
            return key

        chunk0 = 0
        if lo_key is not None:
            lo, hi = 0, r
            # First restart whose key is > lo_key; the span starts one
            # chunk earlier (its restart key is <= lo_key).
            while lo < hi:
                mid = (lo + hi) // 2
                if restart_key(mid) > lo_key:
                    hi = mid
                else:
                    lo = mid + 1
            chunk0 = max(0, lo - 1)
        chunk1 = r
        if hi_prefix is not None:
            width = len(hi_prefix)
            lo, hi = chunk0, r
            # First restart whose key prefix is beyond hi_prefix; rows
            # from that restart on cannot be in range.
            while lo < hi:
                mid = (lo + hi) // 2
                if restart_key(mid)[:width] > hi_prefix:
                    hi = mid
                else:
                    lo = mid + 1
            chunk1 = lo
        row_lo = chunk0 * k
        row_hi = min(n, chunk1 * k)
        count = row_hi - row_lo
        if count <= 0:
            return [], [], row_lo
        started = time.perf_counter_ns()
        columns = [
            _decode_span(buf, schema, index, layout, chunk0, count,
                         offsets_by_col.get(index))
            for index in range(len(schema.columns))
        ]
        rows = list(zip(*columns))
        keys = list(zip(*(columns[index] for index in key_indexes)))
        self._m_decode_ns.inc(time.perf_counter_ns() - started)
        self._m_rows_decoded.inc(count)
        return rows, keys, row_lo

    def decode_key_columns(self, buf: bytes,
                           include_ts: bool = True) -> List[List[Any]]:
        """Decode only the key columns of a v2 block (schema key order).

        The merge path uses this to feed Bloom filters for blocks that
        pass through without a full decode or re-encode.
        """
        layout = _parse_v2_layout(buf, self.schema)
        indexes = self.schema.key_indexes
        if not include_ts:
            indexes = indexes[:-1]
        return [
            _decode_span(buf, self.schema, index, layout, 0, layout.n)
            for index in indexes
        ]

    def block_row_count(self, buf: bytes) -> int:
        """The row count recorded in a v2 block header."""
        return _parse_v2_layout(buf, self.schema).n

    # --------------------------------------------------------- key level

    def encode_key_prefix(self, values: Sequence[Any]) -> List[bytes]:
        """Per-column v1 encodings of a key prefix (for Bloom filters).

        Unlike ``RowCodec.encode_key_columns(key)[:-1]`` this never
        encodes (then discards) the trailing timestamp.
        """
        schema = self.schema
        out: List[bytes] = []
        for position, value in enumerate(values):
            t = schema.columns[schema.key_indexes[position]].type
            if t in _INT_TYPES:
                out.append(encode_uvarint((value << 1) ^ (value >> 63)))
            elif t is ColumnType.TIMESTAMP:
                out.append(encode_uvarint(value))
            elif t is ColumnType.STRING:
                raw = value.encode("utf-8")
                out.append(encode_uvarint(len(raw)) + raw)
            else:
                raise ValueError(f"{t} cannot be a key column")
        return out

    # ----------------------------------------------------------- metrics

    def note_upgraded_blocks(self, count: int = 1) -> None:
        """Record v1 blocks rewritten as v2 (merge upgrades)."""
        self._m_upgraded.inc(count)
