"""IO pacing and SLO-driven maintenance control.

The paper's deployment works because background merges never stall the
writer (§3.3): merge IO is *paced*, not burst at device speed whenever
a merge happens to be due.  *On Performance Stability in LSM-based
Storage Systems* makes the general case - bursty compaction IO, not
steady-state throughput, dominates tail latency.  This module supplies
the two pieces the scheduler uses to keep p99 flat under sustained
load:

* :class:`IORateLimiter` - a token bucket over *bytes per second*,
  shared by every flush and merge writer of a database.  Writers call
  :meth:`IORateLimiter.acquire` once per compressed block, so a merge
  rewriting hundreds of megabytes dribbles them out at the configured
  rate instead of monopolising the disk (and, in this pure-Python
  engine, the GIL) for the whole rewrite.  The clock and sleep are
  injectable so tests run on virtual time.

* :class:`SLOController` - an AIMD controller that watches the insert
  and query latency histograms against a target p99 and tunes two
  knobs each scheduler tick: the merge IO rate (multiplicative
  backoff when the SLO is breached, additive recovery when latencies
  are comfortably under it) and the insert backpressure depth
  (tightened under overload so the memtable backlog - and with it the
  eventual merge debt - stops growing).  This replaces the fixed
  ``max_flush_pending`` queue depth with a closed loop around the
  latency the operator actually cares about.

Both are deliberately dependency-free: plain ``threading`` and
injected callables, no asyncio, usable from the embedded engine and
both server fronts alike.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional, Sequence


class IORateLimiter:
    """A token bucket metering background write IO in bytes/second.

    ``acquire(nbytes)`` debits the bucket and, when it has gone
    negative, sleeps until the deficit is refilled - so a caller may
    always write its block *immediately after* acquire returns, and
    blocks larger than the burst capacity can never deadlock (they
    simply push the bucket further negative and make the *next* caller
    wait).  Aggregate throughput converges on ``rate_bytes_s`` while
    individual calls stay simple and lock-free during the sleep.

    ``rate_bytes_s=None`` (or 0) disables metering entirely; the
    controller flips between rates at runtime via :meth:`set_rate`.
    """

    def __init__(self, rate_bytes_s: Optional[float],
                 burst_bytes: Optional[float] = None,
                 clock: Callable[[], float] = time.monotonic,
                 sleep: Callable[[float], None] = time.sleep,
                 metrics=None):
        self._lock = threading.Lock()
        self._clock = clock
        self._sleep = sleep
        self._rate = float(rate_bytes_s) if rate_bytes_s else None
        self._burst = float(burst_bytes) if burst_bytes else None
        self._tokens = self._burst_capacity()
        self._last = clock()
        self._m_waits = self._m_wait_us = self._m_bytes = None
        self._g_rate = None
        if metrics is not None:
            self._m_waits = metrics.counter("io.throttle_waits")
            self._m_bytes = metrics.counter("io.throttled_bytes")
            self._m_wait_us = metrics.histogram("io.throttle_wait_us")
            self._g_rate = metrics.gauge("io.rate_bytes_s")
            self._g_rate.set(self._rate or 0)

    def _burst_capacity(self) -> float:
        if self._rate is None:
            return 0.0
        if self._burst is not None:
            return self._burst
        # Default burst: one second of rate.  Small enough that a due
        # merge cannot dump minutes of IO at once, large enough that
        # sub-second bursts (a single flush) pass unthrottled.
        return self._rate

    @property
    def rate_bytes_s(self) -> Optional[float]:
        return self._rate

    def set_rate(self, rate_bytes_s: Optional[float]) -> None:
        """Change the rate live (the SLO controller's actuator)."""
        with self._lock:
            self._refill_locked()
            self._rate = float(rate_bytes_s) if rate_bytes_s else None
            # Clamp accumulated credit to the new burst so a long idle
            # period at a high rate cannot fund a burst after backoff.
            self._tokens = min(self._tokens, self._burst_capacity())
        if self._g_rate is not None:
            self._g_rate.set(self._rate or 0)

    def _refill_locked(self) -> None:
        now = self._clock()
        elapsed = now - self._last
        self._last = now
        if self._rate is not None and elapsed > 0:
            self._tokens = min(self._burst_capacity(),
                               self._tokens + elapsed * self._rate)

    def acquire(self, nbytes: int) -> float:
        """Debit ``nbytes`` and sleep off any deficit.

        Returns the seconds actually waited (0.0 when the bucket had
        credit or metering is off).
        """
        if nbytes <= 0:
            return 0.0
        with self._lock:
            if self._rate is None:
                return 0.0
            self._refill_locked()
            self._tokens -= nbytes
            deficit = -self._tokens
            rate = self._rate
        if deficit <= 0:
            return 0.0
        wait = deficit / rate
        if self._m_waits is not None:
            self._m_waits.inc()
            self._m_bytes.inc(nbytes)
            self._m_wait_us.observe(wait * 1e6)
        self._sleep(wait)
        return wait


#: Histograms the controller watches, in embedded and served modes.
#: Only those with samples contribute; the worst p99 wins.
DEFAULT_LATENCY_METRICS = (
    "insert.latency_us",
    "query.latency_us",
    "server.cmd.insert.latency_us",
    "server.cmd.query.latency_us",
)


class SLOController:
    """AIMD control of merge IO rate and insert backpressure depth.

    Each :meth:`step` reads the worst p99 across the watched latency
    histograms and updates a throttle level in ``[0, 1]``:

    * p99 over the SLO → multiplicative increase of the throttle
      (merge rate halves-ish, backpressure tightens);
    * p99 under ``recover_fraction`` of the SLO → additive decrease
      (rate and depth creep back toward their configured maxima).

    The asymmetry is deliberate: back off fast when the tail blows
    up, recover slowly so the system does not oscillate.  Outputs:

    ``merge_rate_bytes_s``
        ``base_rate * (1 - 0.9*throttle)`` - never fully zero, so
        merge debt keeps draining even under sustained overload
        (a starved merger only defers the spike).
    ``flush_pending_limit``
        Interpolated between the policy's ``max_flush_pending`` and
        ``max(1, max//4)``; tightening it makes inserts stall sooner,
        which is the only actuator that stops debt *accumulating*.
    ``merge_budget(base)``
        The per-tick merge budget; 0 only at full throttle, when even
        rate-limited merge IO is too much.
    """

    def __init__(self, metrics, slo_p99_ms: float,
                 limiter: Optional[IORateLimiter] = None,
                 base_rate_bytes_s: Optional[float] = None,
                 max_flush_pending: Optional[int] = 8,
                 latency_metrics: Sequence[str] = DEFAULT_LATENCY_METRICS,
                 recover_fraction: float = 0.7):
        if slo_p99_ms <= 0:
            raise ValueError("slo_p99_ms must be positive")
        self.metrics = metrics
        self.slo_us = slo_p99_ms * 1000.0
        self.limiter = limiter
        self.base_rate = base_rate_bytes_s
        self.max_flush_pending = max_flush_pending
        self.latency_metrics = tuple(latency_metrics)
        self.recover_fraction = recover_fraction
        self.throttle = 0.0
        self._m_breaches = metrics.counter("sched.slo_breaches")
        self._g_throttle = metrics.gauge("sched.throttle_pct")
        self._g_rate = metrics.gauge("sched.merge_rate_bytes_s")
        self._g_limit = metrics.gauge("sched.flush_pending_limit")
        self._g_p99 = metrics.gauge("sched.watched_p99_us")
        self._publish()

    # ------------------------------------------------------------ sensing

    def observed_p99_us(self) -> Optional[float]:
        """Worst p99 across the watched histograms with samples."""
        worst = None
        histograms = getattr(self.metrics, "_histograms", {})
        for name in self.latency_metrics:
            histogram = histograms.get(name)
            if histogram is None or histogram.count == 0:
                continue
            p99 = histogram.summary().get("p99", 0.0)
            if worst is None or p99 > worst:
                worst = p99
        return worst

    # ----------------------------------------------------------- control

    def step(self) -> None:
        """One control iteration; called from the scheduler tick."""
        p99 = self.observed_p99_us()
        if p99 is None:
            return
        self._g_p99.set(int(p99))
        if p99 > self.slo_us:
            self._m_breaches.inc()
            self.throttle = min(1.0, self.throttle * 1.5 + 0.25)
        elif p99 < self.slo_us * self.recover_fraction:
            self.throttle = max(0.0, self.throttle - 0.1)
        self._publish()

    def _publish(self) -> None:
        self._g_throttle.set(int(self.throttle * 100))
        rate = self.merge_rate_bytes_s()
        self._g_rate.set(int(rate) if rate else 0)
        limit = self.flush_pending_limit()
        self._g_limit.set(limit if limit is not None else 0)
        if self.limiter is not None and self.base_rate:
            self.limiter.set_rate(rate)

    # ----------------------------------------------------------- outputs

    def merge_rate_bytes_s(self) -> Optional[float]:
        if not self.base_rate:
            return None
        return max(self.base_rate * 0.1,
                   self.base_rate * (1.0 - 0.9 * self.throttle))

    def flush_pending_limit(self) -> Optional[int]:
        if self.max_flush_pending is None:
            # No configured ceiling: under overload impose one anyway,
            # otherwise backpressure would never engage.
            if self.throttle <= 0:
                return None
            return max(1, int(round(8 * (1.0 - 0.75 * self.throttle))))
        floor = max(1, self.max_flush_pending // 4)
        span = self.max_flush_pending - floor
        return max(floor,
                   int(round(self.max_flush_pending - span * self.throttle)))

    def merge_budget(self, base: int) -> int:
        return 0 if self.throttle >= 1.0 else base
