"""Flush-dependency tracking (paper §3.4.3).

With several in-memory tablets filling at once, a client's inserts may
interleave between tablets, and LittleTable's durability guarantee -
if a row survives a crash, every row inserted before it into the same
table survives too - requires flushing them in a compatible order.

"LittleTable tracks for each table the tablet t that most recently
received an insert.  When it processes an insert to a different tablet
t' != t, it adds a flush dependency t -> t', meaning t must be flushed
before t'.  These dependencies form a directed graph that may have
cycles.  Before flushing a tablet t ... LittleTable first traverses
this dependency graph to find the transitive closure of tablets that
must be flushed first", and flushes the whole group in one atomic
descriptor update.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set


class FlushDependencies:
    """The per-table dependency graph over in-memory tablet ids.

    Locking discipline: not internally synchronized.  Every call runs
    under the owning table's state lock - ``record_insert`` from the
    insert path, ``flush_group`` during flush selection, and
    ``mark_flushed`` during the post-flush swap.  The off-lock flush
    write relies on one structural property: edges only ever point
    *from* the memtable that received the newer insert *to* older
    ones, and a read-only memtable can never receive an insert, so no
    new edge can appear that would enlarge a frozen flush group.
    """

    def __init__(self) -> None:
        # must_flush_first[t] = set of tablets that must flush before t.
        self._must_flush_first: Dict[int, Set[int]] = {}
        self._last_insert_target: Optional[int] = None

    def record_insert(self, memtable_id: int) -> None:
        """Note that ``memtable_id`` just received an insert."""
        last = self._last_insert_target
        if last is not None and last != memtable_id:
            self._must_flush_first.setdefault(memtable_id, set()).add(last)
        self._last_insert_target = memtable_id

    def flush_group(self, memtable_id: int) -> List[int]:
        """All tablets that must be flushed along with ``memtable_id``.

        Returns the transitive closure (which handles cycles), with the
        requested tablet last and dependencies in discovery order.  The
        caller flushes the whole group in one atomic descriptor update,
        so intra-group order does not affect durability.
        """
        closure: List[int] = []
        seen: Set[int] = set()
        stack = [memtable_id]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            for dependency in sorted(self._must_flush_first.get(current, ())):
                if dependency not in seen:
                    stack.append(dependency)
            closure.append(current)
        # Present dependencies before the requested tablet.
        closure.remove(memtable_id)
        closure.append(memtable_id)
        return closure

    def mark_flushed(self, memtable_ids: List[int]) -> None:
        """Drop flushed tablets from the graph."""
        flushed = set(memtable_ids)
        for flushed_id in flushed:
            self._must_flush_first.pop(flushed_id, None)
        for dependencies in self._must_flush_first.values():
            dependencies -= flushed
        if self._last_insert_target in flushed:
            self._last_insert_target = None

    def dependencies_of(self, memtable_id: int) -> Set[int]:
        """Direct dependencies (for tests and introspection)."""
        return set(self._must_flush_first.get(memtable_id, ()))

    @property
    def edge_count(self) -> int:
        """Total direct dependencies (observability: how entangled the
        unflushed memtables are; big groups mean big atomic flushes)."""
        return sum(len(deps) for deps in self._must_flush_first.values())
