"""In-memory tablets.

Paper §3.2: "It places newly inserted rows into an in-memory tablet,
implemented as a balanced binary tree.  When an in-memory tablet
reaches a configurable maximum size or age, LittleTable marks it as
read-only, adds it to a list of tablets to flush to disk, and allocates
another in-memory tablet to receive new rows."

§3.4.3 adds that several in-memory tablets fill at once, one per time
period, to keep tablets' timespans mostly disjoint when clients insert
rows with timestamps other than "now".

Each memtable remembers, alongside the row, its encoded form, so the
flush path streams pre-encoded bytes straight into blocks and the size
accounting matches on-disk bytes (the 16 MB flush threshold is about
disk write efficiency, §3.3).

Concurrency: a memtable has no lock of its own.  Inserts are
serialized by the owning table's state lock; scans may run off-lock
concurrently with an insert because the skiplist links a new node's
forward pointers before splicing it into its predecessors, so a
concurrent reader sees "some, all, or none" of an in-flight batch
(exactly the paper's §3.1 read semantics) but never a broken chain.
Once a memtable is marked read-only (flush-pending) it is immutable:
the off-lock flush writer and any number of readers can walk it
freely.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple

from ..util.skiplist import SkipList
from .encoding import RowCodec
from .periods import Period
from .row import KeyRange
from .schema import Schema


class MemTable:
    """One filling (or flush-pending) in-memory tablet."""

    def __init__(self, memtable_id: int, schema: Schema, period: Period,
                 row_codec: Optional[RowCodec] = None):
        self.memtable_id = memtable_id
        self.schema = schema
        self.period = period
        self.rows = SkipList(seed=0xBADC0DE ^ memtable_id)
        self.size_bytes = 0
        self.min_ts: Optional[int] = None
        self.max_ts: Optional[int] = None
        self.first_insert_at: Optional[int] = None
        self.read_only = False
        self._row_codec = row_codec or RowCodec(schema)

    def __len__(self) -> int:
        return len(self.rows)

    @property
    def empty(self) -> bool:
        return len(self.rows) == 0

    def insert(self, row: Tuple[Any, ...], now: int) -> bool:
        """Add a validated row.  Returns False on duplicate key."""
        if self.read_only:
            raise RuntimeError("insert into a read-only memtable")
        key = self.schema.key_of(row)
        encoded = self._row_codec.encode_row(row)
        if not self.rows.insert(key, (row, encoded)):
            return False
        self.size_bytes += len(encoded)
        ts = self.schema.ts_of(row)
        if self.min_ts is None or ts < self.min_ts:
            self.min_ts = ts
        if self.max_ts is None or ts > self.max_ts:
            self.max_ts = ts
        if self.first_insert_at is None:
            self.first_insert_at = now
        return True

    def contains_key(self, key: Tuple[Any, ...]) -> bool:
        return key in self.rows

    def mark_read_only(self) -> None:
        """Freeze the memtable ahead of flushing (§3.2)."""
        self.read_only = True

    def age_micros(self, now: int) -> int:
        """Micros since the first insert (0 if empty)."""
        if self.first_insert_at is None:
            return 0
        return now - self.first_insert_at

    # ----------------------------------------------------------- reading

    def sorted_rows(self) -> Iterator[Tuple[Any, ...]]:
        """All rows in ascending key order (used by flush)."""
        for _key, (row, _encoded) in self.rows.items():
            yield row

    def sorted_encoded(self) -> Iterator[Tuple[Tuple[Any, ...], bytes]]:
        """All (row, encoded) pairs in ascending key order."""
        for _key, pair in self.rows.items():
            yield pair

    def last_key(self) -> Optional[Tuple[Any, ...]]:
        """The largest key currently held, or None."""
        return self.rows.last_key()

    def scan(self, key_range: KeyRange, descending: bool = False
             ) -> Iterator[Tuple[Any, ...]]:
        """Yield rows within the key range, in key order.

        Descending scans materialize the matching run (the skip list is
        singly linked); memtables are bounded by the flush size, so
        this is at most a few MB.
        """
        seek = key_range.seek_min()
        if seek is None:
            source = self.rows.items()
        else:
            source = self.rows.items_from(seek)
        if not descending:
            for key, (row, _encoded) in source:
                if key_range.before_range(key):
                    continue
                if key_range.after_range(key):
                    return
                yield row
            return
        matched: List[Tuple[Any, ...]] = []
        for key, (row, _encoded) in source:
            if key_range.before_range(key):
                continue
            if key_range.after_range(key):
                break
            matched.append(row)
        yield from reversed(matched)
