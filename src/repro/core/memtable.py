"""In-memory tablets.

Paper §3.2: "It places newly inserted rows into an in-memory tablet,
implemented as a balanced binary tree.  When an in-memory tablet
reaches a configurable maximum size or age, LittleTable marks it as
read-only, adds it to a list of tablets to flush to disk, and allocates
another in-memory tablet to receive new rows."

§3.4.3 adds that several in-memory tablets fill at once, one per time
period, to keep tablets' timespans mostly disjoint when clients insert
rows with timestamps other than "now".

Each memtable remembers, alongside the row, its encoded *size* (not the
bytes): size accounting still matches on-disk v1 bytes (the 16 MB
flush threshold is about disk write efficiency, §3.3), but rows are
not serialized until flush, which batch-encodes whole sorted runs
through the schema-compiled codec (``core/codec.py``).

Concurrency: a memtable has no lock of its own.  Inserts are
serialized by the owning table's state lock; scans may run off-lock
concurrently with an insert because the skiplist links a new node's
forward pointers before splicing it into its predecessors, so a
concurrent reader sees "some, all, or none" of an in-flight batch
(exactly the paper's §3.1 read semantics) but never a broken chain.
Once a memtable is marked read-only (flush-pending) it is immutable:
the off-lock flush writer and any number of readers can walk it
freely.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple

from ..util.skiplist import SkipList
from .codec import compiled_ops
from .encoding import RowCodec
from .periods import Period
from .row import KeyRange
from .schema import Schema


class MemTable:
    """One filling (or flush-pending) in-memory tablet."""

    def __init__(self, memtable_id: int, schema: Schema, period: Period,
                 row_codec: Optional[RowCodec] = None):
        self.memtable_id = memtable_id
        self.schema = schema
        self.period = period
        self.rows = SkipList(seed=0xBADC0DE ^ memtable_id)
        self.size_bytes = 0
        self.min_ts: Optional[int] = None
        self.max_ts: Optional[int] = None
        self.first_insert_at: Optional[int] = None
        self.read_only = False
        self._ops = compiled_ops(schema)
        self._max_key: Optional[Tuple[Any, ...]] = None
        # WAL bookkeeping (durability tiers): the LSN range of the log
        # records whose rows live here.  None until the first logged
        # batch touches this memtable; flushing every memtable at or
        # below an LSN lets the table advance the WAL low-water mark
        # past it and recycle covered segments.
        self.min_wal_lsn: Optional[int] = None
        self.max_wal_lsn: Optional[int] = None

    def note_wal_lsn(self, lsn: int) -> None:
        """Record that log record ``lsn`` put rows into this memtable."""
        if self.min_wal_lsn is None or lsn < self.min_wal_lsn:
            self.min_wal_lsn = lsn
        if self.max_wal_lsn is None or lsn > self.max_wal_lsn:
            self.max_wal_lsn = lsn

    def __len__(self) -> int:
        return len(self.rows)

    @property
    def empty(self) -> bool:
        return len(self.rows) == 0

    def insert(self, row: Tuple[Any, ...], now: int) -> bool:
        """Add a validated row.  Returns False on duplicate key."""
        ops = self._ops
        return self.insert_sized(ops.key_of(row), row, ops.size_of(row),
                                 now)

    def insert_sized(self, key: Tuple[Any, ...], row: Tuple[Any, ...],
                     size: int, now: int) -> bool:
        """Fast-path insert: key and encoded size already computed.

        The table's batch insert path validates and sizes each row once
        through the compiled codec and hands the results straight here,
        so nothing on the insert path walks the schema twice.
        """
        if self.read_only:
            raise RuntimeError("insert into a read-only memtable")
        if not self.rows.insert(key, (row, size)):
            return False
        self.size_bytes += size
        ts = row[self.schema.ts_index]
        if self.min_ts is None or ts < self.min_ts:
            self.min_ts = ts
        if self.max_ts is None or ts > self.max_ts:
            self.max_ts = ts
        if self._max_key is None or key > self._max_key:
            self._max_key = key
        if self.first_insert_at is None:
            self.first_insert_at = now
        return True

    def contains_key(self, key: Tuple[Any, ...]) -> bool:
        return key in self.rows

    def mark_read_only(self) -> None:
        """Freeze the memtable ahead of flushing (§3.2)."""
        self.read_only = True

    def age_micros(self, now: int) -> int:
        """Micros since the first insert (0 if empty)."""
        if self.first_insert_at is None:
            return 0
        return now - self.first_insert_at

    # ----------------------------------------------------------- reading

    def sorted_rows(self) -> Iterator[Tuple[Any, ...]]:
        """All rows in ascending key order (used by flush)."""
        for _key, (row, _size) in self.rows.items():
            yield row

    def sorted_encoded(self) -> Iterator[Tuple[Tuple[Any, ...], bytes]]:
        """All (row, v1-encoded bytes) pairs in ascending key order.

        Encoding happens lazily here; the hot flush path uses
        :meth:`sorted_sized` and batch-encodes whole blocks instead.
        """
        encode = self._ops.encode_row_v1
        for _key, (row, _size) in self.rows.items():
            yield row, encode(row)

    def sorted_sized(self) -> Iterator[Tuple[Tuple[Any, ...], int]]:
        """All (row, encoded size) pairs in ascending key order."""
        for _key, pair in self.rows.items():
            yield pair

    def last_key(self) -> Optional[Tuple[Any, ...]]:
        """The largest key currently held, or None (O(1))."""
        return self._max_key

    def scan(self, key_range: KeyRange, descending: bool = False
             ) -> Iterator[Tuple[Any, ...]]:
        """Yield rows within the key range, in key order.

        Descending scans materialize the matching run (the skip list is
        singly linked); memtables are bounded by the flush size, so
        this is at most a few MB.
        """
        seek = key_range.seek_min()
        if seek is None:
            source = self.rows.items()
        else:
            source = self.rows.items_from(seek)
        if not descending:
            for key, (row, _size) in source:
                if key_range.before_range(key):
                    continue
                if key_range.after_range(key):
                    return
                yield row
            return
        matched: List[Tuple[Any, ...]] = []
        for key, (row, _size) in source:
            if key_range.before_range(key):
                continue
            if key_range.after_range(key):
                break
            matched.append(row)
        yield from reversed(matched)
