"""Durability tiers: the policy object behind the WAL and replication.

The paper ships exactly one durability story - *prefix durability*
(§3): inserts are acknowledged from memory, a crash may lose the most
recent writes, and the atomic descriptor rename guarantees the
surviving prefix is never corrupt.  This module turns that constant
into a dial.  A :class:`DurabilityPolicy` selects one of three tiers:

* ``none`` - the paper-faithful default.  No WAL file is ever created;
  behavior is byte-identical to an engine without this module.
* ``wal`` - every acknowledged insert is first appended to a
  segmented, CRC32C-framed, LSN-stamped write-ahead log
  (:mod:`repro.core.wal`) with group commit; replay at open restores
  rows a crash would otherwise lose.
* ``replicated`` - ``wal`` plus eligibility for warm-standby
  streaming: sealed segments and tablet manifests are served to a
  read-only follower (:mod:`repro.net.replica`).

One policy object travels the whole stack: ``LittleTable(durability=)``
sets the database default, ``create_table(durability=)`` overrides per
table (persisted in the table descriptor), ``ClientConfig.durability``
carries it over the wire, and ``ltdb serve --durability`` sets it for
a server.  The loose durability-adjacent :class:`EngineConfig` knobs
(``startup_scrub``, ``checksums``) fold in here as optional overrides,
mirroring the ClientConfig consolidation: ``None`` means "inherit the
engine config"; the legacy keyword arguments on ``LittleTable`` keep
working behind ``DeprecationWarning`` shims.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Any, Dict, FrozenSet, Optional

#: Valid values for :attr:`DurabilityPolicy.tier`.
TIERS = ("none", "wal", "replicated")

_MIB = 1024 * 1024


class _Unset:
    """Sentinel default distinguishing "not passed" from an explicit
    value, so ``DurabilityPolicy(tier="none")`` can override a
    database default of ``wal`` back down (the resolved default value
    alone cannot carry that intent)."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "<unset>"


_UNSET = _Unset()

#: The resolved value each field takes when not passed explicitly.
_DEFAULTS: Dict[str, Any] = {
    "tier": "none",
    "group_commit_ms": 2.0,
    "wal_segment_bytes": 4 * _MIB,
    "follow_addr": None,
    "startup_scrub": None,
    "checksums": None,
}


@dataclass(frozen=True)
class DurabilityPolicy:
    """How hard a table tries not to lose acknowledged writes.

    Frozen: hand the same instance to as many tables, databases, and
    clients as you like.  Use :func:`dataclasses.replace` to derive
    variants.

    Every field defaults to an *unset* sentinel resolved to its real
    default in ``__post_init__``; the set of explicitly passed fields
    is kept so :meth:`merged_with` can tell "unset" apart from
    "explicitly set to the default value".  Reading a field always
    sees the resolved value, never the sentinel.
    """

    #: One of :data:`TIERS`.  ``none`` (the default) keeps the paper's
    #: prefix durability and guarantees no WAL file is ever created.
    tier: str = _UNSET  # type: ignore[assignment]
    #: Group-commit window (default 2.0 ms): an acknowledged insert
    #: waits at most this long for the leader's batched append before
    #: its own fsync.  0 disables batching (every insert appends
    #: immediately).
    group_commit_ms: float = _UNSET  # type: ignore[assignment]
    #: Roll the active WAL segment once it exceeds this size (default
    #: 4 MiB); sealed segments are what replication streams and
    #: recycling reclaims.
    wal_segment_bytes: int = _UNSET  # type: ignore[assignment]
    #: ``host:port`` of a primary to follow (replica side only); set
    #: by ``ltdb serve --follow``.  None (the default) for a primary.
    follow_addr: Optional[str] = _UNSET  # type: ignore[assignment]
    #: Folded-in legacy knobs.  ``None`` (the default) inherits the
    #: corresponding :class:`~repro.core.config.EngineConfig` field; a
    #: bool overrides it.
    startup_scrub: Optional[bool] = _UNSET  # type: ignore[assignment]
    checksums: Optional[bool] = _UNSET  # type: ignore[assignment]

    def __post_init__(self) -> None:
        explicit = frozenset(name for name in _DEFAULTS
                             if getattr(self, name) is not _UNSET)
        object.__setattr__(self, "_explicit", explicit)
        for name in _DEFAULTS:
            if name not in explicit:
                object.__setattr__(self, name, _DEFAULTS[name])

    @property
    def explicit_fields(self) -> FrozenSet[str]:
        """Names of fields passed explicitly at construction (a policy
        derived via :func:`dataclasses.replace` counts every field as
        explicit - it is fully resolved)."""
        return self._explicit  # type: ignore[attr-defined]

    def validate(self) -> None:
        """Raise ValueError on nonsensical settings."""
        if self.tier not in TIERS:
            raise ValueError(
                f"unknown durability tier {self.tier!r} (want one of {TIERS})")
        if self.group_commit_ms < 0:
            raise ValueError("group_commit_ms must be >= 0")
        if self.wal_segment_bytes <= 0:
            raise ValueError("wal_segment_bytes must be positive")
        if self.follow_addr is not None:
            host, sep, port = str(self.follow_addr).rpartition(":")
            if not sep or not port.isdigit():
                raise ValueError(
                    f"follow_addr must be 'host:port', got {self.follow_addr!r}")

    @property
    def wal_enabled(self) -> bool:
        """True when inserts must hit the log before acknowledgment."""
        return self.tier in ("wal", "replicated")

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-safe dict for descriptors and the wire protocol.

        Only explicitly set fields are emitted, so an all-default
        policy serializes to ``{}`` (descriptors written before this
        module existed round-trip unchanged) while an explicit
        ``tier="none"`` survives the trip and still overrides a
        database default at merge time.
        """
        explicit = self.explicit_fields
        return {spec.name: getattr(self, spec.name)
                for spec in fields(self) if spec.name in explicit}

    @classmethod
    def from_dict(cls, data: Optional[Dict[str, Any]]) -> "DurabilityPolicy":
        """Inverse of :meth:`to_dict`; unknown keys are ignored so old
        engines can open descriptors written by newer ones."""
        if not data:
            return cls()
        known = {spec.name for spec in fields(cls)}
        policy = cls(**{key: value for key, value in data.items()
                        if key in known})
        policy.validate()
        return policy

    def merged_with(self, override: Optional["DurabilityPolicy"]
                    ) -> "DurabilityPolicy":
        """This policy with *override*'s explicitly set fields applied
        - how a per-table policy layers over the database default.
        Explicit beats non-default: ``DurabilityPolicy(tier="none")``
        layered over a ``wal`` default yields ``none``."""
        if override is None:
            return self
        explicit = override.explicit_fields
        changes = {spec.name: getattr(override, spec.name)
                   for spec in fields(override) if spec.name in explicit}
        return replace(self, **changes) if changes else self


#: The paper-faithful default shared by every entry point.
DEFAULT_DURABILITY = DurabilityPolicy()
