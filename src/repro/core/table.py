"""The table: LittleTable's unit of storage.

A table is "a union of sub-tables, called tablets, of two types"
(§3.2): filling/flush-pending in-memory tablets and immutable on-disk
tablets.  This module wires together the memtables, the on-disk tablet
readers, the flush-dependency graph, the merge policy, primary-key
uniqueness enforcement, TTL aging, and the query paths.

Threading (the non-blocking maintenance engine)
-----------------------------------------------

The paper's background merger runs continuously without stalling the
writer or the dashboard read path (§3.3, §3.4.4).  The engine mirrors
that with a two-lock design per table:

* :attr:`Table._maintenance_lock` (acquired FIRST) serializes the
  tablet-set mutators among themselves: flush, merge, TTL expiry,
  bulk delete, cold migration, and schema changes.  It is held for
  the *duration* of the work, which is why that work must never be
  done under the state lock.
* :attr:`Table.lock` (the state lock, acquired SECOND) protects the
  mutable in-memory state: the memtable maps, the flush-dependency
  graph, and the descriptor binding.  It is only ever held briefly -
  an insert batch, a snapshot capture, or an O(1) swap.

The on-disk tablet list is **copy-on-write**: ``descriptor.tablets``
is never mutated in place; every mutator builds a new list off-lock
and publishes it with a single assignment under the state lock.  A
reader therefore snapshots ``(generation, tablets, memtables)`` in one
brief lock hold and scans entirely off-lock against immutable state.

Because scans run off-lock, a merge or TTL reclaim cannot delete its
source files immediately - an in-flight scan may still be reading
them.  Removed tablets enter a **deferred-delete queue** tagged with a
read epoch; the files are reclaimed only once every reader that could
have seen the old tablet list has finished (epoch-based reclamation,
see :meth:`Table._defer_delete_locked`).

Insert backpressure: when a :class:`~repro.core.scheduler.`
``MaintenanceScheduler`` is running it arms a flush-pending threshold;
an insert batch finding that many memtables awaiting flush waits on
the state lock's condition (bounded by the policy's wait budget) for
the flushers to drain, observable via ``insert.backpressure_stalls``.
"""

from __future__ import annotations

import bisect
import struct
import threading
import time
from dataclasses import dataclass
from typing import (Any, Callable, Dict, Iterator, List, Optional, Sequence,
                    Tuple)

from ..disk.storage import StorageError
from ..disk.vfs import SimulatedDisk
from ..obs.metrics import MetricsRegistry
from ..obs.trace import NULL_TRACER
from ..util.clock import Clock
from .block import decompress
from .codec import BLOCK_FORMAT_V1, BLOCK_FORMAT_V2, SchemaCodec
from .config import EngineConfig
from .cursor import execute_query
from .descriptor import TableDescriptor
from .durability import DEFAULT_DURABILITY, DurabilityPolicy
from .encoding import RowCodec
from .errors import (CorruptTabletError, DuplicateKeyError, QueryError,
                     SchemaError)
from .flushdeps import FlushDependencies
from .maintenance import TableMaintenanceReport
from .memtable import MemTable
from .merge import MergePlan, choose_merge, is_quiescent
from .periods import Period, period_for
from .readcache import (LatestRowCache, ReadCache, TabletPruneIndex,
                        _zone_map_excludes)
from .row import ASCENDING, DESCENDING, KeyRange, Query, QueryStats, TimeRange
from .schema import Column, Schema
from .tablet import TabletMeta, TabletReader, TabletSink, TabletWriter
from .vector import (AggregatePartials, AggregateSpec, accumulate,
                     accumulate_rows, key_bounds, residual_filter,
                     resolve_time_bounds, time_filter)
from .wal import WalReplayReport, WriteAheadLog


@dataclass
class QueryResult:
    """What one query command returns (§3.5).

    ``more_available`` is set when the server's own row limit stopped
    the scan; the client adaptor re-submits with the start bound moved
    past ``rows[-1]``'s key to retrieve the rest.
    """

    rows: List[Tuple[Any, ...]]
    more_available: bool
    stats: QueryStats


@dataclass
class TableCounters:
    """Lifetime counters used by benchmarks and production metrics.

    Plain ints: exact under the single-threaded test workloads; under
    concurrent readers they may drift by a few counts (monitoring
    data, not accounting data).
    """

    rows_inserted: int = 0
    rows_scanned: int = 0
    rows_returned: int = 0
    queries: int = 0
    bytes_flushed: int = 0
    bytes_merge_written: int = 0
    rows_merge_written: int = 0
    merges: int = 0
    flushes: int = 0
    tablets_expired: int = 0


class _MergeSource:
    """Streaming cursor over one merge input tablet.

    At any moment the source is either *decoded* - ``rows``/``keys``
    hold the remainder of the current block, ``pos`` the read point -
    or sitting at a *block boundary* (``rows is None``).  ``lo_bound``
    is the last key already consumed, so every remaining key is known
    to be strictly greater; that is what lets whole untouched blocks
    from other sources pass through without being decoded.
    """

    __slots__ = ("reader", "entries", "index", "rows", "keys", "pos",
                 "lo_bound", "_entry_last")

    def __init__(self, reader: TabletReader):
        self.reader = reader
        self.entries = reader.block_entries()
        self.index = 0
        self.rows: Optional[List[Tuple[Any, ...]]] = None
        self.keys: Optional[List[Tuple[Any, ...]]] = None
        self.pos = 0
        self.lo_bound: Optional[Tuple[Any, ...]] = None
        self._entry_last: Optional[Tuple[Any, ...]] = None

    @property
    def exhausted(self) -> bool:
        return self.rows is None and self.index >= len(self.entries)

    def decode_next(self) -> None:
        """Decode the block at the boundary and step past it."""
        entry = self.entries[self.index]
        payload = self.reader.read_block_payload(self.index)
        self.rows, self.keys = self.reader.decode_payload(
            self.index, payload)
        self.pos = 0
        self._entry_last = entry.last_key
        self.index += 1

    def skip_block(self) -> None:
        """Step past the boundary block (it was passed through)."""
        self.lo_bound = self.entries[self.index].last_key
        self.index += 1

    def finish_pending(self) -> None:
        """Drop the fully-consumed decoded block."""
        self.rows = None
        self.keys = None
        self.lo_bound = self._entry_last


class Table:
    """One LittleTable table."""

    def __init__(self, disk: SimulatedDisk, descriptor: TableDescriptor,
                 config: EngineConfig, clock: Clock,
                 cold_disk: Optional[SimulatedDisk] = None,
                 metrics: Optional[MetricsRegistry] = None, tracer=None,
                 read_cache: Optional[ReadCache] = None,
                 durability: Optional[DurabilityPolicy] = None):
        self.disk = disk
        self.cold_disk = cold_disk
        self.descriptor = descriptor
        self.config = config
        self.clock = clock
        # Durability tier (durability.py).  ``none`` keeps the paper's
        # prefix durability and never touches a log file; ``wal`` and
        # ``replicated`` attach a per-table write-ahead log whose
        # append-and-fsync gates every insert acknowledgment.
        self.durability = (durability if durability is not None
                           else DEFAULT_DURABILITY)
        self.wal: Optional[WriteAheadLog] = (
            WriteAheadLog(disk, descriptor.name, self.durability,
                          metrics=metrics)
            if self.durability.wal_enabled else None)
        self.last_wal_replay: Optional[WalReplayReport] = None
        # Lock hierarchy (acquire downwards, never upwards):
        #   _maintenance_lock  ->  lock (state)  ->  _reader_lock
        self._maintenance_lock = threading.RLock()
        self.lock = threading.RLock()
        self._reader_lock = threading.Lock()
        # Inserts wait here when flush-pending memtables pile up past
        # the armed backpressure threshold; flushes notify.
        self._flush_cond = threading.Condition(self.lock)
        self._backpressure_limit: Optional[int] = None
        self._backpressure_wait_s = 5.0
        # WAL-tier schema changes close this gate while they flush and
        # swap: an insert admitted in that window would log a WAL
        # record at the old schema version that replay cannot decode.
        # ``none``-tier tables never set it (paper semantics intact).
        self._ddl_gate = False
        self.counters = TableCounters()
        # Observability: a database passes its shared registry/tracer;
        # a standalone table gets a private registry so the counters
        # are still inspectable.  Hot-path counters are cached here so
        # the insert loop never does a registry lookup.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        m = self.metrics
        self._m_rows_inserted = m.counter("insert.rows")
        self._m_insert_batches = m.counter("insert.batches")
        self._m_uniq_fast_ts = m.counter("insert.uniqueness.fast_path_ts")
        self._m_uniq_fast_max = m.counter(
            "insert.uniqueness.fast_path_period_max")
        self._m_uniq_slow = m.counter("insert.uniqueness.slow_path")
        self._m_queries = m.counter("query.count")
        self._m_rows_scanned = m.counter("query.rows_scanned")
        self._m_rows_returned = m.counter("query.rows_returned")
        self._m_tablets_pruned = m.counter("query.tablets_pruned")
        self._m_push_queries = m.counter("query.pushdown.queries")
        self._m_push_blocks = m.counter("query.pushdown.blocks_columnar")
        self._m_push_blocks_fallback = m.counter(
            "query.pushdown.blocks_fallback")
        self._m_push_rows_columnar = m.counter(
            "query.pushdown.rows_columnar")
        self._m_push_rows_fallback = m.counter(
            "query.pushdown.rows_fallback")
        self._m_push_rows_filtered = m.counter(
            "query.pushdown.rows_kernel_filtered")
        self._m_generation_bumps = m.counter("readcache.generation")
        self._m_backpressure = m.counter("insert.backpressure_stalls")
        self._h_backpressure_wait = m.histogram("insert.backpressure_wait_us")
        # End-to-end latency per insert batch / query call: what the
        # SLO controller watches in embedded mode (the served mode
        # adds server.cmd.*.latency_us on top).
        self._h_insert_latency = m.histogram("insert.latency_us")
        self._h_query_latency = m.histogram("query.latency_us")
        # Shared token bucket pacing this table's flush/merge writes
        # (set by the database when io_rate_limit_bytes_s is
        # configured, or injected directly; None = unmetered).
        self.io_limiter = None
        self._h_swap_hold = m.histogram("maintenance.swap_lock_hold_us")
        self._m_deferred = m.counter("maintenance.deferred_deletes")
        self._m_quarantined = m.counter("storage.quarantined_tablets")
        # Set by the database: receives storage-level exceptions from
        # flush/merge/TTL so persistent ENOSPC/EIO can flip the engine
        # to read-only mode.
        self._fault_listener: Optional[Callable[[BaseException], None]] = None
        self._row_codec = RowCodec(descriptor.schema)
        # The schema-compiled batch codec: validates, sizes, keys, and
        # block-encodes rows without per-value dispatch (core/codec.py).
        self._codec = SchemaCodec(descriptor.schema, self.metrics)
        # Read-path caches: a database passes its shared block/footer
        # cache (one budget across all tables); a standalone table
        # builds a private one from its config.
        self._read_cache = (read_cache if read_cache is not None
                            else ReadCache(config.read_cache_bytes,
                                           metrics=self.metrics))
        # tablet_id -> process-unique cache uid for the live file; a
        # replacement tablet (merge, rewrite, migration) gets a fresh
        # uid so old cache entries can never alias it.
        self._tablet_uids: Dict[int, int] = {}
        self._prune_index = TabletPruneIndex()
        self._latest_cache = LatestRowCache(config.latest_cache_entries,
                                            metrics=self.metrics)
        # Bumped by every mutation that can change a latest() answer;
        # cached entries from older generations are never served.
        self._cache_generation = 0
        # Bumped per insert batch; latest() skips storing an answer
        # computed from a snapshot that an insert has since overtaken.
        self._insert_seq = 0
        # Filling memtables, one per (period.start, period.level).
        self._filling: Dict[Tuple[int, int], MemTable] = {}
        # All unflushed memtables (filling + read-only awaiting flush).
        self._unflushed: Dict[int, MemTable] = {}
        self._flush_pending: List[int] = []
        self._deps = FlushDependencies()
        self._next_memtable_id = 1
        self._readers: Dict[int, TabletReader] = {}
        # Epoch-based deferred reclamation: _read_epoch advances on
        # every tablet-set swap that removes tablets; each removal is
        # queued with the pre-swap epoch and its file is deleted only
        # once no active reader entered at or before that epoch.
        self._read_epoch = 0
        self._active_reads: Dict[int, int] = {}
        self._pending_deletes: List[Tuple[int, SimulatedDisk, TabletMeta]] = []
        # (period.start, level) -> (descriptor generation, max key).
        self._period_max_cache: Dict[Tuple[int, int], Tuple[int, Any]] = {}
        self._max_ts_ever: Optional[int] = max(
            (t.max_ts for t in descriptor.tablets), default=None
        )

    # ------------------------------------------------------------ basics

    @property
    def name(self) -> str:
        return self.descriptor.name

    @property
    def schema(self) -> Schema:
        return self.descriptor.schema

    @property
    def ttl_micros(self) -> Optional[int]:
        return self.descriptor.ttl_micros

    @property
    def on_disk_tablets(self) -> List[TabletMeta]:
        # The tablet list is copy-on-write: reading the binding once
        # yields an immutable snapshot, no lock needed.
        return list(self.descriptor.tablets)

    @property
    def unflushed_memtable_count(self) -> int:
        return len(self._unflushed)

    @property
    def flush_pending_count(self) -> int:
        return len(self._flush_pending)

    def row_count_estimate(self) -> int:
        """Rows on disk plus rows in memory (expired rows included)."""
        tablets = self.descriptor.tablets
        disk_rows = sum(t.row_count for t in tablets)
        return disk_rows + sum(len(m) for m in list(self._unflushed.values()))

    def size_bytes_on_disk(self) -> int:
        return sum(t.size_bytes for t in self.descriptor.tablets)

    def stats_summary(self) -> Dict[str, Any]:
        """Operator-facing snapshot of the table's shape and activity.

        Everything an operator needs to recognize the paper's failure
        modes at a glance: tablet counts per period (seek storms,
        §3.4.1), write amplification (merge pathologies), and the
        Figure 9 scan ratio.
        """
        now = self.clock.now()
        tablets = self.descriptor.tablets
        per_period: Dict[Tuple[int, int], int] = {}
        tiers: Dict[str, int] = {}
        for meta in tablets:
            period = period_for(meta.min_ts, now,
                                self.config.time_partitioning)
            bin_key = (period.start, int(period.level))
            per_period[bin_key] = per_period.get(bin_key, 0) + 1
            tiers[meta.tier] = tiers.get(meta.tier, 0) + 1
        counters = self.counters
        flushed = counters.bytes_flushed
        amplification = (
            (flushed + counters.bytes_merge_written) / flushed
            if flushed else 1.0
        )
        scanned = counters.rows_scanned
        returned = counters.rows_returned
        return {
            "name": self.name,
            "rows": self.row_count_estimate(),
            "bytes_on_disk": sum(t.size_bytes for t in tablets),
            "tablets": len(tablets),
            "tablets_by_tier": tiers,
            "max_tablets_per_period": max(per_period.values(), default=0),
            "unflushed_memtables": self.unflushed_memtable_count,
            "flush_pending": len(self._flush_pending),
            "deferred_deletes": len(self._pending_deletes),
            "write_amplification": round(amplification, 2),
            "scan_ratio": round(scanned / returned, 2) if returned else None,
            "ttl_micros": self.descriptor.ttl_micros,
            "schema_version": self.schema.version,
            "durability_tier": self.durability.tier,
            "cache_generation": self._cache_generation,
            "latest_cache_entries": len(self._latest_cache),
        }

    def evict_reader_cache(self) -> None:
        """Drop in-memory read state, as a server restart would (§3.5:
        footers are reloaded "into memory on demand after a restart").
        Benchmarks call this to measure cold-cache behaviour; the
        table's block/footer cache entries and the latest-row cache go
        with it, since none would survive a real restart."""
        with self.lock:
            self._period_max_cache.clear()
            self._latest_cache.clear()
            with self._reader_lock:
                self._readers.clear()
                uids = list(self._tablet_uids.values())
                self._tablet_uids.clear()
        self._read_cache.invalidate_tablets(uids)

    def _disk_for(self, meta: TabletMeta) -> SimulatedDisk:
        """The device holding a tablet's file (hot disk or cold tier)."""
        if meta.tier == "cold":
            if self.cold_disk is None:
                raise CorruptTabletError(
                    f"tablet {meta.filename!r} is on the cold tier but no "
                    f"cold store is attached")
            return self.cold_disk
        return self.disk

    def _drop_reader_state(self, tablet_id: int) -> None:
        with self._reader_lock:
            self._readers.pop(tablet_id, None)
            uid = self._tablet_uids.pop(tablet_id, None)
        if uid is not None:
            self._read_cache.invalidate_tablet(uid)

    def _delete_tablet_file(self, meta: TabletMeta) -> None:
        """Immediately delete a tablet's file (drop-table path; the
        maintenance paths use :meth:`_defer_delete_locked` instead so
        in-flight readers keep their snapshot)."""
        disk = self._disk_for(meta)
        if disk.exists(meta.filename):
            disk.delete(meta.filename)
        self._drop_reader_state(meta.tablet_id)

    def quarantine_tablet(self, meta: TabletMeta, reason: str) -> bool:
        """Pull a corrupt tablet out of the live set.

        The descriptor drops it (atomic replace, same swap discipline
        as every other tablet-set mutation) and its file moves into
        ``quarantine/`` on the same device - never deleted, so an
        operator can inspect or recover it.  Returns False if the
        tablet was already gone (a concurrent merge or quarantine got
        there first).
        """
        with self.lock:
            current = self.descriptor.tablets
            if not any(t.tablet_id == meta.tablet_id for t in current):
                return False
            self.descriptor.tablets = [
                t for t in current if t.tablet_id != meta.tablet_id
            ]
            self.descriptor.save(self.disk)
            self._bump_cache_generation()
        disk = self._disk_for(meta)
        destination = f"quarantine/{meta.filename}"
        try:
            if disk.exists(meta.filename):
                if disk.exists(destination):
                    disk.delete(destination)
                disk.rename(meta.filename, destination)
        except StorageError:
            pass  # quarantining must not fail the caller further
        self._drop_reader_state(meta.tablet_id)
        self._m_quarantined.inc()
        with self.tracer.span("quarantine", table=self.name,
                              tablet=meta.tablet_id, reason=reason):
            pass
        return True

    def _tablet_uid(self, meta: TabletMeta) -> int:
        with self._reader_lock:
            return self._tablet_uid_locked(meta)

    def _tablet_uid_locked(self, meta: TabletMeta) -> int:
        uid = self._tablet_uids.get(meta.tablet_id)
        if uid is None:
            uid = self._read_cache.allocate_uid()
            self._tablet_uids[meta.tablet_id] = uid
        return uid

    def _reader(self, meta: TabletMeta) -> TabletReader:
        with self._reader_lock:
            reader = self._readers.get(meta.tablet_id)
            if reader is None:
                reader = TabletReader(self._disk_for(meta), meta.filename,
                                      metrics=self.metrics,
                                      cache=self._read_cache,
                                      cache_uid=self._tablet_uid_locked(meta))
                self._readers[meta.tablet_id] = reader
        return reader

    def _bump_cache_generation(self) -> None:
        """Orphan all latest-row cache entries after a mutation."""
        self._cache_generation += 1
        self._m_generation_bumps.inc()

    # --------------------------------------- epoch-based read reclamation

    def _begin_read(self) -> int:
        """Enter a read: pins the current tablet snapshot's files."""
        with self.lock:
            epoch = self._read_epoch
            self._active_reads[epoch] = self._active_reads.get(epoch, 0) + 1
            return epoch

    def _end_read(self, epoch: int) -> None:
        """Leave a read; reclaims deferred deletes it was pinning."""
        with self.lock:
            count = self._active_reads.get(epoch, 0) - 1
            if count <= 0:
                self._active_reads.pop(epoch, None)
            else:
                self._active_reads[epoch] = count
            reapable = self._claim_reapable_locked()
        self._dispose(reapable)

    def _defer_delete_locked(self, metas: Sequence[TabletMeta],
                             disk: Optional[SimulatedDisk] = None) -> None:
        """Queue removed tablets' files for deletion once safe.

        Caller holds the state lock and has already published the new
        tablet list.  The epoch advances so readers entering from now
        on are known not to reference the removed tablets.  The target
        disk is captured *now* because cold migration flips
        ``meta.tier`` before the hot copy is reclaimed.
        """
        epoch = self._read_epoch
        self._read_epoch = epoch + 1
        for meta in metas:
            target = disk if disk is not None else self._disk_for(meta)
            self._pending_deletes.append((epoch, target, meta))
        if metas:
            self._m_deferred.inc(len(metas))

    def _claim_reapable_locked(self) -> List[
            Tuple[int, SimulatedDisk, TabletMeta]]:
        """Deferred deletes no active reader can still see."""
        if not self._pending_deletes:
            return []
        floor = min(self._active_reads) if self._active_reads else None
        if floor is None:
            ready = self._pending_deletes
            self._pending_deletes = []
            return ready
        ready = [item for item in self._pending_deletes if item[0] < floor]
        if ready:
            self._pending_deletes = [
                item for item in self._pending_deletes if item[0] >= floor]
        return ready

    def _dispose(self, items: Sequence[Tuple[int, SimulatedDisk,
                                             TabletMeta]]) -> None:
        """Delete reclaimed files and drop their reader/cache state.
        Runs without the state lock (file deletion is I/O)."""
        for _epoch, disk, meta in items:
            if disk.exists(meta.filename):
                disk.delete(meta.filename)
            self._drop_reader_state(meta.tablet_id)

    # ----------------------------------------------------------- inserts

    def insert(self, rows: Sequence[Dict[str, Any]]) -> int:
        """Insert a batch of rows given as column->value dicts.

        Missing ``ts`` values take the current time (§3.1).  Raises
        :class:`DuplicateKeyError` if any row's primary key already
        exists; rows earlier in the batch stay inserted (inserts are
        not transactional, §2.3.4).  Returns the number inserted.
        """
        now = self.clock.now()
        tuples = [self.schema.row_from_dict(row, now=now) for row in rows]
        return self.insert_tuples(tuples)

    def insert_tuples(self, rows: Sequence[Tuple[Any, ...]]) -> int:
        """Insert validated positional row tuples (fast path).

        Takes the table's state lock itself - callers need not (and
        should not) wrap inserts in ``table.lock`` anymore.
        """
        batch_started = time.perf_counter()
        wal = self.wal
        commit_lsn: Optional[int] = None
        error: Optional[DuplicateKeyError] = None
        with self.lock:
            while self._ddl_gate:
                # A WAL-tier schema change is flushing + swapping; wait
                # so this batch logs at the post-swap schema version.
                self._flush_cond.wait(0.1)
            self._wait_for_flush_capacity_locked()
            now = self.clock.now()
            codec = self._codec
            validate = codec.validate_and_size
            key_of = codec.key_of
            ts_index = self.schema.ts_index
            flush_limit = self.config.flush_size_bytes
            record_insert = self._deps.record_insert
            invalidate_key = self._latest_cache.invalidate_key
            max_ts_ever = self._max_ts_ever
            inserted = 0
            # WAL tier: collect accepted rows so the whole batch
            # encodes in one compiled pass and logs as one record
            # before acknowledgment.
            log_wal = wal is not None
            wal_rows: List[Tuple[Any, ...]] = []
            wal_memtables: List[MemTable] = []
            # The filling memtable and its period window are carried
            # across rows: period windows partition the timestamp axis
            # for a fixed ``now`` (periods.py aligns every boundary), so
            # ``cur_lo <= ts < cur_hi`` proves the row bins into the
            # same memtable without re-deriving the period.
            cur_mt: Optional[MemTable] = None
            cur_lo = cur_hi = 0
            try:
                for row in rows:
                    # One pass: the compiled codec validates, coerces,
                    # and returns the row's on-disk encoded size.
                    row, size = validate(row)
                    ts = row[ts_index]
                    key = key_of(row)
                    if not self._key_is_unique(key, ts, now):
                        raise DuplicateKeyError(
                            f"duplicate primary key {key!r} in table "
                            f"{self.name!r}"
                        )
                    if cur_mt is None or ts < cur_lo or ts >= cur_hi:
                        cur_mt = self._memtable_for(ts, now)
                        cur_lo = cur_mt.period.start
                        cur_hi = cur_mt.period.end
                        record_insert(cur_mt.memtable_id)
                        if wal is not None:
                            wal_memtables.append(cur_mt)
                    if not cur_mt.insert_sized(key, row, size, now):
                        raise DuplicateKeyError(
                            f"duplicate primary key {key!r} in table "
                            f"{self.name!r}"
                        )
                    if log_wal:
                        wal_rows.append(row)
                    invalidate_key(key)
                    if max_ts_ever is None or ts > max_ts_ever:
                        # Written through immediately: _key_is_unique's
                        # fast path 1 reads it for the *next* row.
                        max_ts_ever = ts
                        self._max_ts_ever = ts
                    inserted += 1
                    if cur_mt.size_bytes >= flush_limit:
                        self._retire_memtable(cur_mt)
                        cur_mt = None
            except DuplicateKeyError as exc:
                # Inserts are not transactional (§2.3.4): rows earlier
                # in the batch stay inserted, so on the WAL tier they
                # must also stay *logged* before the error surfaces.
                if wal is None:
                    raise
                error = exc
            if wal is not None and wal_rows:
                commit_lsn = wal.log_batch_block(
                    codec.ops.encode_rows(wal_rows),
                    len(wal_rows), self.schema.version)
                for memtable in wal_memtables:
                    memtable.note_wal_lsn(commit_lsn)
            if error is None:
                self._insert_seq += 1
                self.counters.rows_inserted += inserted
                self._m_rows_inserted.inc(inserted)
                self._m_insert_batches.inc()
        # The durable append runs off the state lock: group commit
        # batches concurrent inserts into one fsync, and acknowledgment
        # (returning) is what implies durability on the WAL tier.
        if commit_lsn is not None:
            wal.commit(commit_lsn)
        # Observed whether or not a duplicate surfaced: the batch still
        # traversed the full path (backpressure stall included), which
        # is the latency signal the SLO controller watches.
        self._h_insert_latency.observe(
            (time.perf_counter() - batch_started) * 1e6)
        if error is not None:
            raise error
        return inserted

    def set_flush_backpressure(self, limit: Optional[int],
                               wait_s: float = 5.0) -> None:
        """Arm (or with ``limit=None`` disarm) insert backpressure.

        The :class:`~repro.core.scheduler.MaintenanceScheduler` wires
        this from its policy on start and disarms it on stop.
        """
        with self.lock:
            self._backpressure_limit = limit
            self._backpressure_wait_s = wait_s
            self._flush_cond.notify_all()

    def _wait_for_flush_capacity_locked(self) -> None:
        """Stall an insert batch while flush-pending memtables exceed
        the armed threshold.  Bounded: maintenance must never turn the
        writer away permanently, so after the wait budget the insert
        proceeds regardless (the stall is the observable signal)."""
        limit = self._backpressure_limit
        if limit is None or len(self._flush_pending) < limit:
            return
        self._m_backpressure.inc()
        stalled = time.perf_counter()
        deadline = time.monotonic() + self._backpressure_wait_s
        while (self._backpressure_limit is not None
               and len(self._flush_pending) >= self._backpressure_limit):
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            self._flush_cond.wait(remaining)
        self._h_backpressure_wait.observe(
            (time.perf_counter() - stalled) * 1e6)

    def _memtable_for(self, ts: int, now: int) -> MemTable:
        """The filling memtable for the row's time period (§3.4.3)."""
        period = period_for(ts, now, self.config.time_partitioning)
        bin_key = (period.start, int(period.level))
        memtable = self._filling.get(bin_key)
        if memtable is None:
            memtable = MemTable(self._next_memtable_id, self.schema, period,
                                self._row_codec)
            self._next_memtable_id += 1
            self._filling[bin_key] = memtable
            self._unflushed[memtable.memtable_id] = memtable
        return memtable

    def _retire_memtable(self, memtable: MemTable) -> None:
        """Mark a filling memtable read-only and queue it for flush."""
        if memtable.read_only:
            return
        memtable.mark_read_only()
        bin_key = (memtable.period.start, int(memtable.period.level))
        if self._filling.get(bin_key) is memtable:
            del self._filling[bin_key]
        self._flush_pending.append(memtable.memtable_id)

    # -------------------------------------------------------- uniqueness

    def _key_is_unique(self, key: Tuple[Any, ...], ts: int, now: int) -> bool:
        """Primary-key uniqueness check with the §3.4.4 fast paths.

        Runs under the state lock, which also serializes it against
        tablet-set swaps - the tablet view cannot change mid-check.
        """
        # Fast path 1: the timestamp is newer than any row ever stored;
        # needs only cached metadata.
        if self._max_ts_ever is None or ts > self._max_ts_ever:
            self._m_uniq_fast_ts.inc()
            return True
        # Fast path 2: the key is larger than any other key in its time
        # period, checkable from tablet indexes and memtable maxima.
        period = period_for(ts, now, self.config.time_partitioning)
        if self._key_above_period_max(key, period):
            self._m_uniq_fast_max.inc()
            return True
        # Slow path: a point query, possibly touching disk.  Bloom
        # filters skip most tablets (§3.4.5).
        self._m_uniq_slow.inc()
        return not self._key_exists(key, ts)

    def _key_above_period_max(self, key: Tuple[Any, ...],
                              period: Period) -> bool:
        for memtable in self._unflushed.values():
            if memtable.empty:
                continue
            if (memtable.max_ts < period.start
                    or memtable.min_ts >= period.end):
                continue
            last = memtable.last_key()
            if last is not None and key <= last:
                return False
        tablet_max = self._tablet_period_max(period)
        if tablet_max is not None and key <= tablet_max:
            return False
        return True

    def _tablet_period_max(self, period: Period) -> Optional[Tuple[Any, ...]]:
        """Largest on-disk key among tablets overlapping ``period``.

        Cached per period and invalidated whenever the tablet set
        changes (descriptor generation bump) - the check runs for
        every inserted row, so it must not rescan tablet indexes.
        """
        cache_key = (period.start, int(period.level))
        cached = self._period_max_cache.get(cache_key)
        if cached is not None and cached[0] == self.descriptor.generation:
            return cached[1]
        maximum: Optional[Tuple[Any, ...]] = None
        for meta in self.descriptor.tablets:
            if meta.max_ts < period.start or meta.min_ts >= period.end:
                continue
            if meta.max_key is not None:
                # Zone map recorded by the writer: the tablet's last
                # key, no reader needed.
                if maximum is None or meta.max_key > maximum:
                    maximum = meta.max_key
                continue
            reader = self._reader(meta)
            reader.ensure_loaded()
            last_keys = reader._last_keys
            if last_keys and (maximum is None or last_keys[-1] > maximum):
                maximum = last_keys[-1]
        self._period_max_cache[cache_key] = (self.descriptor.generation,
                                             maximum)
        return maximum

    def _key_exists(self, key: Tuple[Any, ...], ts: int) -> bool:
        for memtable in self._unflushed.values():
            if memtable.contains_key(key):
                return True
        candidates = [meta for meta in self.descriptor.tablets
                      if meta.min_ts <= ts <= meta.max_ts]
        if not candidates:
            return False
        # Encode the bloom probe only once a tablet actually overlaps
        # the row's timestamp (most point checks stop at the ts test).
        encoded_prefix = None
        if self.config.bloom_filters:
            encoded_prefix = self._codec.encode_key_prefix(key[:-1])
        for meta in candidates:
            reader = self._reader(meta)
            if encoded_prefix is not None:
                probe = reader.may_contain_prefix(encoded_prefix)
                if probe is False:
                    continue
            if reader.probe_key(key):
                return True
        return False

    # ------------------------------------------------------------ flush

    def flush_memtable(self, memtable_id: int) -> List[TabletMeta]:
        """Flush one memtable plus its dependency closure (§3.4.3).

        All resulting on-disk tablets are added to the descriptor in a
        single atomic update, preserving the prefix-durability
        guarantee.  Returns the tablets written.

        The write runs *off* the state lock: the group is frozen
        (marked read-only, removed from the filling map) under a brief
        lock hold, the tablets are built lock-free, and the lock is
        re-acquired only for the O(1) descriptor swap and dependency
        bookkeeping.  New dependency edges created by concurrent
        inserts can only point *at* group members (a read-only
        memtable never receives inserts), so the closure computed at
        freeze time stays complete.
        """
        with self._maintenance_lock:
            return self._flush_off_lock(memtable_id)

    def _flush_off_lock(self, memtable_id: int) -> List[TabletMeta]:
        started = time.perf_counter()
        with self.lock:
            group = [
                mid for mid in self._deps.flush_group(memtable_id)
                if mid in self._unflushed
            ]
            members: List[MemTable] = []
            for mid in group:
                memtable = self._unflushed[mid]
                memtable.mark_read_only()
                bin_key = (memtable.period.start,
                           int(memtable.period.level))
                if self._filling.get(bin_key) is memtable:
                    del self._filling[bin_key]
                members.append(memtable)
        if not group:
            return []
        written: List[TabletMeta] = []
        now = self.clock.now()
        with self.tracer.span("flush", table=self.name) as span:
            try:
                self.disk.fire("flush.before_write")
                for memtable in members:
                    meta = self._write_memtable(memtable, now)
                    if meta is not None:
                        written.append(meta)
            except Exception as exc:
                # Leave the group flushable: re-queue it so the next
                # maintenance pass retries (files already written are
                # not in the descriptor - crash-equivalent garbage).
                # A simulated kill (CrashPoint derives from
                # BaseException) bypasses this on purpose.
                with self.lock:
                    for mid in group:
                        if (mid in self._unflushed
                                and mid not in self._flush_pending):
                            self._flush_pending.append(mid)
                self._notify_fault(exc)
                raise
            swap_started = time.perf_counter()
            with self.lock:
                if written:
                    self.disk.fire("flush.before_descriptor")
                    self.descriptor.tablets = (
                        self.descriptor.tablets + written)
                    self.descriptor.save(self.disk)
                    self.disk.fire("flush.after_descriptor")
                for mid in group:
                    self._unflushed.pop(mid, None)
                    if mid in self._flush_pending:
                        self._flush_pending.remove(mid)
                self._deps.mark_flushed(group)
                self._flush_cond.notify_all()
                reapable = self._claim_reapable_locked()
                wal_low = self._wal_low_water_locked()
            self._dispose(reapable)
            if wal_low is not None:
                # Rows just sealed into tablets no longer need their
                # log records; recycle wholly-covered segments.
                self.wal.advance_low_water(wal_low)
            self._h_swap_hold.observe(
                (time.perf_counter() - swap_started) * 1e6)
            rows = sum(meta.row_count for meta in written)
            size = sum(meta.size_bytes for meta in written)
            span.tag(tablets=len(written), rows=rows, bytes=size)
        m = self.metrics
        m.counter("flush.count").inc()
        m.counter("flush.tablets").inc(len(written))
        m.counter("flush.rows").inc(rows)
        m.counter("flush.bytes").inc(size)
        m.histogram("flush.duration_us").observe(
            (time.perf_counter() - started) * 1e6)
        return written

    def _write_memtable(self, memtable: MemTable, now: int
                        ) -> Optional[TabletMeta]:
        if memtable.empty:
            return None
        tablet_id = self.descriptor.allocate_tablet_id()
        writer = TabletWriter(
            self.disk, memtable.schema, self.config.block_size_bytes,
            self.config.compression,
            self.config.bloom_bits_per_row if self.config.bloom_filters else 0,
            block_format=self.config.block_format_version,
            metrics=self.metrics,
            checksums=self.config.checksums,
            io_limiter=self.io_limiter,
        )
        meta = writer.write(
            self.descriptor.tablet_filename(tablet_id), (),
            tablet_id, created_at=now, expected_rows=len(memtable),
            sized_pairs=memtable.sorted_sized(),
        )
        if meta is not None:
            self.counters.bytes_flushed += meta.size_bytes
            self.counters.flushes += 1
        return meta

    def _wal_low_water_locked(self) -> Optional[int]:
        """The WAL low-water mark implied by current memtable state.

        Caller holds the state lock (which also serializes LSN
        assignment, since ``log_batch`` only runs under it).  Every
        record below the returned LSN has all its rows sealed into
        tablets; with no log-covered memtable left, everything logged
        so far is covered.  None when the table has no WAL.
        """
        if self.wal is None:
            return None
        mins = [m.min_wal_lsn for m in self._unflushed.values()
                if m.min_wal_lsn is not None]
        return min(mins) if mins else self.wal.next_lsn

    # -------------------------------------------------------- WAL replay

    def replay_wal(self) -> WalReplayReport:
        """Recover logged-but-unflushed rows at open (durability tiers).

        Reads every surviving segment through the raw storage backend
        (armed failpoints stay untouched), re-inserts rows the crash
        caught memtable-resident, and skips rows already durable in a
        tablet - a crash between the flush's descriptor swap and the
        segment recycling replays rows that are already on disk, and
        the uniqueness check drops them silently.  Replayed rows are
        *not* re-logged (their records still exist); their memtables
        carry the original LSNs, so the next flush advances the
        low-water mark past them and recycles the old segments.
        """
        assert self.wal is not None, "replay_wal on a none-tier table"
        records, report = self.wal.recover()
        self.apply_wal_records(records, report)
        self.metrics.counter("wal.rows_replayed").inc(report.rows_applied)
        self.last_wal_replay = report
        return report

    def apply_wal_records(self, records,
                          report: Optional[WalReplayReport] = None
                          ) -> WalReplayReport:
        """Insert decoded WAL records' rows, skipping duplicates.

        The application half of :meth:`replay_wal`, also fed by a warm
        standby with records streamed off a primary's log
        (:mod:`repro.net.replica`).  Rows already durable in a tablet
        or present in a memtable are skipped silently - streaming and
        replay may both overlap what an earlier pass applied.
        """
        if report is None:
            report = WalReplayReport(records=len(records))
        decode = self._row_codec.decode_row
        with self.lock:
            now = self.clock.now()
            for record in records:
                if record.schema_version != self.schema.version:
                    report.issues.append(
                        f"record lsn={record.lsn}: schema version "
                        f"{record.schema_version} != current "
                        f"{self.schema.version}; rows skipped")
                    report.rows_skipped += record.row_count
                    continue
                if record.block is not None:
                    # KIND_BLOCK: the whole batch decodes in one
                    # compiled pass.
                    try:
                        rows = self._codec.ops.decode_block(
                            record.block)[0]
                    except (CorruptTabletError, ValueError,
                            IndexError, struct.error) as exc:
                        report.issues.append(
                            f"record lsn={record.lsn}: undecodable "
                            f"block ({exc}); {record.row_count} rows "
                            f"skipped")
                        report.rows_skipped += record.row_count
                        continue
                else:
                    rows = []
                    for encoded in record.rows:
                        try:
                            rows.append(decode(encoded)[0])
                        except (ValueError, IndexError,
                                struct.error) as exc:
                            report.issues.append(
                                f"record lsn={record.lsn}: undecodable "
                                f"row ({exc}); skipped")
                            report.rows_skipped += 1
                for row in rows:
                    ts = row[self.schema.ts_index]
                    key = self._codec.key_of(row)
                    if not self._key_is_unique(key, ts, now):
                        report.rows_skipped += 1
                        continue
                    memtable = self._memtable_for(ts, now)
                    self._deps.record_insert(memtable.memtable_id)
                    if not memtable.insert_sized(
                            key, row, self._codec.size_of(row), now):
                        report.rows_skipped += 1
                        continue
                    if self.wal is not None:
                        memtable.note_wal_lsn(record.lsn)
                    report.rows_applied += 1
                    if (self._max_ts_ever is None
                            or ts > self._max_ts_ever):
                        self._max_ts_ever = ts
        return report

    def wal_status(self) -> Dict[str, Any]:
        """This table's durability status (``wal_status`` command)."""
        if self.wal is None:
            return {"tier": self.durability.tier}
        status = self.wal.status()
        replay = self.last_wal_replay
        if replay is not None:
            status["last_replay"] = replay.as_dict()
        return status

    def flush_all(self) -> List[TabletMeta]:
        """Flush every unflushed memtable (used by shutdown and tests)."""
        written: List[TabletMeta] = []
        while True:
            with self.lock:
                some_id = next(iter(self._unflushed), None)
            if some_id is None:
                return written
            written.extend(self.flush_memtable(some_id))

    def flush_before(self, ts: int) -> List[TabletMeta]:
        """Flush every memtable holding rows with timestamps < ``ts``.

        This is the command §4.1.2 proposes so that aggregators need
        not "simply assume that data written more than 20 minutes in
        the past has reached disk": after ``flush_before(t)`` returns,
        every row with a timestamp before ``t`` that the table holds
        is durable (its dependency closure flushes with it, so the
        prefix-durability guarantee is unaffected).
        """
        written: List[TabletMeta] = []
        while True:
            with self.lock:
                target = next(
                    (m for m in self._unflushed.values()
                     if not m.empty and m.min_ts < ts),
                    None,
                )
            if target is None:
                return written
            written.extend(self.flush_memtable(target.memtable_id))

    def pending_flush_work(self, now: int) -> List[int]:
        """Memtable ids due for flushing: queued, oversized, or aged."""
        with self.lock:
            due = list(self._flush_pending)
            filling = list(self._filling.values())
        for memtable in filling:
            if memtable.empty:
                continue
            if (memtable.size_bytes >= self.config.flush_size_bytes
                    or memtable.age_micros(now) >= self.config.flush_age_micros):
                if memtable.memtable_id not in due:
                    due.append(memtable.memtable_id)
        return due

    # --------------------------------------------------------- cold tier

    def migrate_to_cold(self, before_ts: int) -> int:
        """Move tablets whose data is entirely older than ``before_ts``
        to the cold tier (the §6 LHAM-style extension).

        "LHAM introduced the idea of moving older data in a
        log-structured system to write-once media.  This approach is
        especially attractive for time-series data, where very old
        values are accessed infrequently but remain valuable."

        Each tablet's file is copied to the cold store, the descriptor
        is updated atomically, and the hot copy is reclaimed once no
        in-flight reader can still touch it.  Queries keep working
        transparently (at the cold tier's latencies); cold tablets are
        never merged.  Returns tablets migrated.
        """
        with self._maintenance_lock:
            if self.cold_disk is None:
                raise QueryError("no cold store attached to this table")
            migrated = 0
            for meta in self.on_disk_tablets:
                if meta.tier != "hot" or meta.max_ts >= before_ts:
                    continue
                data = self.disk.storage.read_all(meta.filename)
                self.cold_disk.write_file(meta.filename, data)
                with self.lock:
                    self.disk.fire("migrate.before_descriptor")
                    meta.tier = "cold"
                    self.descriptor.save(self.disk)
                    # The hot copy: capture the hot disk explicitly -
                    # after the tier flip _disk_for would route to the
                    # cold store and delete the wrong file.
                    self._defer_delete_locked([meta], disk=self.disk)
                    reapable = self._claim_reapable_locked()
                self._dispose(reapable)
                migrated += 1
            if migrated:
                with self.lock:
                    self._bump_cache_generation()
            return migrated

    def tier_of(self, tablet_id: int) -> Optional[str]:
        """The storage tier of a tablet, or None if unknown."""
        for meta in self.descriptor.tablets:
            if meta.tablet_id == tablet_id:
                return meta.tier
        return None

    # ------------------------------------------------------- bulk delete

    def bulk_delete(self, prefix: Sequence[Any]) -> int:
        """Delete every row whose key starts with ``prefix``.

        The bulk-delete feature §7 says Meraki was investigating "to
        simplify compliance with regional privacy laws" - e.g. remove
        one customer's networks entirely.  Memtables holding matching
        rows are flushed first, then each affected tablet is rewritten
        without the matching rows (tablets whose Bloom filter or key
        index rules the prefix out are untouched).  Returns the number
        of rows deleted.
        """
        prefix = tuple(prefix)
        if not prefix or len(prefix) >= self.schema.key_width:
            raise QueryError(
                "bulk delete takes a non-empty prefix of the key "
                "columns (excluding ts)")
        key_range = KeyRange.prefix(prefix)
        with self._maintenance_lock:
            for memtable in list(self._unflushed.values()):
                if any(True for _row in memtable.scan(key_range)):
                    self.flush_memtable(memtable.memtable_id)
            encoded_prefix = None
            if self.config.bloom_filters:
                encoded_prefix = self._row_codec.encode_prefix_columns(prefix)
            removed = 0
            now = self.clock.now()
            for meta in self.on_disk_tablets:
                reader = self._reader(meta)
                if encoded_prefix is not None:
                    probe = reader.may_contain_prefix(encoded_prefix)
                    if probe is False:
                        continue
                if not any(True for _row in reader.scan(key_range)):
                    continue
                removed += self._rewrite_tablet_without(meta, key_range, now)
            return removed

    def _rewrite_tablet_without(self, meta: TabletMeta,
                                key_range: KeyRange, now: int) -> int:
        """Rewrite one tablet dropping rows inside ``key_range``.

        The replacement is installed with an atomic descriptor update;
        the old file is reclaimed once in-flight readers drain.  A
        crash in between leaves either version, never both.  Returns
        rows dropped.
        """
        reader = self._reader(meta)
        reader.ensure_loaded()
        tablet_id = self.descriptor.allocate_tablet_id()
        writer = TabletWriter(
            self._disk_for(meta), self.schema,
            self.config.block_size_bytes, self.config.compression,
            self.config.bloom_bits_per_row if self.config.bloom_filters else 0,
            block_format=self.config.block_format_version,
            metrics=self.metrics,
            checksums=self.config.checksums,
        )
        key_of = self.schema.key_of
        if (reader.schema.version == self.schema.version
                and self.config.block_format_version == BLOCK_FORMAT_V1):
            # v1 -> v1: raw encodings pass straight through.
            pairs = (
                (row, encoded) for row, encoded in reader.scan_pairs()
                if not key_range.contains(key_of(row))
            )
            new_meta = writer.write(
                self.descriptor.tablet_filename(tablet_id), (), tablet_id,
                created_at=now, expected_rows=meta.row_count,
                encoded_pairs=pairs,
            )
        else:
            rows = (
                row for row in self._tablet_rows_translated(meta)
                if not key_range.contains(key_of(row))
            )
            new_meta = writer.write(
                self.descriptor.tablet_filename(tablet_id), rows,
                tablet_id, created_at=now, expected_rows=meta.row_count,
            )
        swap_started = time.perf_counter()
        with self.lock:
            remaining = [
                t for t in self.descriptor.tablets
                if t.tablet_id != meta.tablet_id
            ]
            kept = 0
            if new_meta is not None:
                new_meta.tier = meta.tier
                remaining.append(new_meta)
                kept = new_meta.row_count
            self.disk.fire("rewrite.before_descriptor")
            self.descriptor.tablets = remaining
            self.descriptor.save(self.disk)
            self._defer_delete_locked([meta])
            self._bump_cache_generation()
            reapable = self._claim_reapable_locked()
        self._dispose(reapable)
        self._h_swap_hold.observe(
            (time.perf_counter() - swap_started) * 1e6)
        return meta.row_count - kept

    # ------------------------------------------------------------ merge

    def maybe_merge(self) -> Optional[MergePlan]:
        """Run one merge if the policy finds one (§3.4.1).

        Returns the executed plan, or None.  The merge streams the
        source tablets through a k-way merge into a new tablet entirely
        off the state lock (sources are immutable files), then
        re-acquires the lock only for the O(1) copy-on-write descriptor
        swap; the source files are reclaimed once in-flight readers
        drain.
        """
        with self._maintenance_lock:
            now = self.clock.now()
            hot_tablets = [t for t in self.descriptor.tablets
                           if t.tier != "cold"]
            plan = choose_merge(hot_tablets, now, self.name, self.config)
            if plan is None:
                return None
            with self.tracer.span("merge", table=self.name,
                                  period=plan.period.level.name.lower(),
                                  tablets=len(plan.tablets),
                                  rows=plan.total_rows):
                self._execute_merge(plan, now)
            return plan

    def _execute_merge(self, plan: MergePlan, now: int) -> None:
        import heapq

        started = time.perf_counter()
        self.disk.fire("merge.before_write")
        tablet_id = self.descriptor.allocate_tablet_id()
        filename = self.descriptor.tablet_filename(tablet_id)
        readers = [self._reader(source) for source in plan.tablets]
        for reader in readers:
            reader.ensure_loaded()
        same_schema = all(
            r.schema.version == self.schema.version for r in readers)
        have_zone_maps = all(
            t.min_key is not None and t.max_key is not None
            for t in plan.tablets)
        if (same_schema
                and self.config.block_format_version == BLOCK_FORMAT_V2
                and have_zone_maps):
            # Common case: block-at-a-time merge.  Non-overlapping v2
            # source blocks are copied compressed-payload-verbatim;
            # overlapping runs are batch-decoded and re-encoded whole
            # blocks at a time; v1 sources come out upgraded to v2.
            meta = self._merge_blockwise(plan, readers, filename,
                                         tablet_id, now)
        elif same_schema:
            # v1 writer config: rows pass through with their raw v1
            # encodings, as before the v2 format existed.
            writer = TabletWriter(
                self.disk, self.schema, self.config.block_size_bytes,
                self.config.compression,
                self.config.bloom_bits_per_row
                if self.config.bloom_filters else 0,
                block_format=self.config.block_format_version,
                metrics=self.metrics,
                checksums=self.config.checksums,
                io_limiter=self.io_limiter,
            )
            key_of = self.schema.key_of
            pairs = heapq.merge(*[r.scan_pairs() for r in readers],
                                key=lambda pair: key_of(pair[0]))
            meta = writer.write(
                filename, (), tablet_id,
                created_at=now, expected_rows=plan.total_rows,
                encoded_pairs=pairs,
            )
        else:
            # Mixed schema versions: translating while merging also
            # upgrades old rows to the current schema (§3.5).
            writer = TabletWriter(
                self.disk, self.schema, self.config.block_size_bytes,
                self.config.compression,
                self.config.bloom_bits_per_row
                if self.config.bloom_filters else 0,
                block_format=self.config.block_format_version,
                metrics=self.metrics,
                checksums=self.config.checksums,
                io_limiter=self.io_limiter,
            )
            merged = self._merge_streams([
                self._tablet_rows_translated(source)
                for source in plan.tablets
            ])
            meta = writer.write(
                filename, merged,
                tablet_id, created_at=now, expected_rows=plan.total_rows,
            )
        merged_ids = {t.tablet_id for t in plan.tablets}
        swap_started = time.perf_counter()
        with self.lock:
            new_tablets = [
                t for t in self.descriptor.tablets
                if t.tablet_id not in merged_ids
            ]
            rows_rewritten = 0
            if meta is not None:
                new_tablets.append(meta)
                self.counters.bytes_merge_written += meta.size_bytes
                self.counters.rows_merge_written += meta.row_count
                rows_rewritten = meta.row_count
            self.counters.merges += 1
            self.disk.fire("merge.before_descriptor")
            self.descriptor.tablets = new_tablets
            self.descriptor.save(self.disk)
            self.disk.fire("merge.after_descriptor")
            self._defer_delete_locked(plan.tablets)
            self._bump_cache_generation()
            reapable = self._claim_reapable_locked()
        self._dispose(reapable)
        self._h_swap_hold.observe(
            (time.perf_counter() - swap_started) * 1e6)
        # Per-period rewrite counters make the appendix's O(log T)
        # per-row rewrite bound empirically checkable: rows_rewritten
        # divided by insert.rows bounds the mean rewrite count.
        level = plan.period.level.name.lower()
        duration_us = (time.perf_counter() - started) * 1e6
        m = self.metrics
        m.counter("merge.count").inc()
        m.counter("merge.tablets_merged").inc(len(plan.tablets))
        m.counter("merge.rows_rewritten").inc(rows_rewritten)
        if meta is not None:
            m.counter("merge.bytes_written").inc(meta.size_bytes)
        m.counter(f"merge.count.{level}").inc()
        m.counter(f"merge.rows_rewritten.{level}").inc(rows_rewritten)
        m.histogram("merge.duration_us").observe(duration_us)

    def _merge_blockwise(self, plan: MergePlan,
                         readers: List[TabletReader], filename: str,
                         tablet_id: int, now: int) -> Optional[TabletMeta]:
        """Merge same-schema sources block-at-a-time into a v2 tablet.

        Time-partitioned tablets rarely interleave, so most blocks'
        key ranges are disjoint from every other source's remaining
        keys; those are appended as raw compressed payloads without
        decoding.  Only genuinely overlapping stretches are decoded -
        whole blocks at a time through the compiled codec - and even
        then rows are emitted in provably-least *runs* (bisect against
        the other sources' frontier) rather than one heap pop per row.
        v1 source blocks are always decoded, so the output upgrades
        them to v2.
        """
        config = self.config
        sink = TabletSink(
            self.disk, self.schema, config.block_size_bytes,
            config.compression,
            config.bloom_bits_per_row if config.bloom_filters else 0,
            block_format=BLOCK_FORMAT_V2,
            metrics=self.metrics,
            expected_rows=plan.total_rows,
            checksums=config.checksums,
            io_limiter=self.io_limiter,
        )
        # Every source row survives a merge, so the output's timespan
        # and zone map are exactly the union of the sources' metadata;
        # passthrough blocks never reveal their rows, so these cannot
        # be tracked per-row.
        sink.note_ts_bounds(min(t.min_ts for t in plan.tablets),
                            max(t.max_ts for t in plan.tablets))
        min_key = min(t.min_key for t in plan.tablets)
        max_key = max(t.max_key for t in plan.tablets)
        # Don't interleave passthrough blocks with tiny row-built
        # fragments: require the pending block to be empty or at least
        # a quarter full before sealing it early.
        frag_floor = config.block_size_bytes // 4
        upgraded = 0
        sources = [_MergeSource(r) for r in readers]
        while True:
            sources = [s for s in sources if not s.exhausted]
            if not sources:
                break
            # A block at some source's boundary whose keys all precede
            # every other source's remaining keys can move as a unit.
            best = best_entry = None
            for s in sources:
                if s.rows is not None:
                    continue
                entry = s.entries[s.index]
                last = entry.last_key
                ok = True
                for t in sources:
                    if t is s:
                        continue
                    if t.rows is not None:
                        if t.keys[t.pos] <= last:
                            ok = False
                            break
                    elif t.lo_bound is None or t.lo_bound < last:
                        # t's remaining keys are only known to exceed
                        # its lo_bound; that bound must cover ``last``.
                        ok = False
                        break
                if ok and (best is None or last < best_entry.last_key):
                    best, best_entry = s, entry
            if best is not None:
                reader = best.reader
                if (reader.block_format == BLOCK_FORMAT_V2
                        and reader.codec_byte == sink.codec
                        and (sink.pending_bytes == 0
                             or sink.pending_bytes >= frag_floor)):
                    payload = reader.read_block_payload(best.index)
                    sink.add_block_passthrough(
                        payload, best_entry.row_count, best_entry.last_key)
                    if sink.wants_bloom:
                        raw = decompress(reader.codec_byte, payload)
                        cols = reader.schema_codec.decode_key_columns(
                            raw, include_ts=False)
                        if cols:
                            sink.add_bloom_prefixes(zip(*cols))
                    best.skip_block()
                else:
                    # Right block, wrong format/codec/fill: take the
                    # row path (decoding a v1 block here is what
                    # upgrades it to v2 in the output).
                    if reader.block_format == BLOCK_FORMAT_V1:
                        upgraded += 1
                    best.decode_next()
                continue
            # Overlap: decode every boundary source's next block, then
            # emit the longest provably-least run in bulk.
            for s in sources:
                if s.rows is None:
                    if s.reader.block_format == BLOCK_FORMAT_V1:
                        upgraded += 1
                    s.decode_next()
            add_row = sink.add_row
            while True:
                winner = min(sources, key=lambda s: s.keys[s.pos])
                others = [s.keys[s.pos] for s in sources
                          if s is not winner]
                if others:
                    cut = bisect.bisect_left(winner.keys, min(others),
                                             winner.pos)
                    if cut <= winner.pos:
                        cut = winner.pos + 1
                else:
                    cut = len(winner.rows)
                rows, keys = winner.rows, winner.keys
                for i in range(winner.pos, cut):
                    add_row(rows[i], key=keys[i])
                winner.pos = cut
                if cut == len(rows):
                    winner.finish_pending()
                    break  # boundary reached: passthrough gets a shot
        if upgraded:
            self._codec.note_upgraded_blocks(upgraded)
        return sink.finish(filename, tablet_id, created_at=now,
                           min_key=min_key, max_key=max_key)

    def _merge_streams(self, sources: List[Iterator[Tuple[Any, ...]]]
                       ) -> Iterator[Tuple[Any, ...]]:
        import heapq

        key_of = self.schema.key_of
        return heapq.merge(*sources, key=key_of)

    def _guarded_tablet_rows(self, meta: TabletMeta,
                             key_range: Optional[KeyRange] = None,
                             descending: bool = False
                             ) -> Iterator[Tuple[Any, ...]]:
        """A tablet scan with corruption isolation.

        A checksum or structural failure (or a vanished file)
        quarantines the tablet - descriptor drops it, file moves to
        ``quarantine/`` - and then re-raises for the in-flight query.
        Detection is never silent: this query gets a typed error, the
        ``storage.checksum_failures`` / ``storage.quarantined_tablets``
        metrics advance, and *subsequent* queries serve from the
        remaining tablets.  Rows already yielded from the bad tablet's
        earlier blocks were CRC-verified, so nothing corrupt was ever
        returned.
        """
        try:
            yield from self._tablet_rows_translated(meta, key_range,
                                                    descending)
        except (CorruptTabletError, StorageError) as exc:
            if self.config.quarantine_on_corruption:
                self.quarantine_tablet(
                    meta, f"{type(exc).__name__}: {exc}")
            raise

    def _tablet_rows_translated(self, meta: TabletMeta,
                                key_range: Optional[KeyRange] = None,
                                descending: bool = False
                                ) -> Iterator[Tuple[Any, ...]]:
        """Scan a tablet, translating old-schema rows (§3.5)."""
        reader = self._reader(meta)
        reader.ensure_loaded()
        rows = reader.scan(key_range or KeyRange.all(), descending)
        if reader.schema.version == self.schema.version:
            return rows
        return (
            self.schema.translate_row(row, reader.schema) for row in rows
        )

    def _memtable_rows_translated(self, memtable: MemTable,
                                  key_range: KeyRange,
                                  descending: bool = False
                                  ) -> Iterator[Tuple[Any, ...]]:
        """Scan a memtable, translating rows written under an older
        schema (a schema change retires filling memtables, but they
        stay readable until flushed)."""
        rows = memtable.scan(key_range, descending)
        if memtable.schema.version == self.schema.version:
            return rows
        return (
            self.schema.translate_row(row, memtable.schema) for row in rows
        )

    # -------------------------------------------------------------- TTL

    def expire_tablets(self) -> int:
        """Drop tablets whose rows have all passed the TTL (§3.3).

        Returns the number of tablets reclaimed.
        """
        with self._maintenance_lock:
            ttl = self.descriptor.ttl_micros
            if ttl is None:
                return 0
            cutoff = self.clock.now() - ttl
            expired = [t for t in self.descriptor.tablets
                       if t.max_ts < cutoff]
            if not expired:
                return 0
            expired_ids = {t.tablet_id for t in expired}
            expired_rows = sum(t.row_count for t in expired)
            with self.tracer.span("ttl_expire", table=self.name,
                                  tablets=len(expired), rows=expired_rows):
                with self.lock:
                    self.disk.fire("ttl.before_descriptor")
                    self.descriptor.tablets = [
                        t for t in self.descriptor.tablets
                        if t.tablet_id not in expired_ids
                    ]
                    self.descriptor.save(self.disk)
                    self.disk.fire("ttl.after_descriptor")
                    self._defer_delete_locked(expired)
                    self._bump_cache_generation()
                    reapable = self._claim_reapable_locked()
                self._dispose(reapable)
            self.counters.tablets_expired += len(expired)
            self.metrics.counter("ttl.tablets_expired").inc(len(expired))
            self.metrics.counter("ttl.rows_expired").inc(expired_rows)
            return len(expired)

    # ------------------------------------------------------ maintenance

    def maintenance(self, merge_budget: int = 1,
                    expire_ttl: bool = True) -> TableMaintenanceReport:
        """One background tick: due flushes, budgeted merges, TTL.

        Returns a typed :class:`TableMaintenanceReport` (dict-style
        access kept for compatibility).  Each work kind is isolated:
        a failing flush still lets merges and TTL reclaim run, with
        the error recorded on the report and counted by the
        ``maintenance.errors`` metric.
        """
        report = TableMaintenanceReport(table=self.name)
        now = self.clock.now()
        try:
            for memtable_id in self.pending_flush_work(now):
                if memtable_id in self._unflushed:
                    report.flushed += len(self.flush_memtable(memtable_id))
        except Exception as exc:  # crash isolation per work kind
            self._record_maintenance_error(report, "flush", exc)
        try:
            for _ in range(max(int(merge_budget), 0)):
                if self.maybe_merge() is None:
                    break
                report.merged += 1
        except Exception as exc:
            self._record_maintenance_error(report, "merge", exc)
        if expire_ttl:
            try:
                report.expired = self.expire_tablets()
            except Exception as exc:
                self._record_maintenance_error(report, "ttl", exc)
        return report

    def _record_maintenance_error(self, report: TableMaintenanceReport,
                                  kind: str, exc: BaseException) -> None:
        report.errors.append(f"{kind}: {type(exc).__name__}: {exc}")
        self.metrics.counter("maintenance.errors").inc()
        self._notify_fault(exc)

    def _notify_fault(self, exc: BaseException) -> None:
        """Tell the database about a storage-level failure (it decides
        whether to degrade to read-only).  Duplicate notifications for
        one failure are fine - the listener is idempotent."""
        listener = self._fault_listener
        if listener is not None:
            listener(exc)

    def maintenance_due(self, now: Optional[int] = None,
                        include_merge: bool = True) -> bool:
        """Cheap work-selection probe for the scheduler: True when a
        maintenance pass would (probably) do something - a queued or
        due flush, an expirable tablet, or a mergeable run."""
        if now is None:
            now = self.clock.now()
        with self.lock:
            if self._flush_pending or self._pending_deletes:
                return True
            filling = list(self._filling.values())
            tablets = self.descriptor.tablets
        for memtable in filling:
            if memtable.empty:
                continue
            if (memtable.size_bytes >= self.config.flush_size_bytes
                    or memtable.age_micros(now)
                    >= self.config.flush_age_micros):
                return True
        ttl = self.descriptor.ttl_micros
        if ttl is not None:
            cutoff = now - ttl
            if any(t.max_ts < cutoff for t in tablets):
                return True
        if include_merge:
            hot = [t for t in tablets if t.tier != "cold"]
            if not is_quiescent(hot, now, self.name, self.config):
                return True
        return False

    # ------------------------------------------------------------ query

    def _read_state(self) -> Tuple[int, List[TabletMeta], List[MemTable]]:
        """One consistent (generation, tablets, memtables) snapshot.

        A single brief state-lock hold; the tablet list is
        copy-on-write so the returned binding never mutates, and
        memtables are safe for concurrent reads (a scan racing an
        insert sees some, all, or none of it, §3.1).
        """
        with self.lock:
            return (self.descriptor.generation,
                    self.descriptor.tablets,
                    [m for m in self._unflushed.values() if not m.empty])

    def scan(self, query: Query) -> Iterator[Tuple[Any, ...]]:
        """Stream rows for a query without the server row limit.

        Accounting still accumulates into :attr:`counters`.
        """
        stats = QueryStats()
        epoch = self._begin_read()
        try:
            yield from self._execute(query, stats)
        finally:
            self._end_read(epoch)
            self._absorb_stats(stats)

    def query(self, query: Query) -> QueryResult:
        """Execute one query command with the server row limit (§3.5).

        Runs entirely off the table lock against a snapshot: an
        in-flight merge, flush, or TTL reclaim never blocks it.
        """
        query_started = time.perf_counter()
        stats = QueryStats()
        limit = self.config.server_row_limit
        if query.limit is not None:
            limit = min(limit, query.limit)
        rows: List[Tuple[Any, ...]] = []
        more_available = False
        epoch = self._begin_read()
        try:
            for row in self._execute(query, stats):
                if len(rows) == limit:
                    more_available = True
                    break
                rows.append(row)
        finally:
            self._end_read(epoch)
        self._absorb_stats(stats)
        self.counters.queries += 1
        self._m_queries.inc()
        self._h_query_latency.observe(
            (time.perf_counter() - query_started) * 1e6)
        return QueryResult(rows, more_available, stats)

    def _absorb_stats(self, stats: QueryStats) -> None:
        self.counters.rows_scanned += stats.rows_scanned
        self.counters.rows_returned += stats.rows_returned
        self._m_rows_scanned.inc(stats.rows_scanned)
        self._m_rows_returned.inc(stats.rows_returned)

    def _execute(self, query: Query, stats: QueryStats
                 ) -> Iterator[Tuple[Any, ...]]:
        now = self.clock.now()
        descending = query.direction == DESCENDING
        generation, tablets, memtables = self._read_state()
        sources: List[Iterator[Tuple[Any, ...]]] = []
        selected, pruned = self._prune_index.select_snapshot(
            generation, tablets, query.time_range, query.key_range)
        if pruned:
            stats.tablets_pruned += pruned
            self._m_tablets_pruned.inc(pruned)
        for meta in selected:
            stats.tablets_opened += 1
            sources.append(
                self._guarded_tablet_rows(meta, query.key_range, descending)
            )
        for memtable in memtables:
            if not query.time_range.overlaps(memtable.min_ts,
                                             memtable.max_ts):
                continue
            sources.append(self._memtable_rows_translated(
                memtable, query.key_range, descending))
        if not sources:
            return iter(())
        return execute_query(sources, self.schema, query, now,
                             self.descriptor.ttl_micros, stats)

    # ------------------------------------------ vectorized aggregation

    def prune_preview(self, time_range: TimeRange, key_range: KeyRange
                      ) -> Tuple[int, int]:
        """``(tablets that would open, total on disk)`` for a bounding
        box - the same zone-map + time-interval pruning every scan and
        aggregate pushdown applies, exposed for ``EXPLAIN``.  Metadata
        only: no tablet is opened and no counters advance.
        """
        with self.lock:
            generation = self.descriptor.generation
            tablets = self.descriptor.tablets
        selected, _pruned = self._prune_index.select_snapshot(
            generation, tablets, time_range, key_range)
        return len(selected), len(tablets)

    def aggregate_partials(self, spec: AggregateSpec) -> AggregatePartials:
        """Vectorized partial aggregation over this table's sources.

        The pushed-down counterpart of :meth:`_execute` for aggregate
        queries: the same snapshot/epoch discipline and the same
        zone-map + time-interval tablet pruning, but v2 tablets are
        consumed column-major - whole decoded columns flow through the
        predicate and accumulation kernels with no per-row tuple
        materialization.  v1 tablets, old-schema tablets, and memtables
        fall back to row-at-a-time accumulation.  Primary keys are
        unique across sources (§3.4.4), so per-source partials combine
        by simple merge; the executor (or the shard router) finalizes.

        Query accounting matches the row path: ``rows_scanned`` counts
        rows inside the key bounds, ``rows_returned`` those alive after
        the time/TTL filter, and pruned tablets advance the same
        ``query.tablets_pruned`` counter plain selects use.
        """
        now = self.clock.now()
        ttl = self.descriptor.ttl_micros
        cutoff = None if ttl is None else now - ttl
        tlo, thi = resolve_time_bounds(spec.time_range, cutoff)
        stats = QueryStats()
        partials = AggregatePartials()
        groups = partials.groups
        ts_index = self.schema.ts_index
        generation, tablets, memtables = self._read_state()
        selected, pruned = self._prune_index.select_snapshot(
            generation, tablets, spec.time_range, spec.key_range)
        if pruned:
            stats.tablets_pruned += pruned
            self._m_tablets_pruned.inc(pruned)
        epoch = self._begin_read()
        try:
            for meta in selected:
                stats.tablets_opened += 1
                try:
                    self._aggregate_tablet(meta, spec, groups, stats,
                                           tlo, thi, ts_index)
                except (CorruptTabletError, StorageError) as exc:
                    if self.config.quarantine_on_corruption:
                        self.quarantine_tablet(
                            meta, f"{type(exc).__name__}: {exc}")
                    raise
            for memtable in memtables:
                if not spec.time_range.overlaps(memtable.min_ts,
                                                memtable.max_ts):
                    continue
                rows = self._memtable_rows_translated(memtable,
                                                      spec.key_range)
                scanned, returned, aggregated = accumulate_rows(
                    groups, spec, ts_index, rows, tlo, thi)
                stats.rows_scanned += scanned
                stats.rows_returned += returned
                self._m_push_rows_fallback.inc(scanned)
                self._m_push_rows_filtered.inc(scanned - aggregated)
        finally:
            self._end_read(epoch)
        self._absorb_stats(stats)
        self.counters.queries += 1
        self._m_queries.inc()
        self._m_push_queries.inc()
        return partials

    def _aggregate_tablet(self, meta: TabletMeta, spec: AggregateSpec,
                          groups: Dict[Any, List[List[Any]]],
                          stats: QueryStats, tlo: Optional[int],
                          thi: Optional[int], ts_index: int) -> None:
        """Fold one tablet into the partial group states.

        v2 same-schema tablets take the columnar path: interior blocks
        proven fully inside the key bounds by the block index's last
        keys never materialize row keys at all; only the edge blocks
        binary-search their key lists for the exact trim.
        """
        reader = self._reader(meta)
        reader.ensure_loaded()
        if (reader.block_format != BLOCK_FORMAT_V2
                or reader.schema.version != self.schema.version):
            # v1 blocks decode row-major, and old-schema tablets need
            # per-row translation: row-at-a-time fallback for both.
            rows = self._tablet_rows_translated(meta, spec.key_range)
            scanned, returned, aggregated = accumulate_rows(
                groups, spec, ts_index, rows, tlo, thi)
            stats.rows_scanned += scanned
            stats.rows_returned += returned
            self._m_push_blocks_fallback.inc(reader.block_count)
            self._m_push_rows_fallback.inc(scanned)
            self._m_push_rows_filtered.inc(scanned - aggregated)
            return
        if reader.block_count == 0:
            return
        key_range = spec.key_range
        first = reader.first_block_for(key_range)
        last = reader.last_block_for(key_range)
        last_keys = reader.last_keys
        no_min = key_range.min_prefix is None
        no_max = key_range.max_prefix is None
        for index in range(first, last + 1):
            full_min = no_min or (
                index > 0
                and not key_range.before_range(last_keys[index - 1]))
            full_max = no_max or not key_range.after_range(last_keys[index])
            need_keys = not (full_min and full_max)
            columns, keys, count = reader.scan_block_columns(
                index, need_keys=need_keys)
            if need_keys:
                lo, hi = key_bounds(keys, key_range)
            else:
                lo, hi = 0, count
            if lo >= hi:
                continue
            in_bounds = hi - lo
            stats.rows_scanned += in_bounds
            sel = time_filter(columns[ts_index], lo, hi, tlo, thi)
            returned = in_bounds if sel is None else len(sel)
            stats.rows_returned += returned
            if spec.residuals:
                sel = residual_filter(columns, spec.residuals, sel, lo, hi)
            aggregated = in_bounds if sel is None else len(sel)
            self._m_push_blocks.inc()
            self._m_push_rows_columnar.inc(in_bounds)
            self._m_push_rows_filtered.inc(in_bounds - aggregated)
            if aggregated:
                accumulate(groups, spec, columns, ts_index, sel, lo, hi)

    # ------------------------------------------- latest row for a prefix

    def latest(self, prefix: Sequence[Any],
               max_lookback_micros: Optional[int] = None
               ) -> Optional[Tuple[Any, ...]]:
        """Find the latest row whose key starts with ``prefix`` (§3.4.5).

        Works backwards through groups of tablets with overlapping
        timespans, so it usually stops after the newest group.  When
        the prefix covers all key columns except the timestamp, the
        first row of a descending cursor is the answer; otherwise the
        whole prefix within each group is scanned for the maximum
        timestamp.  Bloom filters skip groups that cannot contain the
        prefix.  ``max_lookback_micros`` optionally bounds the search
        (used by EventsGrabber, §4.2).
        """
        prefix = tuple(prefix)
        if len(prefix) >= self.schema.key_width:
            raise QueryError("prefix must be shorter than the full key")
        now = self.clock.now()
        cutoff = None
        ttl = self.descriptor.ttl_micros
        if ttl is not None:
            cutoff = now - ttl
        if max_lookback_micros is not None:
            lookback_cutoff = now - max_lookback_micros
            cutoff = lookback_cutoff if cutoff is None else max(
                cutoff, lookback_cutoff)
        # One atomic capture: generation + insert seq + sources.  The
        # generation gates cached answers; the insert seq lets the
        # store below detect that an insert overtook this scan.
        with self.lock:
            generation = self._cache_generation
            insert_seq = self._insert_seq
            tablets = self.descriptor.tablets
            memtables = [m for m in self._unflushed.values() if not m.empty]
        # Hot-row cache: the dashboard asks for the same devices'
        # newest rows over and over (§3.4.5).  A cached answer is the
        # table's *global* latest for the prefix, so the TTL/lookback
        # window is re-applied at lookup time; inserts covering the
        # prefix and all tablet-set mutations invalidate.
        cached = self._latest_cache.lookup(
            prefix, generation, cutoff, self.schema.ts_of)
        if cached is not self._latest_cache.miss_sentinel:
            self.counters.queries += 1
            self.counters.rows_returned += 1 if cached is not None else 0
            self._m_queries.inc()
            self._m_rows_returned.inc(1 if cached is not None else 0)
            return cached
        full_prefix = len(prefix) == self.schema.key_width - 1
        encoded_prefix = None
        if self.config.bloom_filters and prefix:
            encoded_prefix = self._row_codec.encode_prefix_columns(prefix)
        key_range = KeyRange.prefix(prefix)
        stats = QueryStats()
        best: Optional[Tuple[Any, ...]] = None
        epoch = self._begin_read()
        try:
            for group in self._timespan_groups(tablets, memtables, key_range):
                group_max = max(
                    span_max for _src, _span_min, span_max in group)
                if cutoff is not None and group_max < cutoff:
                    break
                sources = []
                for source, _span_min, _span_max in group:
                    if (encoded_prefix is not None
                            and isinstance(source, TabletMeta)):
                        reader = self._reader(source)
                        probe = reader.may_contain_prefix(encoded_prefix)
                        if probe is False:
                            continue
                    if isinstance(source, TabletMeta):
                        sources.append(self._tablet_rows_translated(
                            source, key_range, descending=True))
                    else:
                        sources.append(self._memtable_rows_translated(
                            source, key_range, descending=True))
                if not sources:
                    continue
                merged = execute_query(
                    sources, self.schema,
                    Query(key_range, TimeRange.all(), DESCENDING),
                    now, self.descriptor.ttl_micros, stats,
                )
                for row in merged:
                    ts = self.schema.ts_of(row)
                    if cutoff is not None and ts < cutoff:
                        continue
                    if full_prefix:
                        best = row
                        break
                    if best is None or ts > self.schema.ts_of(best):
                        best = row
                if best is not None:
                    break
        finally:
            self._end_read(epoch)
        # A latest-row query returns at most one row to the client no
        # matter how many rows it scanned - this asymmetry is exactly
        # what produces Figure 9's long tail (§5.2.4).
        self.counters.rows_scanned += stats.rows_scanned
        self.counters.rows_returned += 1 if best is not None else 0
        self.counters.queries += 1
        self._m_queries.inc()
        self._m_rows_scanned.inc(stats.rows_scanned)
        self._m_rows_returned.inc(1 if best is not None else 0)
        with self.lock:
            # Store only if no insert or mutation overtook the scan:
            # an insert racing this lookup may have added a newer row
            # for the prefix that the snapshot cannot see, and the
            # insert's invalidate_key fired before this store.
            if (self._insert_seq == insert_seq
                    and self._cache_generation == generation):
                self._latest_cache.store(prefix, generation, best, cutoff)
        return best

    def _timespan_groups(self, tablets: Sequence[TabletMeta],
                         memtables: Sequence[MemTable],
                         key_range: Optional[KeyRange] = None):
        """Sources grouped by overlapping timespans, newest first.

        Operates on a caller-provided snapshot of tablets/memtables so
        it never touches mutable table state.  Each group is a list of
        (source, span_min, span_max) where the source is a TabletMeta
        or a MemTable.  Groups are maximal runs of sources whose
        timespans form a connected interval chain.

        ``key_range`` optionally drops tablets whose key-range zone map
        proves they cannot hold a qualifying row; removing sources only
        splits groups into still-time-disjoint subgroups, so the
        newest-first dominance argument in :meth:`latest` is preserved.
        """
        spans = []
        pruned = 0
        for meta in tablets:
            if key_range is not None and _zone_map_excludes(meta, key_range):
                pruned += 1
                continue
            spans.append((meta, meta.min_ts, meta.max_ts))
        if pruned:
            self._m_tablets_pruned.inc(pruned)
        for memtable in memtables:
            if not memtable.empty:
                spans.append((memtable, memtable.min_ts, memtable.max_ts))
        spans.sort(key=lambda item: item[1])
        groups: List[List[Tuple[Any, int, int]]] = []
        current: List[Tuple[Any, int, int]] = []
        current_max = None
        for item in spans:
            _source, span_min, span_max = item
            if current and span_min > current_max:
                groups.append(current)
                current = []
                current_max = None
            current.append(item)
            current_max = span_max if current_max is None else max(
                current_max, span_max)
        if current:
            groups.append(current)
        groups.reverse()
        return groups

    # --------------------------------------------------- schema changes

    def append_column(self, column: Column) -> None:
        """§3.5: append a column to the tail of the schema."""
        self._apply_schema(self.schema.with_appended_column(column))

    def widen_column(self, name: str) -> None:
        """§3.5: widen an int32 column to int64."""
        self._apply_schema(self.schema.with_widened_column(name))

    def set_ttl(self, ttl_micros: Optional[int]) -> None:
        """§3.5: alter the table's TTL."""
        if ttl_micros is not None and ttl_micros <= 0:
            raise SchemaError("TTL must be positive (or None to disable)")
        with self._maintenance_lock:
            with self.lock:
                self.descriptor.ttl_micros = ttl_micros
                self.descriptor.save(self.disk)

    def _apply_schema(self, schema: Schema) -> None:
        # DDL is a tablet-set mutator: it serializes with flush/merge
        # through the maintenance lock and swaps state briefly.
        with self._maintenance_lock:
            # WAL tier: seal current-schema rows into tablets first so
            # every WAL record whose rows are not yet tablet-covered
            # carries the (single) current schema version - replay
            # skips version-mismatched records, so any row allowed to
            # log at the old version between the flush and the swap
            # would be lost by a crash.  The gate closes that window:
            # inserts admitted before it block until the swap lands,
            # and rows logged before the gate closed are drained by
            # flush_all (their old-version records are then fully
            # tablet-covered, so replay's skip is harmless).
            gated = self.wal is not None
            if gated:
                with self.lock:
                    self._ddl_gate = True
            try:
                if gated:
                    self.flush_all()
                self._apply_schema_swap(schema)
            finally:
                if gated:
                    with self.lock:
                        self._ddl_gate = False
                        self._flush_cond.notify_all()

    def _apply_schema_swap(self, schema: Schema) -> None:
        with self.lock:
            # Retire filling memtables so new inserts use the new
            # schema; flushed tablets keep their old schema and
            # translate on read.
            for memtable in list(self._filling.values()):
                if memtable.empty:
                    bin_key = (memtable.period.start,
                               int(memtable.period.level))
                    del self._filling[bin_key]
                    del self._unflushed[memtable.memtable_id]
                else:
                    self._retire_memtable(memtable)
            self.descriptor.schema = schema
            self._row_codec = RowCodec(schema)
            self._codec = SchemaCodec(schema, self.metrics)
            self.descriptor.save(self.disk)
            # Cached blocks hold rows decoded at each tablet's own
            # schema (translated downstream), but a schema change
            # is rare enough to drop the table's read-cache entries
            # wholesale and orphan every cached latest() answer.
            with self._reader_lock:
                uids = list(self._tablet_uids.values())
            self._bump_cache_generation()
        self._read_cache.invalidate_tablets(uids)
