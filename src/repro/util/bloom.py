"""Bloom filters for on-disk tablets.

Section 3.4.5 of the paper proposes (as an optimization under
consideration, in the style of bLSM) storing a Bloom filter of each
on-disk tablet's keys so that latest-row-for-prefix queries and
duplicate-key checks can skip ~99% of tablets that cannot contain a
matching key, at a cost of about 10 bits per row.  We implement that
proposal; the engine exposes it behind a config switch so the ablation
benchmark can measure its effect.

Because the queries that benefit probe by *key prefix*, the filter
stores every proper prefix of each inserted key in addition to the full
key.  Keys arrive as tuples of encoded column bytes.
"""

from __future__ import annotations

import zlib
from typing import Iterable, Sequence, Tuple

DEFAULT_BITS_PER_KEY = 10


def _hash_pair(data: bytes) -> Tuple[int, int]:
    # Two independent CRC32 streams (different seeds) give the double-
    # hashing bases.  CRC32 is a C call, which matters: the filter is
    # touched for every inserted row.
    h1 = zlib.crc32(data)
    h2 = zlib.crc32(data, 0x9E3779B9) | 1  # odd step
    return h1, h2


def optimal_hash_count(bits_per_key: int) -> int:
    """k = ln(2) * bits/key, clamped to a sane range."""
    return max(1, min(16, int(round(0.6931 * bits_per_key))))


class BloomFilter:
    """A standard Bloom filter using double hashing."""

    def __init__(self, num_bits: int, num_hashes: int):
        if num_bits <= 0:
            raise ValueError("num_bits must be positive")
        if num_hashes <= 0:
            raise ValueError("num_hashes must be positive")
        self.num_bits = num_bits
        self.num_hashes = num_hashes
        self._bits = bytearray((num_bits + 7) // 8)

    @classmethod
    def with_capacity(cls, expected_keys: int,
                      bits_per_key: int = DEFAULT_BITS_PER_KEY) -> "BloomFilter":
        """Build a filter sized for ``expected_keys`` entries."""
        num_bits = max(64, expected_keys * bits_per_key)
        return cls(num_bits, optimal_hash_count(bits_per_key))

    def _positions(self, item: bytes) -> Iterable[int]:
        h1, h2 = _hash_pair(item)
        return [(h1 + i * h2) % self.num_bits
                for i in range(self.num_hashes)]

    def add(self, item: bytes) -> None:
        """Insert raw bytes into the filter."""
        bits = self._bits
        h1, h2 = _hash_pair(item)
        num_bits = self.num_bits
        for i in range(self.num_hashes):
            pos = (h1 + i * h2) % num_bits
            bits[pos >> 3] |= 1 << (pos & 7)

    def may_contain(self, item: bytes) -> bool:
        """False means definitely absent; True means possibly present."""
        bits = self._bits
        h1, h2 = _hash_pair(item)
        num_bits = self.num_bits
        for i in range(self.num_hashes):
            pos = (h1 + i * h2) % num_bits
            if not bits[pos >> 3] & (1 << (pos & 7)):
                return False
        return True

    def serialize(self) -> bytes:
        """Serialize for storage in a tablet footer."""
        header = self.num_bits.to_bytes(8, "little") + bytes([self.num_hashes])
        return header + bytes(self._bits)

    @classmethod
    def deserialize(cls, data: bytes) -> "BloomFilter":
        """Inverse of :meth:`serialize`."""
        if len(data) < 9:
            raise ValueError("corrupt Bloom filter serialization")
        num_bits = int.from_bytes(data[:8], "little")
        bloom = cls(num_bits, data[8])
        body = data[9:]
        if len(body) != len(bloom._bits):
            raise ValueError("corrupt Bloom filter serialization")
        bloom._bits = bytearray(body)
        return bloom


class KeyPrefixBloom:
    """Bloom filter over every prefix of hierarchical keys.

    ``add_key`` inserts each proper prefix of the encoded key columns,
    so ``may_contain_prefix`` can answer for any prefix length.  The
    timestamp column is excluded: prefix probes never include ts.
    """

    def __init__(self, expected_keys: int, key_width: int,
                 bits_per_key: int = DEFAULT_BITS_PER_KEY):
        # Each key contributes key_width prefix entries.
        self.key_width = max(1, key_width)
        self._filter = BloomFilter.with_capacity(
            max(1, expected_keys) * self.key_width, bits_per_key
        )

    @staticmethod
    def _encode(prefix: Sequence[bytes]) -> bytes:
        out = bytearray()
        for part in prefix:
            out += len(part).to_bytes(4, "little")
            out += part
        return bytes(out)

    def add_key(self, encoded_columns: Sequence[bytes]) -> None:
        """Insert all prefixes of one key (list of per-column encodings)."""
        buf = bytearray()
        for part in encoded_columns:
            buf += len(part).to_bytes(4, "little")
            buf += part
            self._filter.add(bytes(buf))

    def add_key_incremental(self, encoded_columns: Sequence[bytes],
                            state: list) -> None:
        """Like :meth:`add_key`, reusing work from the previous key.

        ``state`` is a caller-held scratch list (start with ``[]``)
        holding ``[parts, cumulative_buffers]`` from the previous call.
        Sorted keys repeat their leading columns for long runs, so only
        levels from the first differing column are re-encoded and
        re-hashed; the filter contents are identical to calling
        :meth:`add_key` for every key (the filter is a set).
        """
        if not state:
            state.append([None] * len(encoded_columns))
            state.append([b""] * len(encoded_columns))
        prev_parts, prev_bufs = state
        if len(prev_parts) != len(encoded_columns):
            prev_parts[:] = [None] * len(encoded_columns)
            prev_bufs[:] = [b""] * len(encoded_columns)
        add = self._filter.add
        changed = False
        for level, part in enumerate(encoded_columns):
            if not changed and part == prev_parts[level]:
                continue
            changed = True
            base = prev_bufs[level - 1] if level else b""
            buf = base + len(part).to_bytes(4, "little") + part
            prev_parts[level] = part
            prev_bufs[level] = buf
            add(buf)

    def may_contain_prefix(self, encoded_columns: Sequence[bytes]) -> bool:
        """May any stored key start with the given column prefix?"""
        if not encoded_columns:
            return True
        return self._filter.may_contain(self._encode(encoded_columns))

    def serialize(self) -> bytes:
        return bytes([self.key_width]) + self._filter.serialize()

    @classmethod
    def deserialize(cls, data: bytes) -> "KeyPrefixBloom":
        if not data:
            raise ValueError("corrupt KeyPrefixBloom serialization")
        bloom = cls.__new__(cls)
        bloom.key_width = data[0]
        bloom._filter = BloomFilter.deserialize(data[1:])
        return bloom
