"""Xorshift pseudorandom number generators.

The paper (Section 5.1.1) generates all benchmark input data with a
xorshift PRNG, "effectively disabling LittleTable's LZO compression"
because the output is incompressible.  We reproduce the same approach so
that our block compression likewise has no effect on benchmark numbers.

``Xorshift64Star`` is Marsaglia's xorshift64* generator: fast, simple,
and good enough statistical quality for workload generation.  It is
deliberately *not* ``random.Random`` so that benchmark data is bit-for-
bit reproducible across Python versions.
"""

from __future__ import annotations

_MASK64 = (1 << 64) - 1
_STAR_MULTIPLIER = 0x2545F4914F6CDD1D


class Xorshift64Star:
    """Marsaglia xorshift64* with a 64-bit state.

    >>> rng = Xorshift64Star(seed=1)
    >>> rng.next_u64() == Xorshift64Star(seed=1).next_u64()
    True
    """

    def __init__(self, seed: int = 0x9E3779B97F4A7C15):
        if seed == 0:
            # A zero state would be a fixed point of the recurrence.
            seed = 0x9E3779B97F4A7C15
        self._state = seed & _MASK64

    def next_u64(self) -> int:
        """Return the next 64-bit unsigned pseudorandom value."""
        x = self._state
        x ^= (x >> 12) & _MASK64
        x ^= (x << 25) & _MASK64
        x ^= (x >> 27) & _MASK64
        self._state = x & _MASK64
        return (self._state * _STAR_MULTIPLIER) & _MASK64

    def next_u32(self) -> int:
        """Return the next 32-bit unsigned pseudorandom value."""
        return self.next_u64() >> 32

    def next_below(self, bound: int) -> int:
        """Return a pseudorandom int in ``[0, bound)``."""
        if bound <= 0:
            raise ValueError("bound must be positive")
        return self.next_u64() % bound

    def next_float(self) -> float:
        """Return a pseudorandom float in ``[0, 1)``."""
        return self.next_u64() / float(1 << 64)

    def next_bytes(self, length: int) -> bytes:
        """Return ``length`` pseudorandom (incompressible) bytes."""
        if length < 0:
            raise ValueError("length must be non-negative")
        words = (length + 7) // 8
        buf = bytearray()
        for _ in range(words):
            buf += self.next_u64().to_bytes(8, "little")
        return bytes(buf[:length])

    def shuffle(self, items: list) -> None:
        """Fisher-Yates shuffle of ``items`` in place."""
        for i in range(len(items) - 1, 0, -1):
            j = self.next_below(i + 1)
            items[i], items[j] = items[j], items[i]
