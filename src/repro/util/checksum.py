"""Content checksums for the v2.1 storage format.

Every block payload, compressed footer, and descriptor body written
since format v2.1 carries a 32-bit CRC, verified on read.  Production
LittleTable would use hardware CRC32C (Castagnoli); the stdlib only
ships the CRC32 polynomial, so - exactly like zlib standing in for
LZO1X-1 (DESIGN.md §2) - ``zlib.crc32`` stands in here.  Both are
32-bit CRCs with the same single-bit / burst detection guarantees;
only the polynomial (and hardware acceleration) differs.  A
pure-Python Castagnoli table would be hundreds of times slower and
blow the <5% read-overhead budget the chaos CI job enforces.
"""

from __future__ import annotations

import zlib

CRC_BYTES = 4


def crc32c(data: bytes, value: int = 0) -> int:
    """32-bit content CRC (CRC32 standing in for CRC32C)."""
    return zlib.crc32(data, value) & 0xFFFFFFFF
