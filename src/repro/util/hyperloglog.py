"""HyperLogLog cardinality estimation.

Section 4.1.2 of the paper: "several features within Dashboard track
clients using HyperLogLog, a fixed-size, probabilistic representation
of a set that permits unions and provides cardinality estimates with
bounded relative error."  Aggregators store serialized HLL sketches as
blob values in LittleTable; the paper's Figure 8 notes these are the
largest values in production (up to 75 kB).

This is the classic Flajolet et al. 2007 estimator with the standard
small-range (linear counting) and large-range corrections.
"""

from __future__ import annotations

import hashlib
import math
from typing import Iterable


class HyperLogLog:
    """A HyperLogLog sketch with ``2**precision`` one-byte registers."""

    def __init__(self, precision: int = 12):
        if not 4 <= precision <= 16:
            raise ValueError("precision must be in [4, 16]")
        self.precision = precision
        self.num_registers = 1 << precision
        self._registers = bytearray(self.num_registers)

    @property
    def _alpha(self) -> float:
        m = self.num_registers
        if m == 16:
            return 0.673
        if m == 32:
            return 0.697
        if m == 64:
            return 0.709
        return 0.7213 / (1 + 1.079 / m)

    @staticmethod
    def _hash(item: bytes) -> int:
        return int.from_bytes(hashlib.sha1(item).digest()[:8], "big")

    def add(self, item: bytes) -> None:
        """Add one item (raw bytes) to the sketch."""
        hashed = self._hash(item)
        index = hashed >> (64 - self.precision)
        remaining = hashed & ((1 << (64 - self.precision)) - 1)
        # Rank = position of the leftmost 1-bit in the remaining bits.
        rank = (64 - self.precision) - remaining.bit_length() + 1
        if rank > self._registers[index]:
            self._registers[index] = rank

    def add_all(self, items: Iterable[bytes]) -> None:
        """Add many items."""
        for item in items:
            self.add(item)

    def cardinality(self) -> float:
        """Estimate the number of distinct items added."""
        m = self.num_registers
        raw = self._alpha * m * m / sum(2.0 ** -r for r in self._registers)
        if raw <= 2.5 * m:
            zeros = self._registers.count(0)
            if zeros:
                return m * math.log(m / zeros)
        two_to_32 = float(1 << 32)
        if raw > two_to_32 / 30.0:
            return -two_to_32 * math.log(1.0 - raw / two_to_32)
        return raw

    def union(self, other: "HyperLogLog") -> "HyperLogLog":
        """Return a new sketch representing the union of both sets."""
        if other.precision != self.precision:
            raise ValueError("cannot union sketches of different precision")
        result = HyperLogLog(self.precision)
        result._registers = bytearray(
            max(a, b) for a, b in zip(self._registers, other._registers)
        )
        return result

    def serialize(self) -> bytes:
        """Serialize to bytes suitable for storing as a blob column."""
        return bytes([self.precision]) + bytes(self._registers)

    @classmethod
    def deserialize(cls, data: bytes) -> "HyperLogLog":
        """Inverse of :meth:`serialize`."""
        if not data:
            raise ValueError("empty HyperLogLog serialization")
        sketch = cls(precision=data[0])
        body = data[1:]
        if len(body) != sketch.num_registers:
            raise ValueError("corrupt HyperLogLog serialization")
        sketch._registers = bytearray(body)
        return sketch
