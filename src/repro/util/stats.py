"""Small statistics helpers used by the evaluation harness.

The paper's microbenchmarks report means with 95% confidence intervals
computed from the Student's t-distribution (Section 5.1.1), Figure 6 is
a linear regression of latency on tablet count, and Figures 7-10 are
cumulative distribution functions.  This module provides exactly those
tools, with no dependency on numpy/scipy so that the core library stays
dependency-free (the benchmark suite may still use numpy for speed).
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence, Tuple


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean.  Raises on an empty sequence."""
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def sample_stddev(values: Sequence[float]) -> float:
    """Sample (n-1) standard deviation; 0.0 for fewer than two values."""
    n = len(values)
    if n < 2:
        return 0.0
    mu = mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / (n - 1))


# Two-sided 97.5% quantiles of the t-distribution by degrees of freedom.
# Enough entries for the paper's 26-trial benchmarks; beyond the table we
# use the normal approximation.
_T_975 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447,
    7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228, 11: 2.201, 12: 2.179,
    13: 2.160, 14: 2.145, 15: 2.131, 16: 2.120, 17: 2.110, 18: 2.101,
    19: 2.093, 20: 2.086, 21: 2.080, 22: 2.074, 23: 2.069, 24: 2.064,
    25: 2.060, 26: 2.056, 27: 2.052, 28: 2.048, 29: 2.045, 30: 2.042,
    40: 2.021, 60: 2.000, 120: 1.980,
}


def t_critical_975(dof: int) -> float:
    """Two-sided 95% t critical value for ``dof`` degrees of freedom."""
    if dof <= 0:
        raise ValueError("degrees of freedom must be positive")
    if dof in _T_975:
        return _T_975[dof]
    for limit in (40, 60, 120):
        if dof < limit:
            return _T_975[limit]
    return 1.96


def confidence_interval_95(values: Sequence[float]) -> Tuple[float, float]:
    """Return ``(mean, half_width)`` of the 95% CI, as in the paper."""
    mu = mean(values)
    n = len(values)
    if n < 2:
        return mu, 0.0
    half = t_critical_975(n - 1) * sample_stddev(values) / math.sqrt(n)
    return mu, half


def percentile(sorted_values: Sequence[float], fraction: float) -> float:
    """Linear-interpolated percentile of an already-sorted sequence."""
    if not sorted_values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be within [0, 1]")
    if len(sorted_values) == 1:
        return sorted_values[0]
    rank = fraction * (len(sorted_values) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return sorted_values[low]
    weight = rank - low
    return sorted_values[low] * (1 - weight) + sorted_values[high] * weight


def cdf_points(values: Iterable[float]) -> List[Tuple[float, float]]:
    """Return (value, cumulative_fraction) points of the empirical CDF."""
    ordered = sorted(values)
    if not ordered:
        return []
    n = len(ordered)
    return [(v, (i + 1) / n) for i, v in enumerate(ordered)]


def cdf_at(values: Sequence[float], threshold: float) -> float:
    """Fraction of ``values`` that are <= ``threshold``."""
    if not values:
        raise ValueError("cdf of empty sequence")
    return sum(1 for v in values if v <= threshold) / len(values)


def linear_regression(xs: Sequence[float], ys: Sequence[float]) -> Tuple[float, float]:
    """Least-squares fit ``y = slope * x + intercept``.

    Returns ``(slope, intercept)``.  Used to reproduce Figure 6's
    ms-per-tablet slopes.
    """
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have the same length")
    if len(xs) < 2:
        raise ValueError("regression needs at least two points")
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var = sum((x - mean_x) ** 2 for x in xs)
    if var == 0:
        raise ValueError("regression undefined for constant x")
    slope = cov / var
    return slope, mean_y - slope * mean_x
