"""Shared utility substrates: clocks, PRNG, skip list, statistics,
HyperLogLog, Bloom filters, and varint codecs."""

from .bloom import BloomFilter, KeyPrefixBloom
from .clock import (
    Clock,
    MICROS_PER_DAY,
    MICROS_PER_HOUR,
    MICROS_PER_MINUTE,
    MICROS_PER_SECOND,
    MICROS_PER_WEEK,
    SystemClock,
    VirtualClock,
    micros_from_seconds,
    seconds_from_micros,
)
from .hyperloglog import HyperLogLog
from .skiplist import SkipList
from .xorshift import Xorshift64Star

__all__ = [
    "BloomFilter",
    "KeyPrefixBloom",
    "Clock",
    "SystemClock",
    "VirtualClock",
    "HyperLogLog",
    "SkipList",
    "Xorshift64Star",
    "micros_from_seconds",
    "seconds_from_micros",
    "MICROS_PER_SECOND",
    "MICROS_PER_MINUTE",
    "MICROS_PER_HOUR",
    "MICROS_PER_DAY",
    "MICROS_PER_WEEK",
]
