"""Variable-length integer encoding for the on-disk row format.

LittleTable stores rows in a compact binary format inside 64 kB blocks.
We use LEB128-style varints for unsigned quantities (lengths, counts)
and zigzag varints for signed column values, the same building blocks
used by most LSM storage formats.
"""

from __future__ import annotations

from typing import Tuple


def encode_uvarint(value: int) -> bytes:
    """Encode a non-negative int as a LEB128 varint."""
    if value < 0:
        raise ValueError("uvarint cannot encode negative values")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_uvarint(buf: bytes, offset: int = 0) -> Tuple[int, int]:
    """Decode a varint from ``buf`` at ``offset``.

    Returns ``(value, next_offset)``.
    """
    result = 0
    shift = 0
    pos = offset
    while True:
        if pos >= len(buf):
            raise ValueError("truncated uvarint")
        byte = buf[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 70:
            raise ValueError("uvarint too long")


def zigzag_encode(value: int) -> int:
    """Map a signed int to an unsigned one with small magnitudes small."""
    return (value << 1) ^ (value >> 63) if value < 0 else value << 1


def zigzag_decode(value: int) -> int:
    """Inverse of :func:`zigzag_encode`."""
    return (value >> 1) ^ -(value & 1)


def encode_svarint(value: int) -> bytes:
    """Encode a signed int as a zigzag varint."""
    return encode_uvarint(zigzag_encode(value))


def decode_svarint(buf: bytes, offset: int = 0) -> Tuple[int, int]:
    """Decode a zigzag varint.  Returns ``(value, next_offset)``."""
    raw, pos = decode_uvarint(buf, offset)
    return zigzag_decode(raw), pos
