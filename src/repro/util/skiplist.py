"""A skip list: the ordered map behind in-memory tablets.

The paper implements in-memory tablets as balanced binary trees
(Section 3.2).  A skip list provides the same O(log n) insert and
ordered traversal with a much simpler implementation, which matches
LittleTable's stated bias toward ease of implementation (Section 7).

Keys may be any mutually-comparable values (in practice, tuples of
column values).  Keys are unique; inserting an existing key fails
unless ``replace=True`` is given.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple

from .xorshift import Xorshift64Star

_MAX_LEVEL = 24


class _Node:
    __slots__ = ("key", "value", "forward")

    def __init__(self, key: Any, value: Any, level: int):
        self.key = key
        self.value = value
        self.forward: List[Optional["_Node"]] = [None] * level


class SkipList:
    """An ordered map with O(log n) expected insert and seek.

    >>> sl = SkipList()
    >>> sl.insert(2, "b") and sl.insert(1, "a")
    True
    >>> list(sl.items())
    [(1, 'a'), (2, 'b')]
    """

    def __init__(self, seed: int = 0xC0FFEE):
        self._head = _Node(None, None, _MAX_LEVEL)
        self._level = 1
        self._length = 0
        self._rng = Xorshift64Star(seed)

    def __len__(self) -> int:
        return self._length

    def _random_level(self) -> int:
        # Each level is half as likely as the one below (p = 1/2).
        level = 1
        bits = self._rng.next_u64()
        while bits & 1 and level < _MAX_LEVEL:
            level += 1
            bits >>= 1
        return level

    def _find_predecessors(self, key: Any) -> List[_Node]:
        """Return, per level, the last node with a key strictly < key."""
        update: List[_Node] = [self._head] * _MAX_LEVEL
        node = self._head
        for level in range(self._level - 1, -1, -1):
            nxt = node.forward[level]
            while nxt is not None and nxt.key < key:
                node = nxt
                nxt = node.forward[level]
            update[level] = node
        return update

    def insert(self, key: Any, value: Any, replace: bool = False) -> bool:
        """Insert ``key``.  Returns False if the key already exists
        (and ``replace`` is False); the existing value is kept."""
        update = self._find_predecessors(key)
        candidate = update[0].forward[0]
        if candidate is not None and candidate.key == key:
            if replace:
                candidate.value = value
                return True
            return False
        level = self._random_level()
        if level > self._level:
            self._level = level
        node = _Node(key, value, level)
        for i in range(level):
            node.forward[i] = update[i].forward[i]
            update[i].forward[i] = node
        self._length += 1
        return True

    def get(self, key: Any, default: Any = None) -> Any:
        """Return the value stored for ``key``, or ``default``."""
        node = self._find_predecessors(key)[0].forward[0]
        if node is not None and node.key == key:
            return node.value
        return default

    def __contains__(self, key: Any) -> bool:
        node = self._find_predecessors(key)[0].forward[0]
        return node is not None and node.key == key

    def first_key(self) -> Any:
        """Return the smallest key, or None if empty."""
        node = self._head.forward[0]
        return node.key if node is not None else None

    def last_key(self) -> Any:
        """Return the largest key, or None if empty.  O(log n)."""
        node = self._head
        for level in range(self._level - 1, -1, -1):
            while node.forward[level] is not None:
                node = node.forward[level]
        return node.key if node is not self._head else None

    def items(self) -> Iterator[Tuple[Any, Any]]:
        """Iterate all (key, value) pairs in ascending key order."""
        node = self._head.forward[0]
        while node is not None:
            yield node.key, node.value
            node = node.forward[0]

    def items_from(self, key: Any, inclusive: bool = True) -> Iterator[Tuple[Any, Any]]:
        """Iterate pairs with key >= ``key`` (or > if not inclusive)."""
        node = self._find_predecessors(key)[0].forward[0]
        if node is not None and not inclusive and node.key == key:
            node = node.forward[0]
        while node is not None:
            yield node.key, node.value
            node = node.forward[0]

    def keys(self) -> Iterator[Any]:
        """Iterate all keys in ascending order."""
        for key, _value in self.items():
            yield key
