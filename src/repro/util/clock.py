"""Clock abstractions.

LittleTable's behaviour depends heavily on wall-clock time: rows default
their timestamp to "now", in-memory tablets are flushed after a maximum
age, merges are delayed by pseudorandom fractions of a time period, and
rows age out after a TTL.  To make all of that testable and to let the
benchmark harness replay months of production time in seconds, every
component takes a :class:`Clock` rather than calling ``time.time()``.

Timestamps throughout the code base are **microseconds since the Unix
epoch**, stored as Python ints.  The paper's timestamp column type has
the same resolution requirements (it must order rows uniquely within a
primary key), and integer microseconds avoid float rounding surprises.
"""

from __future__ import annotations

import time

MICROS_PER_SECOND = 1_000_000
MICROS_PER_MINUTE = 60 * MICROS_PER_SECOND
MICROS_PER_HOUR = 60 * MICROS_PER_MINUTE
MICROS_PER_DAY = 24 * MICROS_PER_HOUR
MICROS_PER_WEEK = 7 * MICROS_PER_DAY


def micros_from_seconds(seconds: float) -> int:
    """Convert seconds (float ok) to integer microseconds."""
    return int(round(seconds * MICROS_PER_SECOND))


def seconds_from_micros(micros: int) -> float:
    """Convert integer microseconds to float seconds."""
    return micros / MICROS_PER_SECOND


class Clock:
    """Interface: something that can report the current time in micros."""

    def now(self) -> int:
        """Return the current time in microseconds since the epoch."""
        raise NotImplementedError


class SystemClock(Clock):
    """The real wall clock."""

    def now(self) -> int:
        return micros_from_seconds(time.time())


class VirtualClock(Clock):
    """A manually-advanced clock for tests and simulations.

    The clock never moves on its own; callers advance it explicitly.
    This makes period binning, TTL expiry, and flush-age behaviour fully
    deterministic.
    """

    def __init__(self, start: int = 0):
        self._now = start

    def now(self) -> int:
        return self._now

    def advance(self, micros: int) -> int:
        """Move the clock forward by ``micros`` and return the new time."""
        if micros < 0:
            raise ValueError("cannot move a VirtualClock backwards")
        self._now += micros
        return self._now

    def advance_seconds(self, seconds: float) -> int:
        """Move the clock forward by ``seconds`` and return the new time."""
        return self.advance(micros_from_seconds(seconds))

    def set(self, now: int) -> None:
        """Jump the clock to an absolute time (must not move backwards)."""
        if now < self._now:
            raise ValueError("cannot move a VirtualClock backwards")
        self._now = now
