"""littletable - a SQL shell over a LittleTable data directory.

Usage:

    python -m repro.cli --data /var/lib/littletable            # REPL
    python -m repro.cli --data ./lt -e "SHOW TABLES"           # one-shot
    echo "SELECT * FROM usage LIMIT 5" | python -m repro.cli --data ./lt
    python -m repro.cli stats --connect 127.0.0.1:7878         # live stats
    python -m repro.cli stats --data ./lt --json               # offline

(The ``ltdb`` console script installs the same entry point.)

The data directory holds real files (descriptors and tablets) via
:class:`~repro.disk.storage.FileStorage`, so databases persist across
invocations - create a table in one run, query it in the next.  With
no ``--data``, an in-memory database lasts for the session.

Statements are the SQL subset of :mod:`repro.sqlapi` plus shell
commands ``.help``, ``.tables``, ``.maintenance``, and ``.quit``.

The ``stats`` subcommand renders the observability registry - the
very same ``db.metrics.snapshot()`` view the STATS protocol command
and ``LittleTableClient.stats()`` return.  ``--connect host:port``
reads a running server's live registry over TCP; ``--data`` opens the
directory in process (engine counters start at zero in a fresh
process, but table shape summaries are always meaningful).
"""

from __future__ import annotations

import argparse
import sys
from typing import Iterable, Optional, TextIO

from .core.database import LittleTable
from .core.errors import LittleTableError
from .disk.storage import FileStorage
from .disk.vfs import SimulatedDisk
from .sqlapi.executor import SqlResult, SqlSession
from .sqlapi.lexer import SqlError

_HELP = """\
Statements end with ';'.  Supported SQL:
  CREATE TABLE t (col TYPE [DEFAULT v], ..., PRIMARY KEY (.., ts)) [WITH TTL s]
  INSERT INTO t (cols) VALUES (...), (...)
  SELECT cols|aggregates FROM t [WHERE ...] [GROUP BY ...]
         [ORDER BY KEY [DESC]] [LIMIT n]
  DELETE FROM t WHERE <key prefix equalities>
  FLUSH t [BEFORE ts] | ALTER TABLE ... | DROP TABLE t
  SHOW TABLES | DESCRIBE t
Shell commands:
  .help         this text
  .tables       list tables
  .maintenance  run one flush/merge/expiry tick
  .stats [t..]  table shape and activity summaries
  .metrics      engine metrics registry snapshot + recent operations
  .fsck         check descriptor/tablet integrity
  .quit         exit
"""


def format_result(result: SqlResult) -> str:
    """Render a result like the benchmark tables."""
    if not result.columns:
        return f"ok ({result.rows_affected} affected)"
    if not result.rows:
        return "(no rows)"
    rendered = [[_render_cell(cell) for cell in row] for row in result.rows]
    widths = [len(name) for name in result.columns]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(name.ljust(width)
                  for name, width in zip(result.columns, widths)),
        "  ".join("-" * width for width in widths),
    ]
    lines.extend(
        "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
        for row in rendered
    )
    lines.append(f"({len(result.rows)} rows)")
    return "\n".join(lines)


def _render_cell(cell) -> str:
    if isinstance(cell, bytes):
        if len(cell) > 16:
            return f"X'{cell[:16].hex()}...' ({len(cell)} bytes)"
        return f"X'{cell.hex()}'"
    if isinstance(cell, float):
        return f"{cell:g}"
    return str(cell)


class Shell:
    """Reads statements, executes them, prints results."""

    def __init__(self, db: LittleTable, out: Optional[TextIO] = None):
        self.db = db
        self.session = SqlSession(db)
        self.out = out if out is not None else sys.stdout
        self._buffer = ""

    def _print(self, text: str) -> None:
        print(text, file=self.out)

    def execute_line(self, line: str) -> bool:
        """Run one statement or shell command.

        Returns False when the shell should exit.
        """
        line = line.strip()
        if not line:
            return True
        if line in (".quit", ".exit"):
            return False
        if line == ".help":
            self._print(_HELP)
            return True
        if line == ".tables":
            names = self.db.table_names()
            self._print("\n".join(names) if names else "(no tables)")
            return True
        if line == ".fsck":
            from .core.check import check_database

            findings = check_database(self.db)
            total = sum(len(found) for found in findings.values())
            if total == 0:
                self._print("ok: all tables healthy")
            else:
                for _table, found in sorted(findings.items()):
                    for issue in found:
                        self._print(str(issue))
            return True
        if line == ".stats" or line.startswith(".stats "):
            names = (line.split(None, 1)[1].split()
                     if " " in line else self.db.table_names())
            for name in names:
                try:
                    summary = self.db.table(name).stats_summary()
                except LittleTableError as exc:
                    self._print(f"error: {exc}")
                    continue
                self._print(f"{name}:")
                for key, value in summary.items():
                    if key == "name":
                        continue
                    self._print(f"  {key}: {value}")
            if not names:
                self._print("(no tables)")
            return True
        if line == ".metrics":
            from .dashboard.metrics_view import metrics_page, \
                render_metrics_page

            self._print(render_metrics_page(metrics_page(self.db)))
            return True
        if line == ".maintenance":
            totals = self.db.maintenance().totals()
            self._print(f"flushed {totals.flushed}, merged {totals.merged}, "
                        f"expired {totals.expired}")
            for message in totals.errors:
                self._print(f"error: {message}")
            return True
        if line.startswith("."):
            self._print(f"unknown command {line!r} (try .help)")
            return True
        try:
            result = self.session.execute(line)
        except (SqlError, LittleTableError) as exc:
            self._print(f"error: {exc}")
            return True
        self._print(format_result(result))
        return True

    def feed(self, line: str) -> bool:
        """Feed one input line; ';' terminates statements, shell
        commands (leading '.') need no terminator.  Partial statements
        accumulate across calls.  Returns False after ``.quit``.
        """
        self._buffer += line
        if self._buffer.lstrip().startswith("."):
            command = self._buffer.strip()
            self._buffer = ""
            return self.execute_line(command)
        while ";" in self._buffer:
            statement, _sep, self._buffer = self._buffer.partition(";")
            if not self.execute_line(statement):
                return False
        return True

    def run(self, lines: Iterable[str]) -> bool:
        """Feed many lines (script mode); flushes a trailing partial
        statement at EOF.  Returns False if a ``.quit`` fired."""
        for line in lines:
            if not self.feed(line):
                return False
        if self._buffer.strip():
            remaining = self._buffer
            self._buffer = ""
            return self.execute_line(remaining)
        return True


def open_database(data_dir: Optional[str],
                  durability=None) -> LittleTable:
    """A persistent database over ``data_dir``, or in-memory."""
    kwargs = {} if durability is None else {"durability": durability}
    if data_dir is None:
        return LittleTable(**kwargs)
    return LittleTable(disk=SimulatedDisk(FileStorage(data_dir)), **kwargs)


def _parse_durability(args) -> Optional["object"]:
    """Fold the serve durability flags into one policy (or None)."""
    if (args.durability is None and args.group_commit_ms is None
            and args.wal_segment_bytes is None):
        return None
    from .core.durability import DurabilityPolicy

    fields = {}
    if args.durability is not None:
        fields["tier"] = args.durability
    if args.group_commit_ms is not None:
        fields["group_commit_ms"] = args.group_commit_ms
    if args.wal_segment_bytes is not None:
        fields["wal_segment_bytes"] = args.wal_segment_bytes
    policy = DurabilityPolicy(**fields)
    policy.validate()
    return policy


def stats_main(argv: list) -> int:
    """The ``stats`` subcommand: render the registry snapshot.

    With ``--connect`` the snapshot comes from a live server via the
    STATS protocol command; with ``--data`` (or nothing) a database is
    opened in process and its own registry is snapshotted.  Either
    way it is the same view as ``db.metrics.snapshot()``.
    """
    parser = argparse.ArgumentParser(
        prog="littletable stats",
        description="show the engine's observability registry")
    parser.add_argument("--data", metavar="DIR", default=None,
                        help="data directory to open in process")
    parser.add_argument("--connect", metavar="HOST:PORT", default=None,
                        help="read a running server's live registry")
    parser.add_argument("--json", action="store_true",
                        help="emit the raw snapshot as JSON")
    args = parser.parse_args(argv)
    if args.connect is not None:
        from .net.client import LittleTableClient

        host, _sep, port = args.connect.rpartition(":")
        if not port.isdigit():
            print(f"error: --connect wants HOST:PORT, got {args.connect!r}",
                  file=sys.stderr)
            return 2
        try:
            with LittleTableClient(host or "127.0.0.1", int(port)) as client:
                page = {"metrics": client.stats(),
                        "tables": client.table_stats(), "spans": [],
                        "health": client.health()}
        except OSError as exc:
            print(f"error: cannot reach {args.connect}: {exc}",
                  file=sys.stderr)
            return 1
    else:
        from .dashboard.metrics_view import metrics_page

        with open_database(args.data) as db:
            page = metrics_page(db)
    from .dashboard.metrics_view import (admission_summary, cache_summary,
                                         codec_summary, fault_summary,
                                         maintenance_summary,
                                         pushdown_summary, sched_summary)

    page["cache"] = cache_summary(page.get("metrics", {}))
    page["codec"] = codec_summary(page.get("metrics", {}))
    page["maintenance"] = maintenance_summary(page.get("metrics", {}))
    page["fault"] = fault_summary(page.get("metrics", {}))
    page["query"] = pushdown_summary(page.get("metrics", {}))
    page["sched"] = sched_summary(page.get("metrics", {}))
    page["admission"] = admission_summary(page.get("metrics", {}))
    if args.json:
        import json as _json

        print(_json.dumps(page, indent=2, sort_keys=True))
    else:
        from .dashboard.metrics_view import render_metrics_page

        print(render_metrics_page(page))
    return 0


def fsck_main(argv: list) -> int:
    """The ``fsck`` subcommand: offline integrity check and repair.

    Runs the startup scrub (crash-garbage collection + trailer/footer
    verification) when opening the directory, then the exhaustive
    :func:`~repro.core.check.check_database` row-level verification.
    ``--repair`` additionally quarantines every hot tablet with an
    error-severity finding.  Exit status 0 = healthy, 1 = problems
    found (or repaired), 2 = usage/corrupt-root errors.
    """
    parser = argparse.ArgumentParser(
        prog="littletable fsck",
        description="verify descriptor and tablet integrity")
    parser.add_argument("--data", metavar="DIR", required=True,
                        help="data directory to check")
    parser.add_argument("--repair", action="store_true",
                        help="quarantine tablets with error findings")
    args = parser.parse_args(argv)
    from .core.check import ERROR, check_database, repair_database
    from .core.config import EngineConfig
    from .core.errors import CorruptTabletError

    # Without --repair the check is strictly read-only: no startup
    # scrub (it deletes crash garbage and moves damaged files) and no
    # read-path quarantine.
    config = EngineConfig(startup_scrub=args.repair,
                          quarantine_on_corruption=args.repair)
    try:
        db = LittleTable(disk=SimulatedDisk(FileStorage(args.data)),
                         config=config)
    except CorruptTabletError as exc:
        print(f"fsck: unrecoverable: {exc}", file=sys.stderr)
        return 2
    with db:
        scrub = db.last_scrub
        for temp in scrub.temps_removed:
            print(f"scrub: removed stale descriptor temp {temp}")
        for orphan in scrub.orphans_removed:
            print(f"scrub: removed orphan file {orphan}")
        for moved in scrub.quarantined:
            print(f"scrub: quarantined {moved}")
        for issue in scrub.issues:
            print(f"scrub: {issue}")
        findings = check_database(db)
        problems = 0
        for _table, found in sorted(findings.items()):
            for issue in found:
                problems += issue.severity == ERROR
                print(str(issue))
        if args.repair and problems:
            for table_name, moved in sorted(repair_database(db).items()):
                for filename in moved:
                    print(f"repaired: {table_name}: quarantined {filename}")
        if problems == 0 and scrub.clean:
            print("ok: all tables healthy")
            return 0
        return 1


def serve_main(argv: list, *, stop_event=None, on_ready=None) -> int:
    """The ``serve`` subcommand: run a LittleTable server.

    Default front end is the asyncio pipelined server over a
    :class:`~repro.net.shard.ShardRouter` (``--shards N``; N=1 still
    routes, through a single worker).  ``--legacy`` selects the
    thread-per-connection front end over a single engine - the v1
    deployment shape - and rejects ``--shards`` > 1.

    ``--durability TIER`` (with ``--group-commit-ms`` and
    ``--wal-segment-bytes``) sets the served engines' default
    :class:`~repro.core.durability.DurabilityPolicy`.  ``--follow
    HOST:PORT`` runs a warm standby instead: a single read-only
    engine that streams sealed WAL segments and tablet manifests from
    the primary at that address, serves ``query``/``latest``/``stats``
    locally, and reports replication lag through ``wal_status``.

    ``stop_event``/``on_ready`` are test hooks: ``on_ready(server)``
    fires once the socket is bound, and the command exits when
    ``stop_event`` is set (instead of only on Ctrl-C).
    """
    parser = argparse.ArgumentParser(
        prog="littletable serve",
        description="serve a database over the wire protocol")
    parser.add_argument("--data", metavar="DIR", default=None,
                        help="data directory (default: in-memory); "
                             "sharded servers use DIR/shard-NN")
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default: 127.0.0.1)")
    parser.add_argument("--port", type=int, default=7421,
                        help="bind port (default: 7421; 0 = ephemeral)")
    parser.add_argument("--shards", type=int, default=4, metavar="N",
                        help="engine workers to partition tables "
                             "across (default: 4)")
    parser.add_argument("--legacy", action="store_true",
                        help="thread-per-connection front end, single "
                             "engine (protocol still negotiates v2)")
    parser.add_argument("--maintenance", action="store_true",
                        help="run the background maintenance scheduler")
    parser.add_argument("--durability", default=None,
                        choices=["none", "wal", "replicated"],
                        help="default durability tier for new tables "
                             "(default: none, the paper's prefix "
                             "durability)")
    parser.add_argument("--group-commit-ms", type=float, default=None,
                        metavar="MS",
                        help="WAL group-commit fsync interval")
    parser.add_argument("--wal-segment-bytes", type=int, default=None,
                        metavar="BYTES",
                        help="WAL segment size before sealing")
    parser.add_argument("--follow", metavar="HOST:PORT", default=None,
                        help="run as a warm standby replicating from "
                             "a primary (read-only, single engine)")
    args = parser.parse_args(argv)
    if args.shards < 1:
        print("error: --shards must be >= 1", file=sys.stderr)
        return 2
    try:
        durability = _parse_durability(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    from .core.maintenance import MaintenancePolicy

    policy = MaintenancePolicy() if args.maintenance else None
    if args.follow is not None:
        if args.shards != parser.get_default("shards") and args.shards != 1:
            print("error: --follow runs a single-engine standby; "
                  "drop --shards", file=sys.stderr)
            return 2
        return _serve_follower(args, stop_event=stop_event,
                               on_ready=on_ready)
    if args.legacy:
        if args.shards != parser.get_default("shards") and args.shards != 1:
            print("error: --legacy serves a single engine; "
                  "drop --shards", file=sys.stderr)
            return 2
        from .net.server import LittleTableServer

        db = open_database(args.data, durability=durability)
        server = LittleTableServer(db, host=args.host, port=args.port,
                                   policy=policy)
    else:
        from .net.async_server import AsyncLittleTableServer
        from .net.shard import ShardRouter

        db = ShardRouter(shards=args.shards, data_dir=args.data,
                         durability=durability)
        server = AsyncLittleTableServer(db, host=args.host,
                                        port=args.port, policy=policy)
    import threading

    if stop_event is None:
        stop_event = threading.Event()
    try:
        with server:
            host, port = server.address
            shape = ("legacy threaded, 1 engine" if args.legacy
                     else f"async pipelined, {args.shards} shard(s)")
            print(f"serving on {host}:{port} ({shape}); Ctrl-C to stop",
                  flush=True)
            if on_ready is not None:
                on_ready(server)
            while not stop_event.wait(timeout=0.5):
                pass
    except KeyboardInterrupt:
        print("shutting down", flush=True)
    finally:
        db.close()
    return 0


def _serve_follower(args, *, stop_event=None, on_ready=None) -> int:
    """``serve --follow``: a warm standby next to a read-only server."""
    primary_host, _sep, primary_port = args.follow.rpartition(":")
    if not primary_port.isdigit():
        print(f"error: --follow wants HOST:PORT, got {args.follow!r}",
              file=sys.stderr)
        return 2
    import threading

    from .net.replica import Follower
    from .net.server import LittleTableServer

    db = open_database(args.data)
    follower = Follower(db, primary_host or "127.0.0.1",
                        int(primary_port))
    server = LittleTableServer(db, host=args.host, port=args.port)
    if stop_event is None:
        stop_event = threading.Event()
    try:
        follower.start()
        with server:
            host, port = server.address
            print(f"standby on {host}:{port} following {args.follow} "
                  f"(read-only); Ctrl-C to stop", flush=True)
            if on_ready is not None:
                on_ready(server)
            while not stop_event.wait(timeout=0.5):
                pass
    except KeyboardInterrupt:
        print("shutting down", flush=True)
    finally:
        follower.stop()
        db.close()
    return 0


def main(argv: Optional[list] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "stats":
        return stats_main(argv[1:])
    if argv and argv[0] == "fsck":
        return fsck_main(argv[1:])
    if argv and argv[0] == "serve":
        return serve_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="littletable",
        description="SQL shell for the LittleTable reproduction "
                    "(subcommands: stats, fsck, serve)")
    parser.add_argument("--data", metavar="DIR", default=None,
                        help="data directory (default: in-memory)")
    parser.add_argument("-e", "--execute", metavar="SQL", action="append",
                        help="execute a statement and exit (repeatable)")
    args = parser.parse_args(argv)
    db = open_database(args.data)
    shell = Shell(db)
    if args.execute:
        for statement in args.execute:
            shell.execute_line(statement.rstrip(";"))
        db.flush_all()
        return 0
    if sys.stdin.isatty():
        print("LittleTable reproduction shell - .help for help, "
              ".quit to exit")
        try:
            while True:
                prompt = "littletable> " if not shell._buffer else "... "
                if not shell.feed(input(prompt) + "\n"):
                    break
        except (EOFError, KeyboardInterrupt):
            pass
    else:
        shell.run(sys.stdin)
    db.flush_all()
    return 0


if __name__ == "__main__":
    sys.exit(main())
