"""repro: a reproduction of "LittleTable: A Time-Series Database and
Its Uses" (SIGMOD 2017).

Subpackages:

* ``repro.core`` - the LittleTable engine (the paper's contribution);
* ``repro.disk`` - the simulated spinning-disk substrate;
* ``repro.sqlapi`` - the SQL front end (the paper's SQLite adaptor role);
* ``repro.net`` - the TCP client/server protocol;
* ``repro.dashboard`` - the three applications of Section 4;
* ``repro.workloads`` - workload and synthetic-fleet generators;
* ``repro.bench`` - the evaluation harness;
* ``repro.obs`` - the metrics registry and trace hooks;
* ``repro.util`` - clocks, PRNG, skip list, HLL, Bloom filters, stats.
"""

from .core import (
    Column,
    ColumnType,
    EngineConfig,
    KeyRange,
    LittleTable,
    Query,
    Schema,
    TimeRange,
)
from .disk import DiskParameters, FileStorage, MemoryStorage, SimulatedDisk
from .obs import MetricsRegistry, Tracer

__version__ = "1.0.0"

__all__ = [
    "Column",
    "ColumnType",
    "EngineConfig",
    "KeyRange",
    "LittleTable",
    "Query",
    "Schema",
    "TimeRange",
    "DiskParameters",
    "FileStorage",
    "MemoryStorage",
    "SimulatedDisk",
    "MetricsRegistry",
    "Tracer",
    "__version__",
]
