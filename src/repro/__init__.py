"""repro: a reproduction of "LittleTable: A Time-Series Database and
Its Uses" (SIGMOD 2017).

Subpackages:

* ``repro.core`` - the LittleTable engine (the paper's contribution);
* ``repro.disk`` - the simulated spinning-disk substrate;
* ``repro.sqlapi`` - the SQL front end (the paper's SQLite adaptor role);
* ``repro.net`` - the TCP client/server protocol;
* ``repro.dashboard`` - the three applications of Section 4;
* ``repro.workloads`` - workload and synthetic-fleet generators;
* ``repro.bench`` - the evaluation harness;
* ``repro.obs`` - the metrics registry and trace hooks;
* ``repro.util`` - clocks, PRNG, skip list, HLL, Bloom filters, stats.
"""

from typing import Any, Optional, Tuple, Union

from .core import (
    Column,
    ColumnType,
    DurabilityPolicy,
    EngineConfig,
    KeyRange,
    LittleTable,
    Query,
    Schema,
    TimeRange,
)
from .disk import DiskParameters, FileStorage, MemoryStorage, SimulatedDisk
from .obs import MetricsRegistry, Tracer

__version__ = "1.0.0"


def connect(address: Union[str, Tuple[str, int]], *,
            config: Optional[Any] = None) -> "Any":
    """Connect to a LittleTable server; returns a database facade.

    The single entry point of the client API::

        import repro

        with repro.connect("127.0.0.1:7421") as db:
            db.insert("usage", rows)
            result = db.query("usage", Query(...))

    ``address`` is ``"host:port"`` (host defaults to ``127.0.0.1``
    when omitted, as in ``":7421"``) or a ``(host, port)`` tuple -
    e.g. ``server.address`` straight from a
    :class:`~repro.net.server.LittleTableServer` or
    :class:`~repro.net.async_server.AsyncLittleTableServer`.
    ``config`` is a :class:`~repro.net.client.ClientConfig` for
    timeouts, retries, batching, and pipelining.

    The returned :class:`~repro.net.remote.RemoteDatabase` has the
    same ``insert``/``query``/``latest``/``stats``/``health`` facade
    and context-manager semantics as an in-process
    :class:`LittleTable`, so application code runs unchanged against
    a local engine, one server, or a sharded deployment.
    """
    from .net.client import LittleTableClient
    from .net.remote import RemoteDatabase

    if isinstance(address, str):
        host, sep, port_text = address.rpartition(":")
        if not sep:
            raise ValueError(
                f"address must be 'host:port' or (host, port), "
                f"got {address!r}")
        host = host or "127.0.0.1"
        try:
            port = int(port_text)
        except ValueError:
            raise ValueError(f"invalid port in address {address!r}")
    else:
        host, port = address[0], int(address[1])
    client = LittleTableClient(host, port, config=config)
    return RemoteDatabase(client)


def restore(src: Union[str, Any], data_dir: Optional[str] = None,
            **open_kwargs: Any) -> LittleTable:
    """Open a database restored from a point-in-time snapshot.

    ``src`` is a snapshot directory written by ``db.snapshot(dest)``
    (or any :class:`~repro.disk.storage.Storage` over one).  With
    ``data_dir`` the snapshot's tables are copied into a persistent
    database at that path; without it they land in a fresh in-memory
    database.  Extra keyword arguments (``config=``, ``durability=``)
    pass through to :class:`LittleTable`::

        db = repro.restore("/backups/2026-08-08", data_dir="/var/lib/lt")

    Raises :class:`~repro.core.errors.SnapshotError` when the
    snapshot manifest is missing/corrupt or a table already exists in
    the destination.
    """
    if data_dir is None:
        db = LittleTable(**open_kwargs)
    else:
        db = LittleTable(disk=SimulatedDisk(FileStorage(data_dir)),
                         **open_kwargs)
    try:
        db.restore(src)
    except BaseException:
        db.close()
        raise
    return db


def __getattr__(name: str) -> Any:
    # ClientConfig lives in repro.net but belongs to the top-level
    # vocabulary next to connect(); import it lazily so importing
    # repro never drags the network stack in.
    if name == "ClientConfig":
        from .net.client import ClientConfig

        return ClientConfig
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "Column",
    "ColumnType",
    "ClientConfig",
    "DurabilityPolicy",
    "EngineConfig",
    "KeyRange",
    "LittleTable",
    "Query",
    "Schema",
    "TimeRange",
    "DiskParameters",
    "FileStorage",
    "MemoryStorage",
    "SimulatedDisk",
    "MetricsRegistry",
    "Tracer",
    "connect",
    "restore",
    "__version__",
]
