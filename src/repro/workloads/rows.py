"""Benchmark workload generators (paper §5.1).

The microbenchmarks use tables of fixed-size rows: six key columns (the
paper fixes six "to keep the amount of work for performing key
comparisons constant"), the last being the timestamp, plus one blob
value column sized to hit the target row size.  All variable input data
comes from a xorshift PRNG, "effectively disabling LittleTable's LZO
compression" (§5.1.1) - and our zlib stand-in likewise.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional, Tuple

from ..core.encoding import RowCodec
from ..core.schema import Column, ColumnType, Schema
from ..util.xorshift import Xorshift64Star

KEY_COLUMNS = 5  # plus ts = six key columns, as in §5.1.2


def bench_schema() -> Schema:
    """The microbenchmark table: five int32 keys + ts + one blob."""
    columns = [Column(f"k{i}", ColumnType.INT32) for i in range(KEY_COLUMNS)]
    columns.append(Column("ts", ColumnType.TIMESTAMP))
    columns.append(Column("payload", ColumnType.BLOB))
    key = [f"k{i}" for i in range(KEY_COLUMNS)] + ["ts"]
    return Schema(columns, key)


def payload_size_for_row_size(row_size: int, sample_ts: int = 0) -> int:
    """Blob size so the encoded row is approximately ``row_size``.

    Row overhead = five svarint int32 keys + ts varint + blob length
    varint; measured empirically on a row with representative values
    (small sequence counters, one full-width random key) rather than
    guessed.
    """
    schema = bench_schema()
    codec = RowCodec(schema)
    probe = codec.encode_row((0, 0, 64, 64, (1 << 31) - 1, sample_ts, b""))
    # +2 for the blob length varint of a realistically sized payload.
    overhead = len(probe) + 2
    return max(1, row_size - overhead)


class BenchRowGenerator:
    """Generates rows of ~``row_size`` encoded bytes.

    Keys are generated so that rows arrive in ascending key order
    within a run (sequence number in the last key column), mirroring
    the paper's single-writer append pattern, with the leading keys
    pseudorandom per stream.
    """

    def __init__(self, row_size: int, seed: int = 1, stream: int = 0,
                 ts: int = 0, random_keys: bool = False):
        self.schema = bench_schema()
        self.row_size = row_size
        self._rng = Xorshift64Star(seed=seed ^ (stream * 0x9E3779B1) ^ 0xB5)
        # Bulk payload bytes come from random.Random.randbytes: still
        # deterministic and incompressible, but generated at C speed
        # (xorshift in pure Python would dominate benchmark wall time).
        self._payload_rng = random.Random(seed ^ (stream << 16) ^ 0xFACE)
        self._payload_size = payload_size_for_row_size(row_size, ts)
        self._sequence = 0
        self._stream = stream
        self.ts = ts
        self.random_keys = random_keys

    def next_row(self, ts: Optional[int] = None) -> Tuple:
        """One row; ``ts`` defaults to the generator's base time."""
        row_ts = self.ts if ts is None else ts
        payload = self._payload_rng.randbytes(self._payload_size)
        if self.random_keys:
            # Fully random keys, as in the Figure 6 random-key probes.
            row = (self._rng.next_u32() & 0x7FFFFFFF,
                   self._rng.next_u32() & 0x7FFFFFFF,
                   self._rng.next_u32() & 0x7FFFFFFF,
                   self._rng.next_u32() & 0x7FFFFFFF,
                   self._rng.next_u32() & 0x7FFFFFFF,
                   row_ts,
                   payload)
        else:
            row = (self._stream & 0x7FFFFFFF,
                   (self._sequence >> 40) & 0x7FFFFFFF,
                   (self._sequence >> 20) & 0xFFFFF,
                   self._sequence & 0xFFFFF,
                   self._rng.next_u32() & 0x7FFFFFFF,
                   row_ts,
                   payload)
        self._sequence += 1
        return row

    def batch(self, count: int, ts: int = None) -> List[Tuple]:
        """A batch of ``count`` rows."""
        return [self.next_row(ts) for _ in range(count)]

    def rows(self, total_bytes: int, ts: int = None) -> Iterator[Tuple]:
        """Yield rows until ~``total_bytes`` of encoded data."""
        produced = 0
        while produced < total_bytes:
            yield self.next_row(ts)
            produced += self.row_size

    def rows_for_count(self, count: int, ts: int = None) -> Iterator[Tuple]:
        for _ in range(count):
            yield self.next_row(ts)
