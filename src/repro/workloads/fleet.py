"""Synthetic production fleet (paper §5.2, Figures 7, 8, 10).

Figures 7, 8, and 10 describe Meraki's real deployment - several
hundred shards accumulated over nine years - which cannot be obtained
outside the company.  Per DESIGN.md §2, we substitute a synthesizer
whose distributions are calibrated to every summary statistic the
paper reports:

* §5.2.1: ~20x more data in LittleTable than PostgreSQL; totals 320 TB
  vs 14 TB; largest shard 6.7 TB vs 341 GB.
* §5.2.2: ~270 tables per shard; median table 875 MB, largest 704 GB;
  median key 45 B with all keys < 128 B; median value 61 B, 91% of
  tables' average values <= 1 kB, largest values ~75 kB (HLL sketches);
  average row 791 B.
* §5.2.5: >90% of queries look back at most a week; most tables keep
  data for a year or longer, "removing old rows only when limited by
  the available disk space".

Log-normal mixtures reproduce these heavy-tailed shapes; each sampler
is deterministic in its seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from ..util.clock import (
    MICROS_PER_DAY,
    MICROS_PER_HOUR,
    MICROS_PER_WEEK,
)
from ..util.xorshift import Xorshift64Star

GIB = 1024 ** 3
TIB = 1024 ** 4
MONTH_MICROS = 30 * MICROS_PER_DAY


@dataclass
class ShardStats:
    """One synthesized shard (Figure 7)."""

    shard_id: int
    littletable_bytes: int
    postgres_bytes: int


@dataclass
class TableStats:
    """One synthesized production table (Figures 8 and 10)."""

    table_id: int
    key_bytes: int
    value_bytes: int
    size_bytes: int
    ttl_micros: int
    insert_batch_rows: int


class FleetSynthesizer:
    """Deterministic sampler of production-shaped statistics."""

    def __init__(self, seed: int = 2017):
        self._rng = Xorshift64Star(seed=seed)

    # ------------------------------------------------------- primitives

    def _normal(self) -> float:
        """Standard normal via Box-Muller."""
        u1 = max(self._rng.next_float(), 1e-12)
        u2 = self._rng.next_float()
        return math.sqrt(-2.0 * math.log(u1)) * math.cos(2 * math.pi * u2)

    def _lognormal(self, median: float, sigma: float) -> float:
        return median * math.exp(sigma * self._normal())

    # ----------------------------------------------------------- shards

    def shards(self, count: int = 220) -> List[ShardStats]:
        """Shard sizes calibrated to §5.2.1.

        Shards are split when LittleTable fills the disks or
        PostgreSQL exceeds RAM, so sizes cluster below a cap with a
        tail of recently-split small shards.
        """
        shards = []
        for shard_id in range(count):
            lt = self._lognormal(median=1.1 * TIB, sigma=0.75)
            lt = min(lt, 6.7 * TIB)
            # PostgreSQL is ~1/20th, with its own spread and cap.
            pg = lt / 20.0 * self._lognormal(median=1.0, sigma=0.35)
            pg = min(pg, 341 * GIB)
            shards.append(ShardStats(shard_id, int(lt), int(pg)))
        return shards

    # ----------------------------------------------------------- tables

    def tables(self, count: int = 270) -> List[TableStats]:
        """Per-table statistics calibrated to §5.2.2 and Figure 8."""
        tables = []
        for table_id in range(count):
            key = int(self._lognormal(median=45, sigma=0.45))
            key = max(8, min(key, 127))  # "all keys are less than 128 B"
            roll = self._rng.next_float()
            if roll < 0.91:
                # Ordinary metric tables: small values.
                value = int(self._lognormal(median=61, sigma=1.1))
                value = max(4, min(value, 1024))
            elif roll < 0.99:
                # Mid-size values (event contents, aggregates).
                value = int(self._lognormal(median=4096, sigma=0.8))
                value = max(1025, min(value, 32 * 1024))
            else:
                # Probabilistic client-set sketches: up to ~75 kB.
                value = int(self._lognormal(median=40 * 1024, sigma=0.4))
                value = max(32 * 1024, min(value, 75 * 1024))
            size = int(self._lognormal(median=875 * 1024 * 1024, sigma=1.6))
            size = min(size, 704 * GIB)
            tables.append(TableStats(
                table_id=table_id,
                key_bytes=key,
                value_bytes=value,
                size_bytes=size,
                ttl_micros=self._sample_ttl(),
                insert_batch_rows=self._sample_batch_rows(),
            ))
        return tables

    def _sample_ttl(self) -> int:
        """Row TTL by table (Figure 10, dashed line).

        Most tables retain a year or more; a minority of high-volume
        tables age out sooner.
        """
        roll = self._rng.next_float()
        if roll < 0.03:
            return int(self._uniform(3 * MICROS_PER_DAY, MICROS_PER_WEEK))
        if roll < 0.08:
            return int(self._uniform(MICROS_PER_WEEK, MONTH_MICROS))
        if roll < 0.18:
            return int(self._uniform(MONTH_MICROS, 6 * MONTH_MICROS))
        if roll < 0.38:
            return int(self._uniform(6 * MONTH_MICROS, 13 * MONTH_MICROS))
        return int(self._uniform(13 * MONTH_MICROS, 26 * MONTH_MICROS))

    def _sample_batch_rows(self) -> int:
        """Insert batch sizes (§5.2.4): bottom 20% single rows, half
        >= 128 rows, top 20% over 6,000 rows."""
        roll = self._rng.next_float()
        if roll < 0.2:
            return 1
        if roll < 0.5:
            return int(self._uniform(2, 127))
        if roll < 0.8:
            return int(self._uniform(128, 6000))
        return int(self._uniform(6001, 60000))

    def _uniform(self, low: float, high: float) -> float:
        return low + (high - low) * self._rng.next_float()

    # ---------------------------------------------------------- queries

    def query_lookbacks(self, count: int = 10_000) -> List[int]:
        """Oldest-time-requested per query (Figure 10, solid line).

        "Over 90% of requests are for data from the most recent week",
        with a forensic tail reaching past a year.
        """
        lookbacks = []
        for _ in range(count):
            roll = self._rng.next_float()
            if roll < 0.45:
                span = self._uniform(MICROS_PER_HOUR, MICROS_PER_DAY)
            elif roll < 0.91:
                span = self._uniform(MICROS_PER_DAY, MICROS_PER_WEEK)
            elif roll < 0.97:
                span = self._uniform(MICROS_PER_WEEK, MONTH_MICROS)
            elif roll < 0.995:
                span = self._uniform(MONTH_MICROS, 13 * MONTH_MICROS)
            else:
                span = self._uniform(13 * MONTH_MICROS, 26 * MONTH_MICROS)
            lookbacks.append(int(span))
        return lookbacks
