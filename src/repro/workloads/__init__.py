"""Workload generators: microbenchmark rows (§5.1) and the synthetic
production fleet (§5.2)."""

from .fleet import FleetSynthesizer, ShardStats, TableStats
from .rows import BenchRowGenerator, bench_schema

__all__ = ["FleetSynthesizer", "ShardStats", "TableStats",
           "BenchRowGenerator", "bench_schema"]
