"""A dependency-free metrics registry: counters, gauges, histograms.

The paper reasons constantly about flush/merge behaviour, tablet
counts, and per-row rewrite cost (§4 and the appendix), and "On
Performance Stability in LSM-based Storage Systems" shows those
pathologies are invisible without per-stage metrics.  This module is
the measurement substrate: every engine layer records into one
:class:`MetricsRegistry`, and every surface (in-process, the STATS
protocol command, the CLI, the dashboard) renders the same snapshot.

Design constraints, in order:

* **Hot-path cost.**  ``Counter.inc`` is one attribute addition; the
  insert path caches its counter objects so no registry lookup happens
  per row.  The whole layer must stay under 5% on the Figure 2 insert
  benchmark (``benchmarks/obs_overhead_smoke.py`` checks this).
* **Snapshot cheapness.**  ``snapshot()`` never holds a lock while
  reading metric values: the GIL makes single attribute reads atomic,
  and the only lock guards metric *creation* (a rare event).  Readers
  may observe a torn multi-metric state (e.g. ``flush.tablets``
  bumped but ``flush.rows`` not yet) - fine for monitoring, and the
  price of never stalling the write path.
* **JSON-safe.**  Snapshots contain only str/int/float/dict so they
  travel over the wire protocol unchanged.

Use :data:`NULL_REGISTRY` to disable collection entirely (the null
objects share the interface and do nothing).
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, List, Optional

from ..util.stats import percentile


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A value that can go up and down (e.g. active connections)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.value -= amount


class Histogram:
    """Summary statistics plus a bounded reservoir for percentiles.

    Keeps exact count/sum/min/max and the most recent ``capacity``
    observations in a ring buffer; percentiles are computed from the
    ring at snapshot time (via :func:`repro.util.stats.percentile`),
    so ``observe`` stays O(1) and allocation-free after warmup.
    """

    __slots__ = ("name", "count", "total", "minimum", "maximum",
                 "_ring", "_capacity", "_next")

    def __init__(self, name: str, capacity: int = 512):
        if capacity <= 0:
            raise ValueError("histogram capacity must be positive")
        self.name = name
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None
        self._ring: List[float] = []
        self._capacity = capacity
        self._next = 0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value
        if len(self._ring) < self._capacity:
            self._ring.append(value)
        else:
            self._ring[self._next] = value
            self._next = (self._next + 1) % self._capacity

    def summary(self) -> Dict[str, float]:
        """Export count/sum/mean/min/max plus p50/p90/p99."""
        count = self.count
        if count == 0:
            return {"count": 0, "sum": 0.0}
        window = sorted(self._ring)
        return {
            "count": count,
            "sum": self.total,
            "mean": self.total / count,
            "min": self.minimum,
            "max": self.maximum,
            "p50": percentile(window, 0.50),
            "p90": percentile(window, 0.90),
            "p99": percentile(window, 0.99),
        }


class _NullCounter:
    __slots__ = ()
    name = "null"
    value = 0

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge:
    __slots__ = ()
    name = "null"
    value = 0

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1) -> None:
        pass

    def dec(self, amount: float = 1) -> None:
        pass


class _NullHistogram:
    __slots__ = ()
    name = "null"
    count = 0
    total = 0.0

    def observe(self, value: float) -> None:
        pass

    def summary(self) -> Dict[str, float]:
        return {"count": 0, "sum": 0.0}


class NullRegistry:
    """A registry that records nothing; shares the full interface.

    Pass ``metrics=NULL_REGISTRY`` to engine constructors to disable
    collection (the overhead smoke check measures against this).
    """

    _counter = _NullCounter()
    _gauge = _NullGauge()
    _histogram = _NullHistogram()

    def counter(self, name: str) -> _NullCounter:
        return self._counter

    def gauge(self, name: str) -> _NullGauge:
        return self._gauge

    def histogram(self, name: str, capacity: int = 512) -> _NullHistogram:
        return self._histogram

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def reset(self) -> None:
        pass


NULL_REGISTRY = NullRegistry()


class MetricsRegistry:
    """Named metrics, created on first use and never removed.

    ``counter``/``gauge``/``histogram`` are get-or-create: the common
    (already-created) case is a plain dict read with no lock, so
    callers may look metrics up on a warm path; truly hot loops should
    still cache the returned object.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._get_or_create(self._counters, name, Counter)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._get_or_create(self._gauges, name, Gauge)
        return metric

    def histogram(self, name: str, capacity: int = 512) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._get_or_create(
                self._histograms, name,
                lambda n: Histogram(n, capacity=capacity))
        return metric

    def _get_or_create(self, table: Dict[str, Any], name: str,
                       factory: Callable[[str], Any]) -> Any:
        with self._lock:
            metric = table.get(name)
            if metric is None:
                metric = factory(name)
                table[name] = metric
            return metric

    # ---------------------------------------------------------- export

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """One JSON-safe view of every metric.

        No lock is held while reading values; see the module docstring
        for the (deliberate) consistency model.
        """
        return {
            "counters": {name: metric.value
                         for name, metric in sorted(self._counters.items())},
            "gauges": {name: metric.value
                       for name, metric in sorted(self._gauges.items())},
            "histograms": {name: metric.summary()
                           for name, metric in
                           sorted(self._histograms.items())},
        }

    def reset(self) -> None:
        """Forget all metrics (benchmark warmup / test isolation)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


def render_snapshot(snapshot: Dict[str, Dict[str, Any]]) -> str:
    """Render a snapshot as aligned text (CLI and dashboard share it)."""
    lines: List[str] = []
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    histograms = snapshot.get("histograms", {})
    scalars = [(name, value) for name, value in counters.items()]
    scalars += [(name, value) for name, value in gauges.items()]
    if scalars:
        width = max(len(name) for name, _value in scalars)
        lines.extend(f"{name.ljust(width)}  {value}"
                     for name, value in scalars)
    for name, summary in histograms.items():
        if summary.get("count", 0) == 0:
            lines.append(f"{name}  (no observations)")
            continue
        lines.append(
            f"{name}  count={summary['count']} mean={summary['mean']:.1f} "
            f"p50={summary['p50']:.1f} p90={summary['p90']:.1f} "
            f"p99={summary['p99']:.1f} max={summary['max']:.1f}")
    return "\n".join(lines) if lines else "(no metrics recorded)"
