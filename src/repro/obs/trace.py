"""Lightweight trace spans for the engine's slow operations.

Flushes, merges, TTL reclaim, and bulk rewrites are the operations
whose scheduling pathologies the LSM-stability literature warns about;
a counter says *how much* happened, a span says *when* and *how long*.
The tracer keeps a bounded ring of finished spans (newest last) and
offers subscription hooks so a test or a dashboard can watch
operations as they complete.

Spans are deliberately minimal - a name, wall-clock duration, and a
small tag dict - and the null tracer makes the hooks free when tracing
is off.  Per-row work is never traced; only whole operations are.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional


class Span:
    """One finished operation."""

    __slots__ = ("name", "tags", "duration_us")

    def __init__(self, name: str, tags: Dict[str, Any],
                 duration_us: float):
        self.name = name
        self.tags = tags
        self.duration_us = duration_us

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "duration_us": self.duration_us,
                "tags": dict(self.tags)}

    def __repr__(self) -> str:
        return f"Span({self.name!r}, {self.duration_us:.0f}us, {self.tags})"


class _ActiveSpan:
    """Context manager measuring one operation.

    Tags may be added while the span is open via :meth:`tag`; an
    exception inside the block records an ``error`` tag before
    re-raising.
    """

    __slots__ = ("_tracer", "name", "tags", "_start")

    def __init__(self, tracer: "Tracer", name: str, tags: Dict[str, Any]):
        self._tracer = tracer
        self.name = name
        self.tags = tags
        self._start = 0.0

    def tag(self, **tags: Any) -> None:
        self.tags.update(tags)

    def __enter__(self) -> "_ActiveSpan":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, _tb) -> None:
        duration_us = (time.perf_counter() - self._start) * 1e6
        if exc_type is not None:
            self.tags["error"] = exc_type.__name__
        self._tracer._record(Span(self.name, self.tags, duration_us))


class Tracer:
    """Collects finished spans into a bounded ring."""

    def __init__(self, capacity: int = 256):
        self._spans: Deque[Span] = deque(maxlen=capacity)
        self._hooks: List[Callable[[Span], None]] = []

    def span(self, name: str, **tags: Any) -> _ActiveSpan:
        """Open a span: ``with tracer.span("flush", table=t): ...``."""
        return _ActiveSpan(self, name, tags)

    def subscribe(self, hook: Callable[[Span], None]) -> None:
        """Call ``hook(span)`` for every span as it finishes."""
        self._hooks.append(hook)

    def unsubscribe(self, hook: Callable[[Span], None]) -> None:
        self._hooks.remove(hook)

    def _record(self, span: Span) -> None:
        self._spans.append(span)
        for hook in self._hooks:
            hook(span)

    def recent(self, limit: Optional[int] = None,
               name: Optional[str] = None) -> List[Span]:
        """Finished spans, oldest first, optionally filtered by name."""
        spans = [s for s in self._spans if name is None or s.name == name]
        if limit is not None:
            spans = spans[-limit:]
        return spans

    def clear(self) -> None:
        self._spans.clear()


class _NullActiveSpan:
    __slots__ = ()
    name = "null"
    tags: Dict[str, Any] = {}

    def tag(self, **tags: Any) -> None:
        pass

    def __enter__(self) -> "_NullActiveSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


class NullTracer:
    """Tracing disabled: spans are free and nothing is kept."""

    _span = _NullActiveSpan()

    def span(self, name: str, **tags: Any) -> _NullActiveSpan:
        return self._span

    def subscribe(self, hook: Callable[[Span], None]) -> None:
        pass

    def unsubscribe(self, hook: Callable[[Span], None]) -> None:
        pass

    def recent(self, limit: Optional[int] = None,
               name: Optional[str] = None) -> List[Span]:
        return []

    def clear(self) -> None:
        pass


NULL_TRACER = NullTracer()
