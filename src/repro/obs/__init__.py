"""Observability: the metrics registry and trace hooks.

Every engine layer records into one :class:`MetricsRegistry` owned by
the :class:`~repro.core.database.LittleTable` instance, and every
surface renders the same ``snapshot()``:

* in process - ``db.metrics.snapshot()``;
* over TCP - the ``stats`` protocol command /
  ``LittleTableClient.stats()``;
* on the command line - ``python -m repro.cli stats``;
* in the dashboard - :func:`repro.dashboard.metrics_view.metrics_page`.
"""

from .metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    render_snapshot,
)
from .trace import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "render_snapshot",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
]
