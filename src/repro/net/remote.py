"""Remote database adapter: SQL on the client side of the wire.

In the paper the SQL layer lives in the *client* - an adaptor loaded
into SQLite that speaks the binary protocol to the server (§3.1).
:class:`RemoteDatabase` reproduces that architecture: it exposes
enough of the :class:`~repro.core.database.LittleTable` interface for
:class:`~repro.sqlapi.executor.SqlSession` to run unchanged, while
every operation actually crosses the TCP connection:

    client = LittleTableClient(host, port)
    sql = SqlSession(RemoteDatabase(client))
    sql.execute("SELECT ... FROM usage WHERE ...")

Queries stream with the server row limit and more-available
continuation; schemas are fetched lazily and cached until a schema-
changing statement invalidates them.
"""

from __future__ import annotations

import base64
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from ..core.errors import NoSuchTableError
from ..core.row import DESCENDING, Query, QueryStats
from ..core.schema import Column, Schema
from ..core.table import QueryResult
from .client import LittleTableClient
from .protocol import decode_row, encode_key


def _query_request(table: str, query: Query) -> Dict[str, Any]:
    """One query command's wire request (shared by query and scan)."""
    key_range = query.key_range
    time_range = query.time_range
    request: Dict[str, Any] = {
        "cmd": "query", "table": table,
        "key_min": encode_key(key_range.min_prefix),
        "key_max": encode_key(key_range.max_prefix),
        "key_min_inclusive": key_range.min_inclusive,
        "key_max_inclusive": key_range.max_inclusive,
        "ts_min": time_range.min_ts,
        "ts_min_inclusive": time_range.min_inclusive,
        "ts_max": time_range.max_ts,
        "ts_max_inclusive": time_range.max_inclusive,
        "descending": query.direction == DESCENDING,
    }
    if query.limit is not None:
        request["limit"] = query.limit
    return request


class RemoteTable:
    """Client-side handle to one server table."""

    def __init__(self, database: "RemoteDatabase", name: str):
        self._database = database
        self.name = name

    @property
    def _client(self) -> LittleTableClient:
        return self._database.client

    @property
    def schema(self) -> Schema:
        return self._database._schema(self.name)

    @property
    def ttl_micros(self) -> Optional[int]:
        return self._database._ttl(self.name)

    # ----------------------------------------------------------- writes

    def insert(self, rows: Sequence[Dict[str, Any]]) -> int:
        return self._client.insert(self.name, rows)

    def insert_tuples(self, rows: Sequence[Tuple[Any, ...]]) -> int:
        schema = self.schema
        return self.insert([schema.row_to_dict(row) for row in rows])

    # ---------------------------------------------------------- queries

    def query(self, query: Query) -> "QueryResult":
        """One query command, one round trip (``Table.query`` parity).

        Unlike :meth:`scan`, this does *not* continue past the
        server's row limit - exactly like the in-process
        ``Table.query``, it reports ``more_available`` and leaves the
        continuation to the caller.
        """
        return self._database._query_once(self.name, query)

    def scan(self, query: Query) -> Iterator[Tuple[Any, ...]]:
        """Stream a bounding-box query over the wire.

        The client adaptor transparently continues past the server's
        row limit (§3.5).
        """
        key_range = query.key_range
        time_range = query.time_range
        # Exclusive ts bounds become half-open integer bounds (ts is
        # integer microseconds).
        ts_min = time_range.min_ts
        if ts_min is not None and not time_range.min_inclusive:
            ts_min += 1
        ts_max = time_range.max_ts
        if ts_max is not None and not time_range.max_inclusive:
            ts_max -= 1
        return self._client.query(
            self.name,
            key_min=key_range.min_prefix,
            key_max=key_range.max_prefix,
            key_min_inclusive=key_range.min_inclusive,
            key_max_inclusive=key_range.max_inclusive,
            ts_min=ts_min, ts_max=ts_max,
            descending=query.direction == DESCENDING,
            limit=query.limit,
        )

    def latest(self, prefix: Sequence[Any],
               max_lookback_micros: Optional[int] = None
               ) -> Optional[Tuple[Any, ...]]:
        return self._client.latest(self.name, prefix,
                                   max_lookback_micros=max_lookback_micros)

    # ----------------------------------------------- admin & lifecycle

    def flush_all(self) -> List[int]:
        count = self._client.flush(self.name)
        return list(range(count))

    def flush_before(self, ts: int) -> List[int]:
        count = self._client.flush(self.name, before_ts=ts)
        return list(range(count))

    def bulk_delete(self, prefix: Sequence[Any]) -> int:
        return self._client.bulk_delete(self.name, prefix)

    def append_column(self, column: Column) -> None:
        self._database._alter(self.name, "add_column",
                              column=column)

    def widen_column(self, name: str) -> None:
        self._database._alter(self.name, "widen_column", column_name=name)

    def set_ttl(self, ttl_micros: Optional[int]) -> None:
        self._database._alter(self.name, "set_ttl", ttl_micros=ttl_micros)


class RemoteDatabase:
    """The database-shaped facade over a client connection."""

    def __init__(self, client: LittleTableClient):
        self.client = client
        self._schemas: Optional[Dict[str, Schema]] = None
        self._ttls: Dict[str, Optional[int]] = {}

    # ------------------------------------------------------------ cache

    def invalidate(self) -> None:
        """Drop the cached table list (after DDL or a reconnect)."""
        self._schemas = None
        self._ttls = {}

    def _load(self) -> Dict[str, Schema]:
        if self._schemas is None:
            response = self.client._call({"cmd": "list_tables"})
            self._schemas = {}
            for entry in response["tables"]:
                self._schemas[entry["name"]] = Schema.from_dict(
                    entry["schema"])
                self._ttls[entry["name"]] = entry.get("ttl_micros")
        return self._schemas

    def _schema(self, name: str) -> Schema:
        schemas = self._load()
        if name not in schemas:
            self.invalidate()
            schemas = self._load()
        if name not in schemas:
            raise NoSuchTableError(f"no such table: {name!r}")
        return schemas[name]

    def _ttl(self, name: str) -> Optional[int]:
        self._schema(name)
        return self._ttls.get(name)

    def _alter(self, table: str, action: str, **fields: Any) -> None:
        if "column" in fields:
            column = fields.pop("column")
            default = column.default
            if isinstance(default, (bytes, bytearray)):
                default = {"b64": base64.b64encode(
                    bytes(default)).decode("ascii")}
            fields["column"] = {
                "name": column.name,
                "type": column.type.value,
                "default": default,
            }
        # Delegating through the client keeps its own schema cache in
        # sync with ours.
        self.client.alter(table, action, **fields)
        self.invalidate()

    # ---------------------------------------------------------- catalog

    def table_names(self) -> List[str]:
        return sorted(self._load())

    def has_table(self, name: str) -> bool:
        return name in self._load()

    def table(self, name: str) -> RemoteTable:
        self._schema(name)  # raises NoSuchTableError when absent
        return RemoteTable(self, name)

    def create_table(self, name: str, schema: Schema,
                     ttl_micros: Optional[int] = None,
                     durability=None) -> RemoteTable:
        self.client.create_table(name, schema, ttl_micros=ttl_micros,
                                 durability=durability)
        self.invalidate()
        return RemoteTable(self, name)

    def drop_table(self, name: str) -> None:
        self.client.drop_table(name)
        self.invalidate()

    # -------------------------------------------------------- operations
    #
    # Exact signatures of the in-process facade
    # (``LittleTable.insert/query/latest/stats/health`` + context
    # manager), so application code written against a local engine
    # runs unchanged over the wire - in front of one engine or a
    # shard router alike.

    def insert(self, table_name: str, rows: Sequence[Dict[str, Any]]) -> int:
        """Insert dict rows into a table (``LittleTable.insert``)."""
        return self.client.insert(table_name, rows)

    def query(self, table_name: str,
              query: Optional[Query] = None) -> QueryResult:
        """One query command against a table (``LittleTable.query``).

        A single round trip: the server's row limit applies and
        ``more_available`` is reported, exactly as in process.  Use
        ``table(name).scan(query)`` for transparent continuation.
        """
        return self._query_once(table_name,
                                query if query is not None else Query())

    def _query_once(self, table_name: str, query: Query) -> QueryResult:
        response = self.client._call(
            _query_request(table_name, query), idempotent=True)
        rows = [decode_row(row) for row in response["rows"]]
        return QueryResult(
            rows=rows,
            more_available=bool(response.get("more_available")),
            stats=QueryStats(rows_scanned=response.get("rows_scanned", 0),
                             rows_returned=len(rows)),
        )

    def latest(self, table_name: str, prefix: Sequence[Any],
               max_lookback_micros: Optional[int] = None
               ) -> Optional[Tuple[Any, ...]]:
        """Latest row whose key starts with ``prefix`` (§3.4.5)."""
        return self.client.latest(table_name, prefix,
                                  max_lookback_micros=max_lookback_micros)

    # ------------------------------------------------------ observability

    def stats(self) -> Dict[str, Any]:
        """The server's metrics snapshot (``LittleTable.stats``)."""
        return self.client.stats()

    def health(self) -> Dict[str, Any]:
        """The server's degradation state (``LittleTable.health``)."""
        return self.client.health()

    def wal_status(self) -> Dict[str, Any]:
        """Per-table durability state (``LittleTable.wal_status``)."""
        return self.client.wal_status()

    # --------------------------------------------------------- lifecycle

    def close(self) -> None:
        """Close the underlying connection (idempotent)."""
        self.client.close()

    def __enter__(self) -> "RemoteDatabase":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
