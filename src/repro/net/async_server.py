"""The asyncio front end: many pipelined requests per connection.

The thread-per-connection server (:mod:`repro.net.server`) burns one
OS thread per adaptor and strictly alternates request/response on each
socket, so a client pays one round trip per command.  This front end
multiplexes instead: a single event loop owns every connection, v2
clients tag requests with ``id`` fields and keep many in flight, and
responses stream back as each command finishes (possibly out of
order).  Engine calls still block - tables lock themselves, the
simulated disk seeks - so dispatch runs on a bounded thread pool,
giving inter-request parallelism across connections *and* within one
pipelined connection.

The same :class:`~repro.net.server.RequestDispatcher` serves both
fronts, over a single :class:`~repro.core.database.LittleTable` or a
:class:`~repro.net.shard.ShardRouter` alike; old (v1) clients that
never send HELLO or ids are served sequentially in arrival order,
exactly as the threaded server would.

Observability: ``server.pipeline_depth`` (histogram, sampled at each
enqueue) records how deep clients actually pipeline, and
``server.async_connections`` gauges the open connections.
"""

from __future__ import annotations

import asyncio
import logging
import os
import struct
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, Optional

from ..core.maintenance import MaintenancePolicy
from ..core.scheduler import MaintenanceScheduler
from . import protocol
from .server import AdmissionController, RequestDispatcher

logger = logging.getLogger(__name__)

_LENGTH = struct.Struct(">I")


class AsyncLittleTableServer:
    """Serves a database (or shard router) over asyncio TCP.

    The public surface mirrors :class:`~repro.net.server
    .LittleTableServer` - ``start``/``stop``/``close``, ``address``,
    context manager - so callers swap front ends with one line.  The
    event loop runs on a dedicated thread, keeping the constructor
    synchronous for tests and the CLI.
    """

    def __init__(self, db: Any, host: str = "127.0.0.1", port: int = 0,
                 policy: Optional[MaintenancePolicy] = None,
                 max_workers: Optional[int] = None,
                 max_inflight_requests: Optional[int] = None,
                 admission_queue_timeout_s: float = 0.25):
        self.db = db
        # Admission control: bound concurrently-executing requests and
        # shed (typed, retryable) what cannot start within its budget.
        # Queue time on the dispatch executor counts against each
        # request's propagated deadline via the arrival stamp below.
        self.admission: Optional[AdmissionController] = None
        if max_inflight_requests is not None:
            self.admission = AdmissionController(
                max_inflight_requests,
                queue_timeout_s=admission_queue_timeout_s,
                metrics=db.metrics)
        self.dispatcher = RequestDispatcher(db, admission=self.admission)
        self.metrics = db.metrics
        self.policy = policy
        self._host = host
        self._port = port
        self._address: Optional[tuple] = None
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._scheduler: Optional[MaintenanceScheduler] = None
        if max_workers is None:
            max_workers = min(32, (os.cpu_count() or 4) * 4)
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="ltdb-dispatch")
        self._m_connections = self.metrics.gauge("server.async_connections")
        self._m_depth = self.metrics.histogram("server.pipeline_depth")
        self._m_pipelined = self.metrics.counter("server.pipelined_requests")
        self._m_sequential = self.metrics.counter(
            "server.sequential_requests")

    # -------------------------------------------------------- lifecycle

    @property
    def address(self) -> tuple:
        """The (host, port) actually bound (after :meth:`start`)."""
        if self._address is None:
            raise RuntimeError("server not started")
        return self._address

    def start(self) -> None:
        """Bind and serve on a dedicated event-loop thread."""
        if self._thread is not None:
            return
        self._ready.clear()
        self._startup_error = None
        self._thread = threading.Thread(
            target=self._thread_main, daemon=True,
            name="ltdb-async-server")
        self._thread.start()
        self._ready.wait(timeout=10)
        if self._startup_error is not None:
            error, self._startup_error = self._startup_error, None
            self._thread.join(timeout=5)
            self._thread = None
            raise error
        if self._address is None:
            raise RuntimeError("async server failed to start in 10s")
        if self.policy is not None:
            if self._scheduler is None:
                self._scheduler = MaintenanceScheduler(self.db, self.policy)
            self._scheduler.start()

    def stop(self) -> None:
        """Stop serving; drops connections like a crash (§3.1)."""
        if self._scheduler is not None:
            self._scheduler.stop()
        loop, self._loop = self._loop, None
        if loop is not None and self._stop_event is not None:
            try:
                loop.call_soon_threadsafe(self._stop_event.set)
            except RuntimeError:
                pass  # loop already closed
        if self._thread is not None:
            self._thread.join(timeout=10)
            if self._thread.is_alive():
                logger.warning("async server thread did not exit in 10s")
            else:
                self._thread = None
        self._executor.shutdown(wait=False)
        self._address = None

    @property
    def is_stopped(self) -> bool:
        return self._thread is None or not self._thread.is_alive()

    def close(self) -> None:
        self.stop()

    def __enter__(self) -> "AsyncLittleTableServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -------------------------------------------------------- event loop

    def _thread_main(self) -> None:
        try:
            asyncio.run(self._serve())
        except BaseException as exc:  # startup failures surface in start()
            self._startup_error = exc
            self._ready.set()

    async def _serve(self) -> None:
        self._stop_event = asyncio.Event()
        self._loop = asyncio.get_running_loop()
        server = await asyncio.start_server(
            self._handle_connection, self._host, self._port)
        self._address = server.sockets[0].getsockname()[:2]
        self._ready.set()
        try:
            async with server:
                await self._stop_event.wait()
        finally:
            self._loop = None

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self._m_connections.inc()
        try:
            await self._connection_loop(reader, writer)
        except asyncio.CancelledError:
            # Server shutdown cancelled us mid-read: the connection
            # drops like a crash (§3.1).  Ending the task cleanly
            # instead of cancelled keeps asyncio.streams from logging
            # a spurious callback error during loop teardown.
            pass
        finally:
            self._m_connections.dec()
            try:
                writer.close()
            except Exception:
                pass

    async def _connection_loop(self, reader: asyncio.StreamReader,
                               writer: asyncio.StreamWriter) -> None:
        write_lock = asyncio.Lock()
        in_flight: set = set()
        try:
            sock = writer.get_extra_info("socket")
            if sock is not None:
                import socket as _socket

                sock.setsockopt(_socket.IPPROTO_TCP,
                                _socket.TCP_NODELAY, 1)
            while True:
                try:
                    header = await reader.readexactly(_LENGTH.size)
                    (length,) = _LENGTH.unpack(header)
                    if length > protocol.MAX_FRAME_BYTES:
                        return  # hopeless framing; drop the connection
                    payload = await reader.readexactly(length)
                    request = protocol.decode_payload(payload)
                except (asyncio.IncompleteReadError, ConnectionError,
                        protocol.ProtocolError):
                    return
                # Stamp the frame's arrival so time spent queued on the
                # dispatch executor counts against the request's
                # propagated deadline (the dispatcher pops this key).
                if isinstance(request, dict):
                    request["_arrival_monotonic"] = time.monotonic()
                if request.get("id") is not None:
                    # v2 pipelined: run concurrently, answer when done.
                    self._m_pipelined.inc()
                    self._m_depth.observe(len(in_flight) + 1)
                    task = asyncio.ensure_future(self._dispatch_and_reply(
                        request, writer, write_lock))
                    in_flight.add(task)
                    task.add_done_callback(in_flight.discard)
                else:
                    # v1 sequential: strict request/response order.
                    self._m_sequential.inc()
                    if not await self._dispatch_and_reply(
                            request, writer, write_lock):
                        return
        finally:
            # Let in-flight work finish so pipelined responses are not
            # silently dropped by our own teardown (the peer may have
            # half-closed after sending a burst).
            if in_flight:
                await asyncio.gather(*in_flight, return_exceptions=True)

    async def _dispatch_and_reply(self, request: Dict[str, Any],
                                  writer: asyncio.StreamWriter,
                                  write_lock: asyncio.Lock) -> bool:
        loop = asyncio.get_running_loop()
        try:
            response = await loop.run_in_executor(
                self._executor, self.dispatcher.dispatch, request)
        except RuntimeError:
            # Executor shut down mid-request (server stopping).
            return False
        try:
            frame = protocol.encode_frame(response)
        except protocol.ProtocolError as exc:
            frame = protocol.encode_frame(
                RequestDispatcher._tag(protocol.error_response(
                    "ServerError", f"unencodable response: {exc}"),
                    request.get("id")))
        async with write_lock:
            try:
                writer.write(frame)
                await writer.drain()
            except (ConnectionError, OSError):
                return False
        return True
