"""The client adaptor.

Plays the role of the paper's SQLite-side adaptor (§3.1, §3.5):

* keeps a persistent TCP connection so a server crash is detected as a
  disconnection (after which the application re-checks what survived
  and re-inserts, §4.1);
* downloads the table list and schemas on connect;
* batches inserts ("the SQLite adaptor takes clients' inserts and
  transmits them to the LittleTable server in batches", §3.1);
* transparently continues queries that hit the server's row limit by
  re-submitting with the start bound moved past the last returned key
  (§3.5);
* retries *idempotent* commands (queries, latest, stats, schema
  listing, ping) through a bounded auto-reconnect with exponential
  backoff and jitter.  Writes and DDL are never retried: a connection
  can break after the server applied an insert but before the reply
  arrived, and a blind resend would duplicate rows - exactly the
  recovery protocol the paper leaves to the application (§4.1).
"""

from __future__ import annotations

import random
import socket
import time
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from ..core import errors as _errors
from ..core.errors import (
    LittleTableError,
    NoSuchTableError,
    ProtocolViolationError,
    ServerError,
)
from ..core.schema import Schema
from .protocol import (
    ConnectionLost,
    decode_row,
    encode_key,
    encode_row,
    recv_message,
    send_message,
)

# Server-side failures surface as the same LittleTableError subclasses
# an in-process user would see: the error code on the wire is the
# exception class name, mapped back here.  Unknown codes degrade to
# the base class rather than leaking protocol-layer exceptions.
_ERROR_TYPES: Dict[str, type] = {
    name: cls
    for name, cls in vars(_errors).items()
    if isinstance(cls, type) and issubclass(cls, LittleTableError)
}
# Codes emitted by pre-redesign servers.
_ERROR_TYPES.setdefault("ProtocolError", ProtocolViolationError)
_ERROR_TYPES.setdefault("InternalError", ServerError)


class LittleTableClient:
    """A connection to a LittleTable server."""

    def __init__(self, host: str, port: int, insert_batch_rows: int = 512,
                 connect_timeout_s: float = 10.0,
                 request_timeout_s: Optional[float] = None,
                 max_retries: int = 3,
                 retry_backoff_s: float = 0.05,
                 retry_backoff_max_s: float = 2.0,
                 auto_reconnect: bool = True):
        """Connect to a server.

        ``connect_timeout_s`` bounds connection establishment (the old
        hardwired 10 s, now a knob); ``request_timeout_s`` bounds each
        request/response round trip (None = wait forever, the historic
        behaviour).  A timed-out or broken idempotent request is
        retried up to ``max_retries`` times through a fresh connection,
        sleeping ``retry_backoff_s * 2**attempt`` (capped at
        ``retry_backoff_max_s``, jittered to half) between attempts;
        ``auto_reconnect=False`` disables retries entirely, surfacing
        every break as :class:`~repro.net.protocol.ConnectionLost`.
        """
        self._address = (host, port)
        self._sock: Optional[socket.socket] = None
        self.insert_batch_rows = insert_batch_rows
        self.connect_timeout_s = connect_timeout_s
        self.request_timeout_s = request_timeout_s
        self.max_retries = max_retries
        self.retry_backoff_s = retry_backoff_s
        self.retry_backoff_max_s = retry_backoff_max_s
        self.auto_reconnect = auto_reconnect
        # Injectable for deterministic tests (resilience suite swaps
        # these to count sleeps instead of waiting them out).
        self._sleep = time.sleep
        self._rng = random.Random()
        self._pending: Dict[str, List[Tuple[Any, ...]]] = {}
        # Lazily-filled table -> Schema cache used by the query
        # continuation path; invalidated by every DDL call (and on
        # reconnect) so a stale schema can never decode rows after
        # evolution.
        self._schema_cache: Dict[str, Schema] = {}
        self.connect()

    # ------------------------------------------------------- connection

    def connect(self) -> None:
        """(Re)establish the persistent connection."""
        self.close()
        sock = socket.create_connection(self._address,
                                        timeout=self.connect_timeout_s)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        # After the handshake the socket switches to the per-request
        # read timeout; None restores blocking mode.
        sock.settimeout(self.request_timeout_s)
        self._sock = sock
        # The server may have restarted with different tables.
        self.invalidate_schema_cache()

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "LittleTableClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def connected(self) -> bool:
        return self._sock is not None

    def _call(self, message: Dict[str, Any],
              idempotent: bool = False) -> Dict[str, Any]:
        """One request/response exchange, with bounded retries.

        Only ``idempotent`` requests survive a broken connection:
        they are resent through a fresh connection up to
        ``max_retries`` times with jittered exponential backoff.
        Non-idempotent requests (inserts, DDL) always surface the
        first :class:`ConnectionLost` - the server may have applied
        them, so only the application can safely decide to resend
        (the paper's §4.1 recovery protocol).
        """
        retries = (self.max_retries
                   if idempotent and self.auto_reconnect else 0)
        last_error: Optional[Exception] = None
        for attempt in range(retries + 1):
            if attempt:
                self._backoff(attempt - 1)
            try:
                if self._sock is None:
                    if not (idempotent and self.auto_reconnect):
                        raise ConnectionLost("not connected")
                    self.connect()
                return self._call_once(message)
            except (ConnectionLost, OSError) as exc:
                self.close()
                last_error = exc
        if isinstance(last_error, ConnectionLost):
            raise last_error
        raise ConnectionLost(str(last_error)) from last_error

    def _call_once(self, message: Dict[str, Any]) -> Dict[str, Any]:
        try:
            send_message(self._sock, message)
            response = recv_message(self._sock)
        except (ConnectionLost, OSError) as exc:
            # The persistent connection broke: surface it so the
            # caller (or _call's retry loop) can run recovery (§4.1).
            self.close()
            if isinstance(exc, ConnectionLost):
                raise
            raise ConnectionLost(str(exc)) from exc
        if response.get("ok"):
            return response
        error_type = _ERROR_TYPES.get(response.get("error", ""),
                                      LittleTableError)
        raise error_type(response.get("message", "server error"))

    def _backoff(self, attempt: int) -> None:
        delay = min(self.retry_backoff_max_s,
                    self.retry_backoff_s * (2 ** attempt))
        self._sleep(delay * (0.5 + 0.5 * self._rng.random()))

    def ping(self) -> bool:
        """Round-trip liveness check."""
        return bool(self._call({"cmd": "ping"},
                               idempotent=True).get("pong"))

    # ------------------------------------------------------ observability

    def stats(self) -> Dict[str, Any]:
        """The server's metrics-registry snapshot.

        Returns exactly what ``db.metrics.snapshot()`` returns in
        process: ``{"counters": ..., "gauges": ..., "histograms": ...}``.
        """
        return self._call({"cmd": "stats", "tables": False},
                          idempotent=True)["metrics"]

    def table_stats(self) -> Dict[str, Dict[str, Any]]:
        """Per-table shape summaries (``Table.stats_summary`` each)."""
        return self._call({"cmd": "stats", "tables": True},
                          idempotent=True)["tables"]

    def health(self) -> Dict[str, Any]:
        """The server's degradation state (``db.health_summary()``):
        read-only mode + reason, checksum failures, quarantined
        tablets, last startup scrub.  Empty dict from servers that
        predate the fault-tolerance layer."""
        return self._call({"cmd": "stats", "tables": False},
                          idempotent=True).get("health", {})

    # ----------------------------------------------------------- schema

    def list_tables(self) -> Dict[str, Schema]:
        """Download the table list and schemas (connect-time step)."""
        response = self._call({"cmd": "list_tables"}, idempotent=True)
        return {
            entry["name"]: Schema.from_dict(entry["schema"])
            for entry in response["tables"]
        }

    def create_table(self, name: str, schema: Schema,
                     ttl_micros: Optional[int] = None) -> None:
        self._call({"cmd": "create_table", "table": name,
                    "schema": schema.to_dict(), "ttl_micros": ttl_micros})
        self.invalidate_schema_cache()

    def drop_table(self, name: str) -> None:
        self._call({"cmd": "drop_table", "table": name})
        self.invalidate_schema_cache()

    def alter(self, table: str, action: str, **fields: Any) -> None:
        """Schema DDL (add_column / widen_column / set_ttl).

        ``fields`` go into the wire request verbatim (a ``column``
        value must already be wire-encoded).  Invalidates the schema
        cache, like every other DDL entry point.
        """
        request: Dict[str, Any] = {"cmd": "alter", "table": table,
                                   "action": action}
        request.update(fields)
        self._call(request)
        self.invalidate_schema_cache()

    def invalidate_schema_cache(self) -> None:
        """Forget cached schemas (after DDL or reconnect)."""
        self._schema_cache.clear()

    # ----------------------------------------------------------- writes

    def insert(self, table: str, rows: Sequence[Dict[str, Any]]) -> int:
        """Insert dict rows immediately (no client-side batching)."""
        if not rows:
            return 0
        columns = sorted({name for row in rows for name in row})
        encoded = [encode_row([row.get(c) for c in columns]) for row in rows]
        response = self._call({"cmd": "insert", "table": table,
                               "rows": encoded, "columns": columns,
                               "dicts": True})
        return response["inserted"]

    def buffer_insert(self, table: str, row: Tuple[Any, ...]) -> None:
        """Queue one positional row; flushes at the batch size (§3.1)."""
        queue = self._pending.setdefault(table, [])
        queue.append(tuple(row))
        if len(queue) >= self.insert_batch_rows:
            self.flush_inserts(table)

    def flush_inserts(self, table: Optional[str] = None) -> int:
        """Send buffered rows now.  Returns rows sent."""
        tables = [table] if table is not None else list(self._pending)
        sent = 0
        for name in tables:
            queue = self._pending.get(name)
            if not queue:
                continue
            encoded = [encode_row(row) for row in queue]
            self._pending[name] = []
            response = self._call({"cmd": "insert", "table": name,
                                   "rows": encoded})
            sent += response["inserted"]
        return sent

    @property
    def pending_rows(self) -> int:
        return sum(len(q) for q in self._pending.values())

    # ---------------------------------------------------------- queries

    def query(self, table: str,
              key_min: Optional[Sequence[Any]] = None,
              key_max: Optional[Sequence[Any]] = None,
              key_min_inclusive: bool = True,
              key_max_inclusive: bool = True,
              ts_min: Optional[int] = None,
              ts_max: Optional[int] = None,
              descending: bool = False,
              limit: Optional[int] = None) -> Iterator[Tuple[Any, ...]]:
        """Stream rows, transparently continuing past the server limit.

        The continuation re-submits with the start bound moved to the
        last returned key, exclusive (§3.5) - for descending queries,
        the *end* bound moves instead.
        """
        returned = 0
        current_min = encode_key(key_min)
        current_max = encode_key(key_max)
        min_inclusive = key_min_inclusive
        max_inclusive = key_max_inclusive
        while True:
            request = {
                "cmd": "query", "table": table,
                "key_min": current_min, "key_max": current_max,
                "key_min_inclusive": min_inclusive,
                "key_max_inclusive": max_inclusive,
                "ts_min": ts_min, "ts_max": ts_max,
                "descending": descending,
            }
            if limit is not None:
                request["limit"] = limit - returned
            response = self._call(request, idempotent=True)
            rows = [decode_row(row) for row in response["rows"]]
            last_row: Optional[Tuple[Any, ...]] = None
            for row in rows:
                yield row
                last_row = row
                returned += 1
                if limit is not None and returned >= limit:
                    return
            if not response.get("more_available") or last_row is None:
                return
            # Continue from just past the last key we saw.  The key is
            # the row's leading columns per the schema; clients that
            # stream know their schema, but to stay schema-agnostic we
            # ask the server for it lazily.
            key = self._key_of(table, last_row)
            if descending:
                current_max = encode_key(key)
                max_inclusive = False
            else:
                current_min = encode_key(key)
                min_inclusive = False

    def latest(self, table: str, prefix: Sequence[Any],
               max_lookback_micros: Optional[int] = None
               ) -> Optional[Tuple[Any, ...]]:
        """Latest row for a key prefix (§3.4.5)."""
        response = self._call({
            "cmd": "latest", "table": table,
            "prefix": encode_key(tuple(prefix)),
            "max_lookback_micros": max_lookback_micros,
        }, idempotent=True)
        row = response.get("row")
        return None if row is None else decode_row(row)

    def flush(self, table: str, before_ts: Optional[int] = None) -> int:
        """Force rows to disk; with ``before_ts``, only rows older
        than it must be durable on return (§4.1.2's proposed command).
        Returns the number of tablets written."""
        response = self._call({"cmd": "flush", "table": table,
                               "before_ts": before_ts})
        return response["tablets_written"]

    def bulk_delete(self, table: str, prefix: Sequence[Any]) -> int:
        """Delete all rows whose key starts with ``prefix`` (§7's
        compliance feature).  Returns rows removed."""
        response = self._call({"cmd": "bulk_delete", "table": table,
                               "prefix": encode_key(tuple(prefix))})
        return response["rows_removed"]

    # ---------------------------------------------------------- helpers

    def _key_of(self, table: str, row: Tuple[Any, ...]) -> Tuple[Any, ...]:
        schema = self._schema(table)
        return schema.key_of(row)

    def _schema(self, table: str) -> Schema:
        cache = self._schema_cache
        if table not in cache:
            cache.update(self.list_tables())
        if table not in cache:
            raise NoSuchTableError(f"no such table: {table!r}")
        return cache[table]
