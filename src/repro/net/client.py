"""The client adaptor.

Plays the role of the paper's SQLite-side adaptor (§3.1, §3.5):

* keeps a persistent TCP connection so a server crash is detected as a
  disconnection (after which the application re-checks what survived
  and re-inserts, §4.1);
* downloads the table list and schemas on connect;
* batches inserts ("the SQLite adaptor takes clients' inserts and
  transmits them to the LittleTable server in batches", §3.1);
* transparently continues queries that hit the server's row limit by
  re-submitting with the start bound moved past the last returned key
  (§3.5);
* retries *idempotent* commands (queries, latest, stats, schema
  listing, ping) through a bounded auto-reconnect with exponential
  backoff and jitter.  Writes and DDL are never retried: a connection
  can break after the server applied an insert but before the reply
  arrived, and a blind resend would duplicate rows - exactly the
  recovery protocol the paper leaves to the application (§4.1).
"""

from __future__ import annotations

import dataclasses
import itertools
import random
import socket
import time
import warnings
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from ..core import errors as _errors
from ..core.durability import DurabilityPolicy
from ..core.errors import (
    LittleTableError,
    NoSuchTableError,
    OverloadedError,
    ServerError,
)
from ..core.schema import Schema
from .protocol import (
    FEATURE_PIPELINE,
    PROTOCOL_VERSION,
    ConnectionLost,
    decode_row,
    encode_frame,
    encode_key,
    encode_row,
    recv_message,
    send_message,
)

# Local exception classes addressable by wire error code (the code is
# the class name).  Codes outside this map raise ServerError with the
# original code preserved on ``.code`` - never silently degraded.
_LOCAL_ERROR_TYPES: Dict[str, type] = {
    name: cls
    for name, cls in vars(_errors).items()
    if isinstance(cls, type) and issubclass(cls, LittleTableError)
}


def _error_from_response(response: Dict[str, Any]) -> LittleTableError:
    """Map a wire error response to the exception to raise.

    Known codes (negotiated in HELLO; in practice the names of the
    :mod:`repro.core.errors` classes) become their local class.  An
    unknown code - a newer server's error type, or a pre-HELLO
    server's legacy spelling - raises :class:`ServerError` carrying
    the original code string on ``.code`` so nothing is lost.
    """
    code = response.get("error", "")
    message = response.get("message", "server error")
    cls = _LOCAL_ERROR_TYPES.get(code)
    if cls is not None:
        error = cls(message)
        if isinstance(error, OverloadedError):
            # Shed responses carry the server's backoff hint; the
            # retry loop sleeps exactly this long instead of guessing.
            retry_after = response.get("retry_after")
            if isinstance(retry_after, (int, float)):
                error.retry_after_s = float(retry_after)
        return error
    error = ServerError(f"{code}: {message}" if code else message)
    error.code = code or None
    return error


@dataclass
class ClientConfig:
    """Connection behaviour, in one place.

    Replaces the eight loose :class:`LittleTableClient` constructor
    keywords (the same consolidation :class:`~repro.core.maintenance
    .MaintenancePolicy` made for ``maintenance_interval_s``).

    * ``insert_batch_rows`` - buffered-insert flush threshold (§3.1);
    * ``connect_timeout_s`` - bound on connection establishment;
    * ``request_timeout_s`` - bound on each round trip (None = wait
      forever, the historic behaviour);
    * ``max_retries`` / ``retry_backoff_s`` / ``retry_backoff_max_s``
      / ``auto_reconnect`` - the idempotent-only retry loop: broken
      idempotent requests resend through a fresh connection with
      jittered exponential backoff; writes never auto-retry (§4.1);
    * ``negotiate`` - send the v2 HELLO on connect (disable to force
      v1 sequential mode against any server);
    * ``pipeline_depth`` - max in-flight requests a
      :meth:`LittleTableClient.pipeline` batch keeps before draining;
    * ``durability`` - default :class:`~repro.core.durability
      .DurabilityPolicy` applied to tables this client creates (a
      per-call ``create_table(durability=...)`` still overrides it);
      None leaves tier selection entirely to the server.
    """

    insert_batch_rows: int = 512
    connect_timeout_s: float = 10.0
    request_timeout_s: Optional[float] = None
    max_retries: int = 3
    retry_backoff_s: float = 0.05
    retry_backoff_max_s: float = 2.0
    auto_reconnect: bool = True
    negotiate: bool = True
    pipeline_depth: int = 128
    durability: Optional[DurabilityPolicy] = None

    def validate(self) -> None:
        if self.insert_batch_rows < 1:
            raise ValueError("insert_batch_rows must be >= 1")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.pipeline_depth < 1:
            raise ValueError("pipeline_depth must be >= 1")
        if self.durability is not None:
            self.durability.validate()


#: Constructor keywords accepted for backward compatibility; each maps
#: onto the ClientConfig field of the same name.
_LEGACY_CLIENT_KWARGS = (
    "insert_batch_rows", "connect_timeout_s", "request_timeout_s",
    "max_retries", "retry_backoff_s", "retry_backoff_max_s",
    "auto_reconnect",
)


class LittleTableClient:
    """A connection to a LittleTable server."""

    def __init__(self, host: str, port: int,
                 config: Optional[ClientConfig] = None,
                 **legacy_kwargs: Any):
        """Connect to a server.

        Behaviour knobs travel in ``config`` (a
        :class:`ClientConfig`).  The pre-redesign loose keywords
        (``insert_batch_rows=...``, ``connect_timeout_s=...``, ...)
        still work - including ``insert_batch_rows`` passed as the
        third positional argument - but raise a
        :class:`DeprecationWarning` and fold into the config.
        """
        if isinstance(config, int):
            # Old third positional argument: insert_batch_rows.
            legacy_kwargs.setdefault("insert_batch_rows", config)
            config = None
        if legacy_kwargs:
            unknown = set(legacy_kwargs) - set(_LEGACY_CLIENT_KWARGS)
            if unknown:
                raise TypeError(
                    f"unknown client arguments: {sorted(unknown)}")
            warnings.warn(
                "loose LittleTableClient keywords are deprecated; pass "
                "config=ClientConfig(...) instead",
                DeprecationWarning, stacklevel=2)
            config = dataclasses.replace(
                config if config is not None else ClientConfig(),
                **legacy_kwargs)
        if config is None:
            config = ClientConfig()
        config.validate()
        self.config = config
        self._address = (host, port)
        self._sock: Optional[socket.socket] = None
        # Mirrored as plain attributes: the historic public surface,
        # and still mutable per-instance (tests tune retries live).
        self.insert_batch_rows = config.insert_batch_rows
        self.connect_timeout_s = config.connect_timeout_s
        self.request_timeout_s = config.request_timeout_s
        self.max_retries = config.max_retries
        self.retry_backoff_s = config.retry_backoff_s
        self.retry_backoff_max_s = config.retry_backoff_max_s
        self.auto_reconnect = config.auto_reconnect
        # Negotiated state (filled by the HELLO handshake; v1 values
        # until/unless a v2 server answers).
        self.server_version = 1
        self.server_features: Tuple[str, ...] = ()
        self.server_shards = 1
        self._server_error_codes: Optional[frozenset] = None
        self._request_ids = itertools.count(1)
        # Injectable for deterministic tests (resilience suite swaps
        # these to count sleeps instead of waiting them out).
        self._sleep = time.sleep
        self._rng = random.Random()
        self._pending: Dict[str, List[Tuple[Any, ...]]] = {}
        # Lazily-filled table -> Schema cache used by the query
        # continuation path; invalidated by every DDL call (and on
        # reconnect) so a stale schema can never decode rows after
        # evolution.
        self._schema_cache: Dict[str, Schema] = {}
        self.connect()

    # ------------------------------------------------------- connection

    def connect(self) -> None:
        """(Re)establish the persistent connection (and re-negotiate:
        the server may have been upgraded or downgraded between
        reconnects)."""
        self.close()
        sock = socket.create_connection(self._address,
                                        timeout=self.connect_timeout_s)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        # After the handshake the socket switches to the per-request
        # read timeout; None restores blocking mode.
        sock.settimeout(self.request_timeout_s)
        self._sock = sock
        # The server may have restarted with different tables.
        self.invalidate_schema_cache()
        self._handshake()

    def _handshake(self) -> None:
        """The v2 HELLO: negotiate version, features, error codes.

        A v1 server answers with an unknown-command error; the client
        then simply stays in v1 sequential mode (no ids, no
        pipelining) - the fallback the protocol docstring promises.
        """
        self.server_version = 1
        self.server_features = ()
        self.server_shards = 1
        self._server_error_codes = None
        if not self.config.negotiate:
            return
        send_message(self._sock, {
            "cmd": "hello", "version": PROTOCOL_VERSION,
            "features": [FEATURE_PIPELINE],
        })
        response = recv_message(self._sock)
        if not response.get("ok"):
            return  # pre-v2 server: unknown command, speak v1
        self.server_version = int(response.get("version", 1))
        self.server_features = tuple(response.get("features", ()))
        codes = response.get("error_codes")
        self._server_error_codes = (
            frozenset(codes) if codes is not None else None)
        self.server_shards = int(response.get("shards", 1))

    @property
    def pipelined(self) -> bool:
        """True when the server negotiated pipelined requests."""
        return (self.server_version >= 2
                and FEATURE_PIPELINE in self.server_features)

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "LittleTableClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def connected(self) -> bool:
        return self._sock is not None

    def _call(self, message: Dict[str, Any],
              idempotent: bool = False) -> Dict[str, Any]:
        """One request/response exchange, with bounded retries.

        All attempts share ONE overall deadline derived from
        ``request_timeout_s`` at entry: each attempt's socket timeout
        is the *remaining* budget and backoff sleeps never overrun it,
        so the caller waits at most ~``request_timeout_s`` total - not
        attempts x timeout, as the old per-attempt re-arm allowed.

        Only ``idempotent`` requests survive a broken connection:
        they are resent through a fresh connection up to
        ``max_retries`` times with jittered exponential backoff.
        Non-idempotent requests (inserts, DDL) always surface the
        first :class:`ConnectionLost` - the server may have applied
        them, so only the application can safely decide to resend
        (the paper's §4.1 recovery protocol).  :class:`OverloadedError`
        sheds are the exception: the server guarantees a shed request
        was never started, so *any* request retries through them,
        honouring the server's ``retry_after`` hint.
        """
        deadline: Optional[float] = None
        if self.request_timeout_s is not None:
            deadline = time.monotonic() + self.request_timeout_s
            # Propagate the budget so the server can shed (rather than
            # execute) a request that already overran it while queued.
            message = dict(message)
        retry_connection = idempotent and self.auto_reconnect
        last_error: Optional[Exception] = None
        for attempt in range(self.max_retries + 1):
            try:
                if self._sock is None:
                    can_reconnect = self.auto_reconnect and (
                        idempotent or isinstance(last_error,
                                                 OverloadedError))
                    if not can_reconnect:
                        raise ConnectionLost("not connected")
                    self.connect()
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 and last_error is not None:
                        break
                    self._sock.settimeout(max(remaining, 0.001))
                    message["deadline_ms"] = max(
                        int(remaining * 1000), 1)
                return self._call_once(message)
            except (ConnectionLost, OSError) as exc:
                self.close()
                last_error = exc
                if not retry_connection:
                    break
            except OverloadedError as exc:
                # Shed before execution - never partially applied, so
                # even non-idempotent requests resend safely.
                last_error = exc
            if attempt >= self.max_retries:
                break
            if not self._backoff_within(attempt, deadline,
                                        getattr(last_error,
                                                "retry_after_s", None)):
                break  # the shared budget cannot fund another attempt
        if isinstance(last_error, OverloadedError):
            raise last_error
        if isinstance(last_error, ConnectionLost):
            raise last_error
        raise ConnectionLost(str(last_error)) from last_error

    def _call_once(self, message: Dict[str, Any]) -> Dict[str, Any]:
        try:
            send_message(self._sock, message)
            response = recv_message(self._sock)
        except (ConnectionLost, OSError) as exc:
            # The persistent connection broke: surface it so the
            # caller (or _call's retry loop) can run recovery (§4.1).
            self.close()
            if isinstance(exc, ConnectionLost):
                raise
            raise ConnectionLost(str(exc)) from exc
        if response.get("ok"):
            return response
        raise _error_from_response(response)

    def _backoff(self, attempt: int) -> None:
        delay = min(self.retry_backoff_max_s,
                    self.retry_backoff_s * (2 ** attempt))
        self._sleep(delay * (0.5 + 0.5 * self._rng.random()))

    def _backoff_within(self, attempt: int, deadline: Optional[float],
                        retry_after_s: Optional[float] = None) -> bool:
        """Sleep before the next attempt, bounded by the shared
        deadline.  A server-supplied ``retry_after`` hint replaces the
        jittered exponential guess.  Returns False - without sleeping
        past the budget - when the deadline cannot fund the wait plus
        a meaningful attempt."""
        if retry_after_s is not None:
            delay = float(retry_after_s)
        else:
            delay = min(self.retry_backoff_max_s,
                        self.retry_backoff_s * (2 ** attempt))
            delay *= (0.5 + 0.5 * self._rng.random())
        if deadline is not None:
            remaining = deadline - time.monotonic()
            if delay >= remaining:
                return False
        if delay > 0:
            self._sleep(delay)
        return True

    def ping(self) -> bool:
        """Round-trip liveness check."""
        return bool(self._call({"cmd": "ping"},
                               idempotent=True).get("pong"))

    # ------------------------------------------------------- pipelining

    def pipeline(self, depth: Optional[int] = None) -> "Pipeline":
        """A batch of pipelined requests over this connection.

        Against a v2 server, enqueued requests are written back to
        back without waiting for responses (up to ``depth`` in
        flight, then the batch drains), and responses - which may
        arrive out of order - are matched by request id.  Against a
        v1 server the same code runs sequentially, one round trip per
        request: the fallback promised by the HELLO negotiation.

            with client.pipeline() as batch:
                replies = [batch.insert("t", rows) for rows in chunks]
            inserted = sum(r.result() for r in replies)
        """
        return Pipeline(self,
                        depth if depth is not None
                        else self.config.pipeline_depth)

    # ------------------------------------------------------ observability

    def stats(self) -> Dict[str, Any]:
        """The server's metrics-registry snapshot.

        Returns exactly what ``db.metrics.snapshot()`` returns in
        process: ``{"counters": ..., "gauges": ..., "histograms": ...}``.
        """
        return self._call({"cmd": "stats", "tables": False},
                          idempotent=True)["metrics"]

    def table_stats(self) -> Dict[str, Dict[str, Any]]:
        """Per-table shape summaries (``Table.stats_summary`` each)."""
        return self._call({"cmd": "stats", "tables": True},
                          idempotent=True)["tables"]

    def health(self) -> Dict[str, Any]:
        """The server's degradation state (``db.health_summary()``):
        read-only mode + reason, checksum failures, quarantined
        tablets, last startup scrub.  Empty dict from servers that
        predate the fault-tolerance layer."""
        return self._call({"cmd": "stats", "tables": False},
                          idempotent=True).get("health", {})

    def wal_status(self) -> Dict[str, Any]:
        """Per-table durability/WAL state (``db.wal_status()``): tier,
        LSNs, segments, buffered records, replication lag when the
        server is a warm standby."""
        return self._call({"cmd": "wal_status"},
                          idempotent=True).get("wal", {})

    # ----------------------------------------------------------- schema

    def list_tables(self) -> Dict[str, Schema]:
        """Download the table list and schemas (connect-time step)."""
        response = self._call({"cmd": "list_tables"}, idempotent=True)
        return {
            entry["name"]: Schema.from_dict(entry["schema"])
            for entry in response["tables"]
        }

    def create_table(self, name: str, schema: Schema,
                     ttl_micros: Optional[int] = None,
                     durability: Optional[DurabilityPolicy] = None) -> None:
        policy = durability if durability is not None \
            else self.config.durability
        request = {"cmd": "create_table", "table": name,
                   "schema": schema.to_dict(), "ttl_micros": ttl_micros}
        if policy is not None:
            policy.validate()
            encoded = policy.to_dict()
            if encoded:
                request["durability"] = encoded
        self._call(request)
        self.invalidate_schema_cache()

    def drop_table(self, name: str) -> None:
        self._call({"cmd": "drop_table", "table": name})
        self.invalidate_schema_cache()

    def alter(self, table: str, action: str, **fields: Any) -> None:
        """Schema DDL (add_column / widen_column / set_ttl).

        ``fields`` go into the wire request verbatim (a ``column``
        value must already be wire-encoded).  Invalidates the schema
        cache, like every other DDL entry point.
        """
        request: Dict[str, Any] = {"cmd": "alter", "table": table,
                                   "action": action}
        request.update(fields)
        self._call(request)
        self.invalidate_schema_cache()

    def invalidate_schema_cache(self) -> None:
        """Forget cached schemas (after DDL or reconnect)."""
        self._schema_cache.clear()

    # ----------------------------------------------------------- writes

    def insert(self, table: str, rows: Sequence[Dict[str, Any]]) -> int:
        """Insert dict rows immediately (no client-side batching)."""
        if not rows:
            return 0
        columns = sorted({name for row in rows for name in row})
        encoded = [encode_row([row.get(c) for c in columns]) for row in rows]
        response = self._call({"cmd": "insert", "table": table,
                               "rows": encoded, "columns": columns,
                               "dicts": True})
        return response["inserted"]

    def buffer_insert(self, table: str, row: Tuple[Any, ...]) -> None:
        """Queue one positional row; flushes at the batch size (§3.1)."""
        queue = self._pending.setdefault(table, [])
        queue.append(tuple(row))
        if len(queue) >= self.insert_batch_rows:
            self.flush_inserts(table)

    def flush_inserts(self, table: Optional[str] = None) -> int:
        """Send buffered rows now.  Returns rows sent."""
        tables = [table] if table is not None else list(self._pending)
        sent = 0
        for name in tables:
            queue = self._pending.get(name)
            if not queue:
                continue
            encoded = [encode_row(row) for row in queue]
            self._pending[name] = []
            response = self._call({"cmd": "insert", "table": name,
                                   "rows": encoded})
            sent += response["inserted"]
        return sent

    @property
    def pending_rows(self) -> int:
        return sum(len(q) for q in self._pending.values())

    # ---------------------------------------------------------- queries

    def query(self, table: str,
              key_min: Optional[Sequence[Any]] = None,
              key_max: Optional[Sequence[Any]] = None,
              key_min_inclusive: bool = True,
              key_max_inclusive: bool = True,
              ts_min: Optional[int] = None,
              ts_max: Optional[int] = None,
              descending: bool = False,
              limit: Optional[int] = None) -> Iterator[Tuple[Any, ...]]:
        """Stream rows, transparently continuing past the server limit.

        The continuation re-submits with the start bound moved to the
        last returned key, exclusive (§3.5) - for descending queries,
        the *end* bound moves instead.
        """
        returned = 0
        current_min = encode_key(key_min)
        current_max = encode_key(key_max)
        min_inclusive = key_min_inclusive
        max_inclusive = key_max_inclusive
        while True:
            request = {
                "cmd": "query", "table": table,
                "key_min": current_min, "key_max": current_max,
                "key_min_inclusive": min_inclusive,
                "key_max_inclusive": max_inclusive,
                "ts_min": ts_min, "ts_max": ts_max,
                "descending": descending,
            }
            if limit is not None:
                request["limit"] = limit - returned
            response = self._call(request, idempotent=True)
            rows = [decode_row(row) for row in response["rows"]]
            last_row: Optional[Tuple[Any, ...]] = None
            for row in rows:
                yield row
                last_row = row
                returned += 1
                if limit is not None and returned >= limit:
                    return
            if not response.get("more_available") or last_row is None:
                return
            # Continue from just past the last key we saw.  The key is
            # the row's leading columns per the schema; clients that
            # stream know their schema, but to stay schema-agnostic we
            # ask the server for it lazily.
            key = self._key_of(table, last_row)
            if descending:
                current_max = encode_key(key)
                max_inclusive = False
            else:
                current_min = encode_key(key)
                min_inclusive = False

    def latest(self, table: str, prefix: Sequence[Any],
               max_lookback_micros: Optional[int] = None
               ) -> Optional[Tuple[Any, ...]]:
        """Latest row for a key prefix (§3.4.5)."""
        response = self._call({
            "cmd": "latest", "table": table,
            "prefix": encode_key(tuple(prefix)),
            "max_lookback_micros": max_lookback_micros,
        }, idempotent=True)
        row = response.get("row")
        return None if row is None else decode_row(row)

    def flush(self, table: str, before_ts: Optional[int] = None) -> int:
        """Force rows to disk; with ``before_ts``, only rows older
        than it must be durable on return (§4.1.2's proposed command).
        Returns the number of tablets written."""
        response = self._call({"cmd": "flush", "table": table,
                               "before_ts": before_ts})
        return response["tablets_written"]

    def bulk_delete(self, table: str, prefix: Sequence[Any]) -> int:
        """Delete all rows whose key starts with ``prefix`` (§7's
        compliance feature).  Returns rows removed."""
        response = self._call({"cmd": "bulk_delete", "table": table,
                               "prefix": encode_key(tuple(prefix))})
        return response["rows_removed"]

    # ---------------------------------------------------------- helpers

    def _key_of(self, table: str, row: Tuple[Any, ...]) -> Tuple[Any, ...]:
        schema = self._schema(table)
        return schema.key_of(row)

    def _schema(self, table: str) -> Schema:
        cache = self._schema_cache
        if table not in cache:
            cache.update(self.list_tables())
        if table not in cache:
            raise NoSuchTableError(f"no such table: {table!r}")
        return cache[table]


class PendingReply:
    """A response slot for one pipelined request."""

    __slots__ = ("request_id", "_response", "_error", "_decode", "_done")

    def __init__(self, request_id: Optional[int],
                 decode: Optional[Any] = None):
        self.request_id = request_id
        self._response: Optional[Dict[str, Any]] = None
        self._error: Optional[BaseException] = None
        self._decode = decode
        self._done = False

    @property
    def done(self) -> bool:
        return self._done

    def _resolve(self, response: Dict[str, Any]) -> None:
        self._response = response
        self._done = True

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._done = True

    def result(self) -> Any:
        """The decoded response; raises what the request raised.

        Draining happens in :meth:`Pipeline.drain` (or on pipeline
        exit); calling ``result()`` earlier on an un-drained reply is
        an error rather than an implicit flush.
        """
        if not self._done:
            raise RuntimeError(
                "pipelined reply not drained yet (call Pipeline.drain "
                "or exit the pipeline block first)")
        if self._error is not None:
            raise self._error
        if self._decode is not None:
            return self._decode(self._response)
        return self._response


class Pipeline:
    """Many in-flight requests over one connection (protocol v2).

    Writes are *not* auto-retried here for the same §4.1 reason as in
    :meth:`LittleTableClient._call`: a batch may be half-applied when
    the connection breaks, so every outstanding reply fails with
    :class:`ConnectionLost` and recovery belongs to the application.
    Per-request server errors (validation, duplicate keys...) resolve
    only their own reply - the rest of the batch stands.
    """

    def __init__(self, client: LittleTableClient, depth: int):
        self._client = client
        self._depth = max(1, depth)
        self._frames: List[bytes] = []
        self._awaiting: Dict[int, PendingReply] = {}
        # Sequential fallback (v1 server): each call() is one round
        # trip through the ordinary request path.
        self._sequential = not client.pipelined

    # ------------------------------------------------------------ core

    def call(self, message: Dict[str, Any],
             idempotent: bool = False,
             decode: Optional[Any] = None) -> PendingReply:
        """Enqueue one raw protocol request."""
        if self._sequential:
            reply = PendingReply(None, decode)
            try:
                reply._resolve(self._client._call(dict(message),
                                                  idempotent=idempotent))
            except (LittleTableError, ConnectionLost) as exc:
                reply._fail(exc)
            return reply
        request_id = next(self._client._request_ids)
        tagged = dict(message)
        tagged["id"] = request_id
        reply = PendingReply(request_id, decode)
        self._awaiting[request_id] = reply
        self._frames.append(encode_frame(tagged))
        if len(self._awaiting) >= self._depth:
            self.drain()
        return reply

    def drain(self) -> None:
        """Send everything buffered and collect every response."""
        if self._sequential or not self._awaiting:
            return
        sock = self._client._sock
        if sock is None:
            self._fail_all(ConnectionLost("not connected"))
            raise ConnectionLost("not connected")
        try:
            if self._frames:
                data = b"".join(self._frames)
                self._frames = []
                sock.sendall(data)
            while self._awaiting:
                response = recv_message(sock)
                request_id = response.get("id")
                reply = self._awaiting.pop(request_id, None)
                if reply is None:
                    # A response we never asked for: framing is gone.
                    raise ConnectionLost(
                        f"unmatched response id {request_id!r}")
                if response.get("ok"):
                    reply._resolve(response)
                else:
                    reply._fail(_error_from_response(response))
        except (ConnectionLost, OSError) as exc:
            self._client.close()
            lost = exc if isinstance(exc, ConnectionLost) \
                else ConnectionLost(str(exc))
            self._fail_all(lost)
            raise lost from (None if lost is exc else exc)

    def _fail_all(self, error: BaseException) -> None:
        for reply in self._awaiting.values():
            reply._fail(error)
        self._awaiting.clear()
        self._frames = []

    def __enter__(self) -> "Pipeline":
        return self

    def __exit__(self, exc_type, *exc_info) -> None:
        # Don't mask an in-flight exception with a drain failure; but
        # a clean exit must deliver every response.
        if exc_type is None:
            self.drain()

    # ------------------------------------------------- typed commands

    def ping(self) -> PendingReply:
        return self.call({"cmd": "ping"}, idempotent=True,
                         decode=lambda r: bool(r.get("pong")))

    def insert(self, table: str,
               rows: Sequence[Tuple[Any, ...]]) -> PendingReply:
        """Positional-tuple batch insert; resolves to rows inserted."""
        encoded = [encode_row(row) for row in rows]
        return self.call({"cmd": "insert", "table": table,
                          "rows": encoded},
                         decode=lambda r: r["inserted"])

    def insert_dicts(self, table: str,
                     rows: Sequence[Dict[str, Any]]) -> PendingReply:
        columns = sorted({name for row in rows for name in row})
        encoded = [encode_row([row.get(c) for c in columns])
                   for row in rows]
        return self.call({"cmd": "insert", "table": table,
                          "rows": encoded, "columns": columns,
                          "dicts": True},
                         decode=lambda r: r["inserted"])

    def query_page(self, table: str, **bounds: Any) -> PendingReply:
        """One query command (no continuation); resolves to
        ``(rows, more_available)``."""
        request = {"cmd": "query", "table": table}
        request.update(bounds)
        return self.call(
            request, idempotent=True,
            decode=lambda r: ([decode_row(row) for row in r["rows"]],
                              bool(r.get("more_available"))))

    def latest(self, table: str, prefix: Sequence[Any],
               max_lookback_micros: Optional[int] = None) -> PendingReply:
        return self.call(
            {"cmd": "latest", "table": table,
             "prefix": encode_key(tuple(prefix)),
             "max_lookback_micros": max_lookback_micros},
            idempotent=True,
            decode=lambda r: (None if r.get("row") is None
                              else decode_row(r["row"])))
