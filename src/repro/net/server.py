"""The LittleTable TCP server.

"LittleTable is a relational database, run as an independent server
process" (§3.1).  This server wraps a :class:`~repro.core.LittleTable`
instance and serves the adaptor protocol: table listing, schema
download, batched inserts, bounding-box queries with the server row
limit and more-available flag (§3.5), and latest-row lookups.

Tables do their own locking (the paper's small-lock design, §3.4.4):
inserts serialize through each table's state lock, queries snapshot
the copy-on-write tablet list and run off-lock, and background
maintenance - driven by a :class:`~repro.core.scheduler.MaintenanceScheduler`
under a :class:`~repro.core.maintenance.MaintenancePolicy` - builds new
tablets outside the lock entirely.  Queries concurrent with an insert
may see some, all, or none of its rows (§3.1).
"""

from __future__ import annotations

import logging
import socket
import socketserver
import threading
import time
import warnings
from typing import Any, Dict, Optional

logger = logging.getLogger(__name__)

# Commands refused while the engine is degraded to read-only (disk
# full / persistent I/O errors).  Reads and stats keep serving; the
# maintenance command stays allowed because TTL expiry and deferred
# deletes are how space gets freed again.
_WRITE_COMMANDS = frozenset(
    {"insert", "create_table", "drop_table", "alter", "bulk_delete",
     "flush"})

from ..core import errors as _errors
from ..core.database import LittleTable
from ..core.durability import DurabilityPolicy
from ..core.errors import LittleTableError, OverloadedError
from ..core.maintenance import MaintenancePolicy, MaintenanceReport
from ..core.row import ASCENDING, DESCENDING, KeyRange, Query, TimeRange
from ..core.scheduler import MaintenanceScheduler
from ..core.schema import Schema
from . import protocol

# One replication fetch is bounded so a follower's poll can never pin
# a frame larger than the protocol maximum.
REPL_CHUNK_BYTES = 4 * 1024 * 1024


def known_error_codes() -> list:
    """Error codes this server may put on the wire: the names of every
    :class:`LittleTableError` subclass, plus the generic ServerError.
    Sent in the HELLO response so clients map codes by negotiation."""
    return sorted(
        name for name, cls in vars(_errors).items()
        if isinstance(cls, type) and issubclass(cls, LittleTableError)
    )


class _Handler(socketserver.BaseRequestHandler):
    def handle(self) -> None:
        server: LittleTableServer = self.server.littletable  # type: ignore
        sock: socket.socket = self.request
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        server._register_connection(sock)
        try:
            self._serve(server, sock)
        finally:
            server._unregister_connection(sock)

    def _serve(self, server: "LittleTableServer",
               sock: socket.socket) -> None:
        while True:
            try:
                request = protocol.recv_message(sock)
            except (protocol.ConnectionLost, protocol.ProtocolError):
                return
            response = server.dispatch(request)
            try:
                protocol.send_message(sock, response)
            except (protocol.ConnectionLost, OSError):
                return


class _ThreadingServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class LittleTableServer:
    """Serves a LittleTable database over TCP."""

    def __init__(self, db: LittleTable, host: str = "127.0.0.1",
                 port: int = 0,
                 maintenance_interval_s: Optional[float] = None,
                 policy: Optional[MaintenancePolicy] = None,
                 max_inflight_requests: Optional[int] = None,
                 admission_queue_timeout_s: float = 0.25):
        self.db = db
        self._tcp = _ThreadingServer((host, port), _Handler)
        self._tcp.littletable = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None
        self._connections: set = set()
        self._connections_lock = threading.Lock()
        # Optional background maintenance (flush by age, merges, TTL),
        # the server-side counterpart of the paper's background
        # threads, run by the shared MaintenanceScheduler.  The bare
        # ``maintenance_interval_s`` float is deprecated: pass a
        # ``policy=MaintenancePolicy(tick_interval_s=...)`` instead.
        if maintenance_interval_s is not None:
            warnings.warn(
                "maintenance_interval_s is deprecated; pass "
                "policy=MaintenancePolicy(tick_interval_s=...) instead",
                DeprecationWarning, stacklevel=2)
            if policy is None:
                policy = MaintenancePolicy.from_interval(
                    maintenance_interval_s)
        self.policy = policy
        self.maintenance_interval_s = maintenance_interval_s
        self._scheduler: Optional[MaintenanceScheduler] = None
        # Server-side observability lives in the database's registry,
        # so one STATS snapshot covers engine and network together.
        self.metrics = db.metrics
        self._m_connections = self.metrics.gauge("server.active_connections")
        # Admission control (overload protection): bound the requests
        # executing at once and shed - with a typed, retryable error -
        # anything that cannot start within its queue-time budget.
        # None (the default) accepts unbounded work, as before.
        self.admission: Optional[AdmissionController] = None
        if max_inflight_requests is not None:
            self.admission = AdmissionController(
                max_inflight_requests,
                queue_timeout_s=admission_queue_timeout_s,
                metrics=self.metrics)
        # All command handling is delegated to the shared dispatcher
        # (the asyncio front end reuses the same one).
        self.dispatcher = RequestDispatcher(db, admission=self.admission)

    def run_maintenance(self) -> MaintenanceReport:
        """One synchronous maintenance pass over every table.

        Tables lock themselves; the returned
        :class:`~repro.core.maintenance.MaintenanceReport` keeps the
        deprecated mapping shape readable (``work["t"]["flushed"]``).
        """
        return self.db.maintenance()

    def _register_connection(self, sock: socket.socket) -> None:
        with self._connections_lock:
            self._connections.add(sock)
            self._m_connections.set(len(self._connections))

    def _unregister_connection(self, sock: socket.socket) -> None:
        with self._connections_lock:
            self._connections.discard(sock)
            self._m_connections.set(len(self._connections))

    @property
    def address(self) -> tuple:
        """The (host, port) the server is bound to."""
        return self._tcp.server_address

    def start(self) -> None:
        """Serve in a background thread."""
        self._thread = threading.Thread(
            target=self._tcp.serve_forever, kwargs={"poll_interval": 0.05},
            daemon=True)
        self._thread.start()
        if self.policy is not None:
            if self._scheduler is None:
                self._scheduler = MaintenanceScheduler(self.db, self.policy)
            self._scheduler.start()

    def stop(self) -> None:
        """Stop serving and drop all connections (looks like a crash
        to clients: their persistent connection breaks, §3.1)."""
        if self._scheduler is not None:
            self._scheduler.stop()
        self._tcp.shutdown()
        self._tcp.server_close()
        with self._connections_lock:
            for sock in list(self._connections):
                try:
                    sock.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                try:
                    sock.close()
                except OSError:
                    pass
            self._connections.clear()
        if self._thread is not None:
            self._thread.join(timeout=5)
            if self._thread.is_alive():
                # Leaking a live serve_forever thread silently (the
                # old behaviour set _thread = None regardless) hid a
                # wedged shutdown from callers; keep the handle so
                # is_stopped tells the truth, and say so.
                logger.warning(
                    "server thread did not exit within 5s; "
                    "leaving it running (daemon)")
            else:
                self._thread = None

    @property
    def is_stopped(self) -> bool:
        """True once the serving thread has actually exited (or was
        never started).  False while serving *and* when a stop timed
        out with the thread still alive."""
        return self._thread is None or not self._thread.is_alive()

    def close(self) -> None:
        """Alias for :meth:`stop`, completing the symmetric
        close/context-manager surface shared with
        :class:`~repro.core.database.LittleTable` and
        :class:`~repro.net.client.LittleTableClient`."""
        self.stop()

    def __enter__(self) -> "LittleTableServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # --------------------------------------------------------- dispatch

    def dispatch(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Handle one request message (also usable without TCP)."""
        return self.dispatcher.dispatch(request)


#: Commands admission control never sheds: the handshake, liveness
#: probes, and the stats read an operator needs in order to *see* the
#: overload.  All three are cheap and touch no table state.
_ADMISSION_EXEMPT = frozenset({"hello", "ping", "stats"})


class AdmissionController:
    """Bounded in-flight requests plus a queue-time deadline.

    Overload protection at the front door: at most ``max_inflight``
    requests execute concurrently; a request that cannot get a slot
    within ``queue_timeout_s`` (or its own propagated deadline,
    whichever is sooner) is *shed* with :class:`OverloadedError` -
    before any handler runs, so a shed request is never partially
    applied and is always safe to retry.  The error carries a
    ``retry_after_s`` hint the client's backoff honours.

    Shared by both server fronts; also usable standalone in tests.
    Metrics: ``server.admission.inflight`` (gauge),
    ``server.admission.shed``, ``server.admission.queue_wait_us``.
    """

    def __init__(self, max_inflight: int, queue_timeout_s: float = 0.25,
                 metrics=None, clock=time.monotonic):
        if max_inflight <= 0:
            raise ValueError("max_inflight must be positive")
        if queue_timeout_s < 0:
            raise ValueError("queue_timeout_s must be >= 0")
        self.max_inflight = max_inflight
        self.queue_timeout_s = queue_timeout_s
        self._clock = clock
        self._cond = threading.Condition(threading.Lock())
        self._inflight = 0
        self._g_inflight = self._m_shed = self._h_wait = None
        if metrics is not None:
            self._g_inflight = metrics.gauge("server.admission.inflight")
            self._m_shed = metrics.counter("server.admission.shed")
            self._h_wait = metrics.histogram("server.admission.queue_wait_us")

    @property
    def inflight(self) -> int:
        with self._cond:
            return self._inflight

    def retry_after_s(self) -> float:
        """The backoff hint sent with sheds: long enough for the
        current in-flight wave to drain, cheap to compute."""
        return max(self.queue_timeout_s, 0.05)

    def admit(self, deadline: Optional[float] = None) -> float:
        """Take an execution slot or raise :class:`OverloadedError`.

        Waits at most ``queue_timeout_s`` - clamped to the request's
        own ``deadline`` (absolute, on this controller's clock) when
        one was propagated.  Returns the seconds spent queued.
        """
        arrived = self._clock()
        give_up = arrived + self.queue_timeout_s
        if deadline is not None:
            give_up = min(give_up, deadline)
        with self._cond:
            while self._inflight >= self.max_inflight:
                remaining = give_up - self._clock()
                if remaining <= 0:
                    if self._m_shed is not None:
                        self._m_shed.inc()
                    raise OverloadedError(
                        f"server overloaded: {self.max_inflight} requests "
                        "in flight and the queue-time budget is spent",
                        retry_after_s=self.retry_after_s())
                self._cond.wait(remaining)
            self._inflight += 1
            if self._g_inflight is not None:
                self._g_inflight.set(self._inflight)
        waited = self._clock() - arrived
        if self._h_wait is not None and waited > 0:
            self._h_wait.observe(waited * 1e6)
        return waited

    def release(self) -> None:
        with self._cond:
            self._inflight -= 1
            if self._g_inflight is not None:
                self._g_inflight.set(self._inflight)
            self._cond.notify()


class RequestDispatcher:
    """Maps protocol commands onto a database-shaped object.

    Shared by the thread-per-connection :class:`LittleTableServer` and
    the asyncio :class:`~repro.net.async_server.AsyncLittleTableServer`;
    ``db`` may be a single :class:`~repro.core.database.LittleTable`
    engine or a :class:`~repro.net.shard.ShardRouter` spanning many —
    both expose the same catalog/insert/query facade.

    Never raises: engine errors and malformed requests come back as
    error responses, keeping the server up (a bad client must not look
    like a server crash to the other clients).
    """

    def __init__(self, db: Any,
                 admission: Optional[AdmissionController] = None):
        self.db = db
        self.metrics = db.metrics
        self.admission = admission
        self._m_requests = self.metrics.counter("server.requests")
        self._m_errors = self.metrics.counter("server.errors")

    def dispatch(self, request: Dict[str, Any]) -> Dict[str, Any]:
        command = request.get("cmd")
        handler = getattr(self, f"_cmd_{command}", None)
        self._m_requests.inc()
        request_id = request.get("id")
        if handler is None:
            self._m_errors.inc()
            return self._tag(protocol.error_response(
                "ProtocolViolationError", f"unknown command {command!r}"),
                request_id)
        # Deadline propagation: the client stamps its remaining budget
        # (``deadline_ms``); the async front stamps the frame's arrival
        # time so executor queueing counts against it too.
        arrival = request.pop("_arrival_monotonic", None)
        deadline = None
        deadline_ms = request.get("deadline_ms")
        if isinstance(deadline_ms, (int, float)) and deadline_ms > 0:
            deadline = ((arrival if arrival is not None
                         else time.monotonic()) + deadline_ms / 1000.0)
        admitted = False
        if self.admission is not None and command not in _ADMISSION_EXEMPT:
            try:
                self.admission.admit(deadline)
                admitted = True
            except OverloadedError as exc:
                self._m_errors.inc()
                return self._tag(protocol.error_response(
                    "OverloadedError", str(exc),
                    retry_after=exc.retry_after_s), request_id)
        try:
            if command in _WRITE_COMMANDS and self.db.read_only:
                self._m_errors.inc()
                self.metrics.counter("fault.read_only_rejections").inc()
                return self._tag(protocol.error_response(
                    "ReadOnlyModeError",
                    f"server is read-only: {self.db.read_only_reason}"),
                    request_id)
            # A request that overran its deadline while queued is shed
            # *before* the handler: nothing was executed, so nothing is
            # partially applied and the client may retry freely.
            if deadline is not None and time.monotonic() > deadline:
                self._m_errors.inc()
                self.metrics.counter("server.admission.deadline_sheds").inc()
                return self._tag(protocol.error_response(
                    "OverloadedError",
                    "request deadline expired before execution",
                    retry_after=0.0), request_id)
            started = time.perf_counter()
            try:
                response = handler(request)
            except LittleTableError as exc:
                self._m_errors.inc()
                fields = {}
                retry_after = getattr(exc, "retry_after_s", None)
                if retry_after is not None:
                    fields["retry_after"] = retry_after
                return self._tag(protocol.error_response(
                    type(exc).__name__, str(exc), **fields), request_id)
            except Exception as exc:  # defensive: keep the server up
                self._m_errors.inc()
                return self._tag(protocol.error_response(
                    "ServerError", str(exc)), request_id)
            # Latency is recorded after the handler so a STATS snapshot
            # never includes the request that carried it.
            self.metrics.histogram(
                f"server.cmd.{command}.latency_us").observe(
                (time.perf_counter() - started) * 1e6)
            return self._tag(response, request_id)
        finally:
            if admitted:
                self.admission.release()

    @staticmethod
    def _tag(response: Dict[str, Any],
             request_id: Optional[Any]) -> Dict[str, Any]:
        """Echo the v2 request id so pipelined clients can match the
        response; v1 requests carry no id and get none back."""
        if request_id is not None:
            response["id"] = request_id
        return response

    def _cmd_hello(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """The v2 handshake: negotiate version, features, error codes.

        The agreed version is the minimum of both sides' maxima, so a
        future v3 client still lands on 2 here; servers predating v2
        never reach this handler (their dispatch rejects the unknown
        command, which v2 clients treat as "speak v1").
        """
        client_version = request.get("version", 1)
        if not isinstance(client_version, int) or client_version < 1:
            raise _errors.ProtocolViolationError(
                f"bad hello version {client_version!r}")
        version = min(client_version, protocol.PROTOCOL_VERSION)
        features = []
        if version >= 2:
            features = [protocol.FEATURE_PIPELINE,
                        protocol.FEATURE_ERROR_CODES]
        return protocol.ok_response(
            version=version,
            features=features,
            error_codes=known_error_codes(),
            shards=getattr(self.db, "shard_count", 1),
            server="littletable",
        )

    def _cmd_ping(self, request: Dict[str, Any]) -> Dict[str, Any]:
        return protocol.ok_response(pong=True)

    def _cmd_list_tables(self, request: Dict[str, Any]) -> Dict[str, Any]:
        tables = []
        for name in self.db.table_names():
            table = self.db.table(name)
            tables.append({
                "name": name,
                "schema": table.schema.to_dict(),
                "ttl_micros": table.ttl_micros,
            })
        return protocol.ok_response(tables=tables)

    def _cmd_create_table(self, request: Dict[str, Any]) -> Dict[str, Any]:
        schema = Schema.from_dict(request["schema"])
        kwargs: Dict[str, Any] = {}
        if request.get("durability"):
            try:
                kwargs["durability"] = DurabilityPolicy.from_dict(
                    request["durability"])
            except (ValueError, TypeError) as exc:
                raise _errors.ProtocolViolationError(
                    f"bad durability policy: {exc}") from exc
        self.db.create_table(request["table"], schema,
                             ttl_micros=request.get("ttl_micros"),
                             **kwargs)
        return protocol.ok_response()

    def _cmd_drop_table(self, request: Dict[str, Any]) -> Dict[str, Any]:
        self.db.drop_table(request["table"])
        return protocol.ok_response()

    def _cmd_insert(self, request: Dict[str, Any]) -> Dict[str, Any]:
        table = self.db.table(request["table"])
        rows = [protocol.decode_row(row) for row in request["rows"]]
        if request.get("dicts"):
            inserted = table.insert(
                [dict(zip(request["columns"], row)) for row in rows])
        else:
            inserted = table.insert_tuples(rows)
        return protocol.ok_response(inserted=inserted)

    def _cmd_query(self, request: Dict[str, Any]) -> Dict[str, Any]:
        # Queries run off-lock against a copy-on-write snapshot; a
        # concurrent merge or TTL reclaim defers its file deletions
        # until the scan's read epoch drains, so an active merge never
        # blocks this command (§3.4.4).
        table = self.db.table(request["table"])
        key_range = KeyRange(
            min_prefix=protocol.decode_key(request.get("key_min")),
            min_inclusive=request.get("key_min_inclusive", True),
            max_prefix=protocol.decode_key(request.get("key_max")),
            max_inclusive=request.get("key_max_inclusive", True),
        )
        time_range = TimeRange(
            min_ts=request.get("ts_min"),
            min_inclusive=request.get("ts_min_inclusive", True),
            max_ts=request.get("ts_max"),
            max_inclusive=request.get("ts_max_inclusive", True),
        )
        direction = (DESCENDING if request.get("descending") else ASCENDING)
        query = Query(key_range, time_range, direction,
                      request.get("limit"))
        result = table.query(query)
        return protocol.ok_response(
            rows=[protocol.encode_row(row) for row in result.rows],
            more_available=result.more_available,
            rows_scanned=result.stats.rows_scanned,
        )

    def _cmd_latest(self, request: Dict[str, Any]) -> Dict[str, Any]:
        table = self.db.table(request["table"])
        row = table.latest(
            protocol.decode_key(request["prefix"]) or (),
            max_lookback_micros=request.get("max_lookback_micros"),
        )
        return protocol.ok_response(
            row=None if row is None else protocol.encode_row(row))

    def _cmd_maintenance(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """One synchronous maintenance pass over every table."""
        return protocol.ok_response(work=self.db.maintenance().as_dict())

    def _cmd_stats(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """The observability surface: one registry snapshot.

        ``metrics`` is exactly ``db.metrics.snapshot()`` - the same
        view an in-process user reads - plus per-table shape summaries
        when ``tables`` is requested.
        """
        response: Dict[str, Any] = {"metrics": self.db.metrics.snapshot(),
                                    "health": self.db.health_summary()}
        if request.get("tables", True):
            response["tables"] = {
                name: self.db.table(name).stats_summary()
                for name in self.db.table_names()
            }
        return protocol.ok_response(**response)

    def _cmd_flush(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """The §4.1.2 proposed flush command: force rows to disk."""
        table = self.db.table(request["table"])
        before_ts = request.get("before_ts")
        if before_ts is None:
            written = table.flush_all()
        else:
            written = table.flush_before(before_ts)
        return protocol.ok_response(tablets_written=len(written))

    def _cmd_bulk_delete(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """The §7 compliance bulk delete, by key prefix."""
        table = self.db.table(request["table"])
        prefix = protocol.decode_key(request["prefix"]) or ()
        removed = table.bulk_delete(prefix)
        return protocol.ok_response(rows_removed=removed)

    def _cmd_alter(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Schema changes (§3.5): append column, widen int32, set TTL."""
        import base64

        from ..core.schema import Column, ColumnType

        table = self.db.table(request["table"])
        action = request.get("action")
        if action == "add_column":
            spec = request["column"]
            default = spec.get("default")
            if isinstance(default, dict) and "b64" in default:
                default = base64.b64decode(default["b64"])
            table.append_column(Column(
                spec["name"], ColumnType(spec["type"]), default))
        elif action == "widen_column":
            table.widen_column(request["column_name"])
        elif action == "set_ttl":
            table.set_ttl(request.get("ttl_micros"))
        else:
            return protocol.error_response(
                "ProtocolViolationError",
                f"unknown alter action {action!r}")
        return protocol.ok_response()

    # ------------------------------------------------- durability admin

    def _cmd_wal_status(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Per-table WAL/durability state (``db.wal_status()`` shape)."""
        return protocol.ok_response(wal=self.db.wal_status())

    # ---------------------------------------------------- replication
    #
    # A warm standby (repro.net.replica.Follower) converges off three
    # commands: the manifest (which replicated-tier tables exist, what
    # tablets they reference, how far their logs reach), tablet bytes,
    # and sealed WAL records past an LSN.  They serve raw state, never
    # mutate, and exist only on a single-engine server (a sharded
    # router's workers each run their own replication).

    def _require_engine(self) -> LittleTable:
        if not isinstance(self.db, LittleTable):
            raise _errors.ProtocolViolationError(
                "replication commands require a single-engine server")
        return self.db

    def _cmd_repl_manifest(self, request: Dict[str, Any]) -> Dict[str, Any]:
        db = self._require_engine()
        tables: Dict[str, Any] = {}
        for name in db.table_names():
            table = db.table(name)
            if table.durability.tier != "replicated" or table.wal is None:
                continue
            with table.lock:
                metas = [meta.to_dict() for meta in
                         table.descriptor.tablets if meta.tier == "hot"]
                next_tablet_id = table.descriptor.next_tablet_id
            # Table-level durability fields travel with the manifest so
            # a promoted standby re-arms the same protection the
            # primary acknowledged writes under (engine-level fields
            # like follow_addr stay out - they describe this server).
            durability = {key: value
                          for key, value in table.durability.to_dict().items()
                          if key in ("tier", "group_commit_ms",
                                     "wal_segment_bytes")}
            tables[name] = {
                "schema": table.schema.to_dict(),
                "ttl_micros": table.ttl_micros,
                "tablets": metas,
                "next_tablet_id": next_tablet_id,
                "durable_lsn": table.wal.durable_lsn,
                "low_water": table.wal.low_water,
                "durability": durability,
            }
        return protocol.ok_response(tables=tables)

    def _cmd_repl_fetch_wal(self, request: Dict[str, Any]) -> Dict[str, Any]:
        import base64

        db = self._require_engine()
        table = db.table(request["table"])
        if table.wal is None:
            raise _errors.ProtocolViolationError(
                f"table {request['table']!r} has no WAL")
        after = int(request.get("after", 0))
        limit = min(int(request.get("limit_bytes", REPL_CHUNK_BYTES)),
                    REPL_CHUNK_BYTES)
        frames, last_lsn = table.wal.read_records_after(
            after, limit_bytes=limit)
        return protocol.ok_response(
            frames=base64.b64encode(frames).decode("ascii"),
            last_lsn=last_lsn,
            durable_lsn=table.wal.durable_lsn,
        )

    def _cmd_repl_fetch_tablet(self, request: Dict[str, Any]
                               ) -> Dict[str, Any]:
        import base64

        db = self._require_engine()
        table = db.table(request["table"])
        filename = request["filename"]
        with table.lock:
            referenced = {meta.filename for meta in
                          table.descriptor.tablets if meta.tier == "hot"}
        if filename not in referenced:
            # Also a path-traversal guard: only names the descriptor
            # itself references ever leave this handler.
            raise _errors.ProtocolViolationError(
                f"tablet {filename!r} is not referenced by "
                f"{request['table']!r}")
        offset = int(request.get("offset", 0))
        length = min(int(request.get("length", REPL_CHUNK_BYTES)),
                     REPL_CHUNK_BYTES)
        # Raw storage read: streaming a replica is an admin pass and
        # must not consume armed workload failpoints.
        size = db.disk.storage.size(filename)
        data = (db.disk.storage.read(filename, offset, length)
                if offset < size else b"")
        return protocol.ok_response(
            data=base64.b64encode(data).decode("ascii"),
            eof=offset + len(data) >= size,
            size=size,
        )
