"""TCP client/server protocol (the paper's adaptor <-> server link)."""

from .client import LittleTableClient
from .protocol import ConnectionLost, ProtocolError
from .remote import RemoteDatabase, RemoteTable
from .server import LittleTableServer

__all__ = ["LittleTableClient", "LittleTableServer", "ConnectionLost",
           "ProtocolError", "RemoteDatabase", "RemoteTable"]
