"""TCP client/server protocol (the paper's adaptor <-> server link).

Two interchangeable server fronts serve the same dispatcher: the
thread-per-connection :class:`LittleTableServer` (protocol v1 + v2)
and the asyncio :class:`AsyncLittleTableServer`, which multiplexes
pipelined v2 requests.  :class:`ShardRouter` partitions tables across
N engines behind the same database facade, so either front scales out
without a protocol change.
"""

from .async_server import AsyncLittleTableServer
from .client import ClientConfig, LittleTableClient, Pipeline, PendingReply
from .protocol import PROTOCOL_VERSION, ConnectionLost, ProtocolError
from .remote import RemoteDatabase, RemoteTable
from .server import LittleTableServer, RequestDispatcher
from .shard import ShardRouter, ShardedTable

__all__ = [
    "AsyncLittleTableServer",
    "ClientConfig",
    "ConnectionLost",
    "LittleTableClient",
    "LittleTableServer",
    "PendingReply",
    "Pipeline",
    "ProtocolError",
    "PROTOCOL_VERSION",
    "RemoteDatabase",
    "RemoteTable",
    "RequestDispatcher",
    "ShardRouter",
    "ShardedTable",
]
