"""Wire protocol between the client adaptor and the server.

The paper's clients load an adaptor into SQLite's virtual-table
interface; "internally, the adaptor communicates with the server over
TCP to get a list of available tables, determine the schema and sort
order of each table, and perform inserts or queries" (§3.1).  The
adaptor "maintains a persistent TCP connection to the server in order
to detect server crashes" (§3.1).

This module defines the framing and message encoding: each frame is a
4-byte big-endian length followed by a UTF-8 JSON document.  Blob
values are wrapped as ``{"$b": <base64>}`` so rows survive JSON.

Protocol versions:

* **v1** (the original wire format): strict request/response — the
  client sends one command frame and reads one response frame.
* **v2** adds an optional HELLO handshake and per-message request
  ids.  A client opens with ``{"cmd": "hello", "version": 2}``; a v2
  server answers with its version, feature list, and the error codes
  it may emit.  Any request may then carry an ``"id"`` field, which
  the server echoes in the matching response, allowing many requests
  to be in flight on one connection (responses may arrive out of
  order).  Both sides stay interoperable with v1 peers: a v1 server
  rejects HELLO with an unknown-command error (the client falls back
  to sequential mode), and a v1 client simply never sends HELLO or
  ids (the server answers in order, as before).
"""

from __future__ import annotations

import base64
import json
import socket
import struct
from typing import Any, Dict, List, Optional, Sequence, Tuple

MAX_FRAME_BYTES = 64 * 1024 * 1024
_LENGTH = struct.Struct(">I")

#: Highest protocol version this build speaks.
PROTOCOL_VERSION = 2

#: Feature flags advertised in the HELLO exchange.  ``pipeline``
#: means the peer accepts multiple in-flight requests tagged with
#: ``id`` fields and may answer them out of order.
FEATURE_PIPELINE = "pipeline"
#: The server's HELLO response enumerates the error codes it emits,
#: so clients map codes to local exception types by negotiation
#: instead of by guessing.
FEATURE_ERROR_CODES = "error_codes"


class ProtocolError(Exception):
    """Malformed frame or message."""


class ConnectionLost(Exception):
    """The peer closed the connection (e.g. a server crash)."""


# ---------------------------------------------------------------- values

def encode_value(value: Any) -> Any:
    """Make one column value JSON-safe."""
    if isinstance(value, (bytes, bytearray)):
        return {"$b": base64.b64encode(bytes(value)).decode("ascii")}
    return value


def decode_value(value: Any) -> Any:
    """Inverse of :func:`encode_value`."""
    if isinstance(value, dict) and "$b" in value:
        return base64.b64decode(value["$b"])
    return value


def encode_row(row: Sequence[Any]) -> List[Any]:
    return [encode_value(v) for v in row]


def decode_row(row: Sequence[Any]) -> Tuple[Any, ...]:
    return tuple(decode_value(v) for v in row)


def encode_key(key: Optional[Sequence[Any]]) -> Optional[List[Any]]:
    return None if key is None else [encode_value(v) for v in key]


def decode_key(key: Optional[Sequence[Any]]) -> Optional[Tuple[Any, ...]]:
    return None if key is None else tuple(decode_value(v) for v in key)


# ---------------------------------------------------------------- frames

def encode_frame(message: Dict[str, Any]) -> bytes:
    """Serialize one message to its on-the-wire frame bytes."""
    payload = json.dumps(message).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame too large: {len(payload)} bytes")
    return _LENGTH.pack(len(payload)) + payload


def decode_payload(payload: bytes) -> Dict[str, Any]:
    """Parse one frame payload (the bytes after the length header)."""
    try:
        message = json.loads(payload.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"bad frame: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError("frame payload must be a JSON object")
    return message


def send_message(sock: socket.socket, message: Dict[str, Any]) -> None:
    """Serialize and send one frame."""
    sock.sendall(encode_frame(message))


def recv_message(sock: socket.socket) -> Dict[str, Any]:
    """Receive one frame; raises ConnectionLost on EOF."""
    header = _recv_exact(sock, _LENGTH.size)
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame too large: {length} bytes")
    return decode_payload(_recv_exact(sock, length))


def _recv_exact(sock: socket.socket, length: int) -> bytes:
    chunks = []
    remaining = length
    while remaining:
        try:
            chunk = sock.recv(remaining)
        except (ConnectionResetError, BrokenPipeError, OSError) as exc:
            raise ConnectionLost(str(exc)) from exc
        if not chunk:
            raise ConnectionLost("peer closed the connection")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def error_response(kind: str, message: str, **fields: Any) -> Dict[str, Any]:
    """Build an error reply; extra ``fields`` ride alongside (e.g. the
    ``retry_after`` hint on ``OverloadedError`` sheds)."""
    response = {"ok": False, "error": kind, "message": message}
    response.update(fields)
    return response


def ok_response(**fields: Any) -> Dict[str, Any]:
    response = {"ok": True}
    response.update(fields)
    return response
