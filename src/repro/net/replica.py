"""Warm-standby replication: a read-only follower of a primary.

``ltdb serve --follow host:port`` runs one of these next to a normal
server: the :class:`Follower` polls the primary for its replication
manifest (which ``replicated``-tier tables exist, which sealed tablets
they reference, how far their logs reach), mirrors tablet files it
lacks, and tails each table's WAL - applying streamed records into its
own memtables through the same dedup'd path crash replay uses.  The
local engine stays in read-only mode the whole time, so the standby
serves ``query``/``latest``/``stats`` but rejects writes; replication
lag is reported through ``wal_status()`` and ``health_summary()``.

Convergence per table, each poll:

1. If the primary's tablet set changed - or records the follower
   still needs were recycled (``applied < low_water - 1``) - the
   follower *resyncs*: it fetches missing tablet files, installs the
   primary's descriptor (the primary's table-level durability fields
   are persisted in it, but the live follower table runs WAL-less:
   replication is this copy's durability while it follows), swaps in
   a fresh table object, and
   fast-forwards its applied LSN to the log's low-water mark.  Stale
   local tablet files are left for the next startup scrub; in-flight
   local reads keep their COW snapshot.
2. It then tails the log: fetch framed records past the applied LSN,
   apply, advance.  Rows both streamed and later re-fetched inside a
   tablet dedup through the primary-key uniqueness check.

Divergence - the primary's durable LSN moving *backwards* (it was
restored or replaced) - raises
:class:`~repro.core.errors.ReplicaDivergedError` and halts the sync
loop; re-seed the standby from a fresh snapshot.

``promote()`` turns the standby into a primary: the sync loop stops,
read-only mode clears, every replicated table is re-opened with the
durability policy carried over from the old primary (streamed rows
are flushed first, so the fresh WAL's LSN space starts clean), and
the local engine - whose on-disk state is always a valid LittleTable
directory (``ltdb fsck`` passes) - starts taking writes with the same
protection the old primary acknowledged them under.
"""

from __future__ import annotations

import base64
import threading
import time
from typing import Any, Dict, Optional

from ..core.descriptor import TableDescriptor
from ..core.durability import DurabilityPolicy
from ..core.errors import LittleTableError, ReplicaDivergedError
from ..core.schema import Schema
from ..core.table import Table
from ..core.tablet import TabletMeta
from ..core.wal import iter_records
from .client import ClientConfig, LittleTableClient
from .protocol import ConnectionLost


class Follower:
    """Streams one primary's replicated tables into a local engine."""

    def __init__(self, db, host: str, port: int,
                 poll_interval_s: float = 0.2,
                 client: Optional[LittleTableClient] = None):
        self.db = db
        self.address = f"{host}:{port}"
        self.poll_interval_s = poll_interval_s
        self._client = client if client is not None else LittleTableClient(
            host, port, config=ClientConfig(request_timeout_s=10.0))
        self._applied: Dict[str, int] = {}
        self._primary_durable: Dict[str, int] = {}
        self._last_sync: Optional[float] = None
        self.error: Optional[str] = None
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._m_records = db.metrics.counter("repl.records_applied")
        self._m_tablets = db.metrics.counter("repl.tablets_fetched")
        self._m_resyncs = db.metrics.counter("repl.resyncs")
        self._m_polls = db.metrics.counter("repl.polls")
        # The standby is read-only for its whole lifetime; the server
        # dispatcher rejects write commands off this flag.
        db.enter_read_only(f"following {self.address}")
        db.replication = self

    # ----------------------------------------------------------- control

    def start(self) -> "Follower":
        """Run the sync loop in a background thread (idempotent)."""
        if self._thread is None or not self._thread.is_alive():
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._loop, name="ltdb-follower", daemon=True)
            self._thread.start()
        return self

    def stop(self) -> None:
        """Stop polling; the local engine stays read-only."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        self._client.close()

    def promote(self):
        """Turn this standby into a primary: stop following, exit
        read-only, re-arm durability, start taking writes.  Returns
        the local engine."""
        self.stop()
        self.db.exit_read_only()
        self.db.replication = None
        self._rearm_durability()
        return self.db

    def _rearm_durability(self) -> None:
        """Re-open followed tables with their persisted durability.

        While following, tables run WAL-less (replication is this
        copy's durability), but a promoted primary must log
        acknowledged writes again - otherwise failover silently
        downgrades every replicated table to the ``none`` tier.
        Streamed-but-unflushed rows are sealed into tablets first so
        the fresh WAL starts with a clean LSN space (streamed
        memtables carry the *old primary's* LSNs, which mean nothing
        to the new log)."""
        db = self.db
        for name in sorted(db._tables):
            descriptor = TableDescriptor.load(db.disk, name)
            effective = db.durability.merged_with(
                DurabilityPolicy.from_dict(descriptor.durability))
            if not effective.wal_enabled:
                continue
            db._tables[name].flush_all()
            descriptor = TableDescriptor.load(db.disk, name)
            table = Table(db.disk, descriptor, db.config, db.clock,
                          cold_disk=db.cold_disk, metrics=db.metrics,
                          tracer=db.tracer, read_cache=db.read_cache,
                          durability=effective)
            table._fault_listener = db._note_storage_failure
            if table.wal is not None:
                # Primes LSN/segment bookkeeping past any segment
                # files that survived on this side; replayed rows
                # dedup against the tablets just flushed.
                table.replay_wal()
            db._tables[name] = table

    def __enter__(self) -> "Follower":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _loop(self) -> None:
        while not self._stop.is_set():
            try:
                self.sync_once()
            except ReplicaDivergedError as exc:
                self.error = str(exc)
                return  # halted: operator must re-seed
            except (ConnectionLost, OSError, LittleTableError) as exc:
                # Primary down or transient: keep serving reads at the
                # last applied state and retry next poll.
                self.error = f"{type(exc).__name__}: {exc}"
            else:
                self.error = None
            self._stop.wait(self.poll_interval_s)

    # -------------------------------------------------------------- sync

    def sync_once(self) -> Dict[str, int]:
        """One convergence pass; returns records applied per table."""
        manifest = self._client._call(
            {"cmd": "repl_manifest"}, idempotent=True)["tables"]
        self._m_polls.inc()
        applied_now: Dict[str, int] = {}
        for name in sorted(manifest):
            applied_now[name] = self._sync_table(name, manifest[name])
        self._last_sync = time.monotonic()
        return applied_now

    def _sync_table(self, name: str, info: Dict[str, Any]) -> int:
        durable = int(info["durable_lsn"])
        low = int(info["low_water"])
        applied = self._applied.get(name, 0)
        if durable < applied:
            raise ReplicaDivergedError(
                f"{name}: primary durable LSN {durable} < applied "
                f"{applied}; the primary was restored or replaced - "
                f"re-seed this standby from a fresh snapshot")
        remote_files = [m["filename"] for m in info["tablets"]]
        local = self.db._tables.get(name)
        local_files = ([] if local is None else
                       [m.filename for m in local.descriptor.tablets])
        if (local is None or sorted(local_files) != sorted(remote_files)
                or applied < low - 1):
            self._resync_table(name, info)
            applied = max(applied, low - 1)
        table = self.db._tables[name]
        records_applied = 0
        while applied < durable:
            response = self._client._call(
                {"cmd": "repl_fetch_wal", "table": name,
                 "after": applied}, idempotent=True)
            frames = base64.b64decode(response["frames"])
            if not frames:
                break
            issues: list = []
            records = list(iter_records(frames, f"repl:{name}", issues))
            last = int(response["last_lsn"])
            if not records or last <= applied:
                break
            if records[0].lsn > applied + 1:
                # The records between our applied LSN and this batch
                # were recycled into sealed tablets after we read the
                # manifest (a flush raced this poll).  Applying the
                # batch would silently skip them, so stop here; the
                # next poll's manifest shows the new tablet set and
                # resyncs before tailing again.
                break
            table.apply_wal_records(records)
            records_applied += len(records)
            applied = last
        self._m_records.inc(records_applied)
        self._applied[name] = applied
        self._primary_durable[name] = durable
        return records_applied

    def _resync_table(self, name: str, info: Dict[str, Any]) -> None:
        """Mirror the primary's tablet set and swap in a fresh table."""
        self._m_resyncs.inc()
        for meta in info["tablets"]:
            filename = meta["filename"]
            if not self.db.disk.exists(filename):
                self._fetch_tablet(name, filename)
        descriptor = TableDescriptor(
            name=name,
            schema=Schema.from_dict(info["schema"]),
            ttl_micros=info.get("ttl_micros"),
            tablets=[TabletMeta.from_dict(m) for m in info["tablets"]],
            next_tablet_id=int(info.get("next_tablet_id", 1)),
            # The primary's table-level durability fields persist here
            # so promote() re-arms the same protection; the live
            # follower table still runs WAL-less (streaming is its
            # durability while it follows).
            durability=info.get("durability") or None,
        )
        descriptor.save(self.db.disk)
        table = Table(self.db.disk, descriptor, self.db.config,
                      self.db.clock, cold_disk=self.db.cold_disk,
                      metrics=self.db.metrics, tracer=self.db.tracer,
                      read_cache=self.db.read_cache)
        table._fault_listener = self.db._note_storage_failure
        self.db._tables[name] = table

    def _fetch_tablet(self, name: str, filename: str) -> None:
        chunks = bytearray()
        offset = 0
        while True:
            response = self._client._call(
                {"cmd": "repl_fetch_tablet", "table": name,
                 "filename": filename, "offset": offset},
                idempotent=True)
            data = base64.b64decode(response["data"])
            chunks += data
            offset += len(data)
            if response.get("eof") or not data:
                break
        self.db.disk.write_file(filename, bytes(chunks))
        self._m_tablets.inc()

    # ------------------------------------------------------------ status

    def lag_records(self) -> int:
        """Total records the standby is behind, across all tables."""
        return sum(max(0, self._primary_durable.get(n, 0)
                       - self._applied.get(n, 0))
                   for n in self._primary_durable)

    def status(self) -> Dict[str, Any]:
        """JSON-safe replication state for wal_status()/health."""
        age = (None if self._last_sync is None
               else time.monotonic() - self._last_sync)
        return {
            "following": self.address,
            "tables": {
                name: {
                    "applied_lsn": self._applied.get(name, 0),
                    "primary_durable_lsn": durable,
                    "lag_records": max(
                        0, durable - self._applied.get(name, 0)),
                }
                for name, durable in sorted(self._primary_durable.items())
            },
            "lag_records": self.lag_records(),
            "last_sync_age_s": age,
            "error": self.error,
        }
