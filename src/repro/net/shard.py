"""Scale-out: a shard router over N LittleTable engine workers.

The paper's deployment funnels "hundreds of thousands of devices"
through adaptors into a single server (§3.1); one engine behind one
thread-per-connection accept loop is the scaling wall.  The
:class:`ShardRouter` breaks it by partitioning every table's rows
across N independent engines and presenting the same database facade
the network dispatcher already speaks, so both the threaded and the
asyncio servers serve a router without knowing it.

Routing is deterministic per row key:

* Tables whose primary key has leading columns before ``ts`` route by
  a stable hash (CRC32) of those leading values - every row of one
  device lands on one shard, so ``latest(prefix)`` and fully-pinned
  prefix queries touch a single worker.
* Tables keyed by bare ``ts`` route by the four-hour grid underlying
  the engine's time-period bins (§3.4.2): ``ts // 4h  mod  N``.  The
  grid is epoch-aligned and independent of "now", so routing never
  shifts as periods roll over.

Queries outside a single shard scatter to every live worker and merge
through a k-way ordered merge on the schema's key tuples (the same
plain tuple comparison the codec's decode_range uses), preserving the
server row limit's ``more_available`` continuation contract across
shard boundaries: merged rows are only emitted up to the smallest
last-key any truncated shard reached, so a client resuming past the
last returned key never skips rows another shard still holds.

Failure isolation: a worker that crashes (failpoint
:class:`~repro.disk.faults.CrashPoint`, torn I/O, unexpected internal
errors) is marked down.  Requests touching its keys raise
:class:`~repro.core.errors.ShardDegradedError`; keys on the surviving
workers - and the router itself - keep serving.
"""

from __future__ import annotations

import heapq
import time
import zlib
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ..core.config import EngineConfig
from ..core.database import LittleTable
from ..core.errors import (LittleTableError, OverloadedError,
                           ShardDegradedError)
from ..core.maintenance import MaintenancePolicy, MaintenanceReport
from ..core.periods import FOUR_HOURS
from ..core.row import DESCENDING, KeyRange, Query, QueryStats, TimeRange
from ..core.schema import Schema
from ..core.table import QueryResult
from ..core.vector import AggregatePartials, AggregateSpec
from ..obs.metrics import MetricsRegistry
from ..util.clock import Clock


def shard_of(leading: Tuple[Any, ...], ts: Optional[int],
             shard_count: int) -> int:
    """The shard owning a key: hash of the leading key columns, or
    the epoch-aligned four-hour time bin for bare-``ts`` keys.

    ``repr`` of the canonical stored value types (int/float/str/bytes)
    is deterministic across processes, so the CRC is a stable routing
    hash with no dependence on Python's randomized ``hash()``.
    """
    if shard_count == 1:
        return 0
    if leading:
        digest = zlib.crc32(repr(leading).encode("utf-8"))
        return digest % shard_count
    if ts is None:
        return 0
    return (ts // FOUR_HOURS) % shard_count


def merge_sorted_runs(runs: Sequence[Sequence[Tuple[Any, ...]]],
                      key: Callable[[Tuple[Any, ...]], Tuple[Any, ...]],
                      descending: bool = False
                      ) -> Iterator[Tuple[Any, ...]]:
    """K-way merge of per-shard sorted runs into one ordered stream.

    Plain tuple comparison on the schema's key tuples - the same
    ordering the codec's ``decode_range`` binary-searches with.  Keys
    are globally unique (each full key routes to exactly one shard),
    so ties cannot occur between runs.
    """
    if descending:
        heap = [(_Reversed(key(run[0])), index, 0)
                for index, run in enumerate(runs) if run]
    else:
        heap = [(key(run[0]), index, 0) for index, run in enumerate(runs)
                if run]
    heapq.heapify(heap)
    while heap:
        _k, run_index, position = heapq.heappop(heap)
        run = runs[run_index]
        yield run[position]
        position += 1
        if position < len(run):
            next_key = key(run[position])
            if descending:
                heapq.heappush(
                    heap, (_Reversed(next_key), run_index, position))
            else:
                heapq.heappush(heap, (next_key, run_index, position))


class _Reversed:
    """Inverts comparison so heapq pops the greatest key first
    (string key columns rule out arithmetic negation)."""

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value

    def __lt__(self, other: "_Reversed") -> bool:
        return other.value < self.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Reversed) and other.value == self.value


class ShardedTable:
    """Table facade spanning one logical table's N physical shards.

    Implements the slice of the :class:`~repro.core.table.Table` API
    the network dispatcher and the SQL executor use; rows fan out on
    write and merge back ordered on read.
    """

    def __init__(self, router: "ShardRouter", name: str):
        self._router = router
        self.name = name

    # ------------------------------------------------------- structure

    @property
    def schema(self) -> Schema:
        return self._router._any_live_table(self.name).schema

    @property
    def ttl_micros(self) -> Optional[int]:
        return self._router._any_live_table(self.name).ttl_micros

    # ---------------------------------------------------------- writes

    def insert(self, rows: Sequence[Dict[str, Any]]) -> int:
        return self._router._insert(self.name, rows, dicts=True)

    def insert_tuples(self, rows: Sequence[Tuple[Any, ...]]) -> int:
        return self._router._insert(self.name, rows, dicts=False)

    # --------------------------------------------------------- queries

    def query(self, query: Query) -> QueryResult:
        return self._router._query(self.name, query)

    def scan(self, query: Query) -> Iterator[Tuple[Any, ...]]:
        """Unbounded ordered stream (SQL executor path): repeated
        query commands continued past each truncation, like the
        client adaptor does (§3.5)."""
        return self._router._scan(self.name, query)

    def latest(self, prefix: Sequence[Any],
               max_lookback_micros: Optional[int] = None
               ) -> Optional[Tuple[Any, ...]]:
        return self._router._latest(
            self.name, prefix, max_lookback_micros=max_lookback_micros)

    def aggregate_partials(self, spec: AggregateSpec) -> AggregatePartials:
        """Scatter-gather partial aggregation (vectorized pushdown).

        Each shard folds its own tablets and memtables into partial
        group states locally; only those states cross the gather and
        merge - never raw rows.  Keys place deterministically on one
        shard, so no group is double counted.  Pinned-prefix queries
        skip the fan-out entirely, like point queries do.
        """
        router = self._router
        pinned = router._pinned_shard(
            self.schema, Query(spec.key_range, spec.time_range))
        if pinned is not None:
            router._m_single.inc()
            return router._run(
                pinned,
                lambda db: db.table(self.name).aggregate_partials(spec))
        router._m_scatter.inc()
        merged = AggregatePartials()
        for partials in router._fanout_table(
                self.name, lambda t: t.aggregate_partials(spec)):
            merged.merge(partials)
        return merged

    def prune_preview(self, time_range: TimeRange, key_range: KeyRange
                      ) -> Tuple[int, int]:
        """Summed (would-open, total) tablet counts across shards."""
        previews = self._router._fanout_table(
            self.name,
            lambda t: t.prune_preview(time_range, key_range))
        return (sum(selected for selected, _total in previews),
                sum(total for _selected, total in previews))

    @property
    def unflushed_memtable_count(self) -> int:
        return sum(self._router._fanout_table(
            self.name, lambda t: t.unflushed_memtable_count))

    # ----------------------------------------------- admin & lifecycle

    def flush_all(self) -> List[Any]:
        written: List[Any] = []
        for result in self._router._fanout_table(self.name,
                                                 lambda t: t.flush_all()):
            written.extend(result)
        return written

    def flush_before(self, ts: int) -> List[Any]:
        written: List[Any] = []
        for result in self._router._fanout_table(
                self.name, lambda t: t.flush_before(ts)):
            written.extend(result)
        return written

    def bulk_delete(self, prefix: Sequence[Any]) -> int:
        prefix = tuple(prefix)
        schema = self.schema
        leading_width = schema.key_width - 1
        if leading_width and len(prefix) >= leading_width:
            shard = self._router._shard_for_leading(
                prefix[:leading_width])
            return self._router._run(
                shard,
                lambda db: db.table(self.name).bulk_delete(prefix))
        return sum(self._router._fanout_table(
            self.name, lambda t: t.bulk_delete(prefix)))

    def append_column(self, column: Any) -> None:
        self._router._fanout_table(
            self.name, lambda t: t.append_column(column))

    def widen_column(self, name: str) -> None:
        self._router._fanout_table(
            self.name, lambda t: t.widen_column(name))

    def set_ttl(self, ttl_micros: Optional[int]) -> None:
        self._router._fanout_table(
            self.name, lambda t: t.set_ttl(ttl_micros))

    def stats_summary(self) -> Dict[str, Any]:
        """Shard-merged shape summary: integer counts sum, the rest
        come from shard 0's survivors."""
        summaries = self._router._fanout_table(
            self.name, lambda t: t.stats_summary())
        merged: Dict[str, Any] = dict(summaries[0])
        for summary in summaries[1:]:
            for field, value in summary.items():
                if field in ("name", "ttl_micros", "schema_version"):
                    continue
                if isinstance(value, (int, float)) and not isinstance(
                        value, bool):
                    base = merged.get(field) or 0
                    merged[field] = base + value
        merged["shards"] = len(summaries)
        return merged


class ShardRouter:
    """N engine workers behind one database facade.

    Duck-types the :class:`~repro.core.database.LittleTable` facade
    (catalog, insert/query/latest, maintenance, health), so the
    network dispatcher, the SQL session, and ``repro.connect()``
    callers cannot tell one engine from many.
    """

    def __init__(self, shards: int = 4,
                 data_dir: Optional[str] = None,
                 config: Optional[EngineConfig] = None,
                 clock: Optional[Clock] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 maintenance_policy: Optional[MaintenancePolicy] = None,
                 engines: Optional[Sequence[LittleTable]] = None,
                 durability=None):
        """Open ``shards`` workers, either in memory or over
        ``data_dir/shard-NN`` subdirectories (gnitz-style: one
        manifest root, one subtree per shard).  Pass ``engines`` to
        adopt pre-built workers (tests, custom disks); they should
        share a clock and metrics registry for coherent routing and
        one STATS surface.  ``durability`` (a
        :class:`~repro.core.durability.DurabilityPolicy`) becomes each
        worker's database default: per-shard WALs, one per worker
        table.
        """
        if engines is not None:
            if not engines:
                raise ValueError("engines must be non-empty")
            self.engines = list(engines)
            self.metrics = metrics if metrics is not None \
                else self.engines[0].metrics
        else:
            if shards < 1:
                raise ValueError("shards must be >= 1")
            self.metrics = metrics if metrics is not None \
                else MetricsRegistry()
            self.engines = []
            for index in range(shards):
                subdir = None if data_dir is None else \
                    f"{data_dir}/shard-{index:02d}"
                kwargs = {} if durability is None else \
                    {"durability": durability}
                self.engines.append(LittleTable.open(
                    subdir, config=config, clock=clock,
                    metrics=self.metrics,
                    maintenance_policy=maintenance_policy, **kwargs))
        self.clock = self.engines[0].clock
        self.config = self.engines[0].config
        self.durability = self.engines[0].durability
        # Worker crash state: shard index -> reason string.  Sticky
        # until revive_shard; guarded only by the GIL (reads are
        # racy-but-monotonic, which is fine for routing decisions).
        self._down: Dict[int, str] = {}
        # Overload cooldowns: shard index -> monotonic deadline.  A
        # worker that shed with OverloadedError is skipped - fast,
        # with a typed retryable error - until the deadline passes,
        # so one overloaded shard cannot drag every fan-out query's
        # tail behind its admission queue.  Non-sticky by design:
        # unlike a crash, overload heals by itself.
        self._overloaded_until: Dict[int, float] = {}
        self.overload_cooldown_s = 1.0
        self._pool = ThreadPoolExecutor(
            max_workers=max(2, len(self.engines)),
            thread_name_prefix="shard")
        self._m_scatter = self.metrics.counter("shard.scatter_queries")
        self._m_single = self.metrics.counter("shard.single_shard_queries")
        self._m_degraded = self.metrics.gauge("shard.degraded")
        self._m_crashes = self.metrics.counter("shard.worker_crashes")
        self._m_routed = self.metrics.counter("shard.rows_routed")
        self._m_overload_sheds = self.metrics.counter("shard.overload_sheds")
        self._m_cooldown_skips = self.metrics.counter(
            "shard.cooldown_skips")

    # ------------------------------------------------------------ shape

    @property
    def shard_count(self) -> int:
        return len(self.engines)

    @property
    def degraded_shards(self) -> Dict[int, str]:
        """Downed workers: shard index -> crash reason."""
        return dict(self._down)

    def revive_shard(self, index: int) -> None:
        """Reopen a downed worker's engine over the same disk (the
        operator's restart).  Unflushed rows it held are lost, exactly
        like a process crash of that worker (§4.1)."""
        engine = self.engines[index]
        self.engines[index] = LittleTable(
            disk=engine.disk, config=engine.config, clock=engine.clock,
            cold_disk=engine.cold_disk, metrics=self.metrics,
            maintenance_policy=engine.maintenance_policy,
            durability=engine.durability)
        self._down.pop(index, None)
        self._m_degraded.set(len(self._down))

    # --------------------------------------------------------- routing

    def _shard_for_leading(self, leading: Tuple[Any, ...]) -> int:
        return shard_of(leading, None, len(self.engines))

    def _route_row(self, schema: Schema, leading_indexes: List[int],
                   ts_index: int, row: Tuple[Any, ...]) -> int:
        if leading_indexes:
            leading = tuple(row[i] for i in leading_indexes)
            return shard_of(leading, None, len(self.engines))
        ts = row[ts_index] if ts_index < len(row) else None
        if ts is None:
            ts = self.clock.now()
        return shard_of((), ts, len(self.engines))

    def mark_overloaded(self, index: int,
                        retry_after_s: Optional[float] = None) -> None:
        """Put one shard into overload cooldown: requests touching it
        shed immediately (typed, retryable) until the cooldown lapses.
        Called internally when a worker raises
        :class:`OverloadedError`; also an operator/test hook."""
        cooldown = (retry_after_s if retry_after_s is not None
                    else self.overload_cooldown_s)
        self._overloaded_until[index] = time.monotonic() + cooldown
        self._m_overload_sheds.inc()

    def _overload_remaining(self, index: int) -> float:
        """Seconds of cooldown left for one shard (<= 0 when healthy).
        A lapsed entry is reaped so the dict never grows."""
        until = self._overloaded_until.get(index)
        if until is None:
            return 0.0
        remaining = until - time.monotonic()
        if remaining <= 0:
            self._overloaded_until.pop(index, None)
        return remaining

    def _check_overloaded(self, index: int) -> None:
        remaining = self._overload_remaining(index)
        if remaining > 0:
            self._m_cooldown_skips.inc()
            raise OverloadedError(
                f"shard {index} is overloaded (cooldown "
                f"{remaining:.2f}s remaining)",
                retry_after_s=remaining)

    def _run(self, index: int, fn: Callable[[LittleTable], Any]) -> Any:
        """Run one operation on one worker, with crash isolation.

        Engine errors (validation, duplicate keys, read-only mode...)
        pass through: they are the worker answering, not dying.
        :class:`OverloadedError` additionally puts the shard into a
        short cooldown so follow-up fan-outs shed fast instead of
        queueing behind it.  Anything else - failpoint CrashPoints,
        torn I/O, internal bugs - marks the worker down and surfaces
        as :class:`ShardDegradedError` so the router keeps serving the
        surviving shards.
        """
        reason = self._down.get(index)
        if reason is not None:
            raise ShardDegradedError(
                f"shard {index} is down: {reason}")
        self._check_overloaded(index)
        try:
            return fn(self.engines[index])
        except OverloadedError as exc:
            self.mark_overloaded(index, exc.retry_after_s)
            raise
        except LittleTableError:
            raise
        except BaseException as exc:
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                raise
            self._down[index] = f"{type(exc).__name__}: {exc}"
            self._m_crashes.inc()
            self._m_degraded.set(len(self._down))
            raise ShardDegradedError(
                f"shard {index} worker crashed: "
                f"{type(exc).__name__}: {exc}") from exc

    def _live_indexes(self) -> List[int]:
        return [i for i in range(len(self.engines)) if i not in self._down]

    def _fanout(self, fn: Callable[[LittleTable], Any],
                indexes: Optional[List[int]] = None) -> List[Any]:
        """Run ``fn`` on every live worker in parallel; results in
        shard order.  Any worker crash degrades that shard and the
        whole operation raises ShardDegradedError."""
        if indexes is None:
            indexes = self._live_indexes()
        if self._down:
            down = ", ".join(f"{i} ({r})" for i, r in
                             sorted(self._down.items()))
            raise ShardDegradedError(
                f"operation spans all shards but some are down: {down}")
        # Health-aware scatter: a shard in overload cooldown sheds the
        # whole fan-out up front - a fast typed retryable error -
        # rather than letting one slow worker set every query's tail.
        for index in indexes:
            self._check_overloaded(index)
        if len(indexes) == 1:
            return [self._run(indexes[0], fn)]
        futures = [
            self._pool.submit(self._run, index, fn) for index in indexes
        ]
        results = []
        errors: List[BaseException] = []
        for future in futures:
            try:
                results.append(future.result())
            except BaseException as exc:
                errors.append(exc)
        if errors:
            # Degradation (data unavailable) outranks overload
            # (transient); among overloads surface the longest hint so
            # the client's single backoff clears every cooldown.
            for error in errors:
                if isinstance(error, ShardDegradedError):
                    raise error
            overloads = [e for e in errors
                         if isinstance(e, OverloadedError)]
            if overloads:
                raise max(overloads,
                          key=lambda e: e.retry_after_s or 0)
            raise errors[0]
        return results

    def _fanout_table(self, name: str,
                      fn: Callable[[Any], Any]) -> List[Any]:
        return self._fanout(lambda db: fn(db.table(name)))

    def _any_live_table(self, name: str):
        for index in self._live_indexes():
            return self.engines[index].table(name)
        raise ShardDegradedError("all shards are down")

    # ---------------------------------------------------------- catalog

    def table_names(self) -> List[str]:
        for index in self._live_indexes():
            return self.engines[index].table_names()
        raise ShardDegradedError("all shards are down")

    def has_table(self, name: str) -> bool:
        for index in self._live_indexes():
            return self.engines[index].has_table(name)
        raise ShardDegradedError("all shards are down")

    def table(self, name: str) -> ShardedTable:
        self._any_live_table(name)  # NoSuchTableError when absent
        return ShardedTable(self, name)

    def create_table(self, name: str, schema: Schema,
                     ttl_micros: Optional[int] = None,
                     durability=None) -> ShardedTable:
        """DDL fans out to every worker (the catalog is replicated;
        only row data is partitioned).  A ``durability`` policy fans
        out with it: each worker keeps its own per-shard WAL for the
        table."""
        self._fanout(lambda db: db.create_table(
            name, schema, ttl_micros=ttl_micros, durability=durability))
        return ShardedTable(self, name)

    def drop_table(self, name: str) -> None:
        self._fanout(lambda db: db.drop_table(name))

    # ------------------------------------------------------- operations

    def insert(self, table_name: str,
               rows: Sequence[Dict[str, Any]]) -> int:
        return self._insert(table_name, rows, dicts=True)

    def _insert(self, table_name: str, rows: Sequence[Any],
                dicts: bool) -> int:
        """Partition a batch by routing key and insert shard-locally.

        Validation and uniqueness stay with the owning worker; the
        router only reads the raw leading values (or ts) to route.
        """
        if not rows:
            return 0
        schema = self._any_live_table(table_name).schema
        leading_names = list(schema.key[:-1])
        by_shard: Dict[int, List[Any]] = {}
        if dicts:
            for row in rows:
                if leading_names:
                    leading = tuple(row.get(name)
                                    for name in leading_names)
                    index = shard_of(leading, None, len(self.engines))
                else:
                    ts = row.get("ts")
                    index = shard_of(
                        (), ts if ts is not None else self.clock.now(),
                        len(self.engines))
                by_shard.setdefault(index, []).append(row)
        else:
            leading_indexes = [schema.column_index(name)
                               for name in leading_names]
            ts_index = schema.ts_index
            for row in rows:
                index = self._route_row(schema, leading_indexes,
                                        ts_index, tuple(row))
                by_shard.setdefault(index, []).append(tuple(row))
        self._m_routed.inc(len(rows))

        def insert_on(index: int) -> int:
            batch = by_shard[index]
            if dicts:
                return self._run(
                    index, lambda db: db.table(table_name).insert(batch))
            return self._run(
                index,
                lambda db: db.table(table_name).insert_tuples(batch))

        indexes = sorted(by_shard)
        if len(indexes) == 1:
            return insert_on(indexes[0])
        futures = [(self._pool.submit(insert_on, index))
                   for index in indexes]
        inserted = 0
        errors: List[BaseException] = []
        for future in futures:
            try:
                inserted += future.result()
            except BaseException as exc:
                errors.append(exc)
        if errors:
            raise errors[0]
        return inserted

    def _pinned_shard(self, schema: Schema, query: Query) -> Optional[int]:
        """The single shard a query is confined to, or None.

        A query pins to one shard when its key range fixes every
        leading key column to one value (prefix semantics make that
        ``min_prefix == max_prefix`` covering the leading columns,
        both sides inclusive).
        """
        leading_width = schema.key_width - 1
        if leading_width == 0:
            return None
        kr = query.key_range
        if (kr.min_prefix is None or kr.max_prefix is None
                or not kr.min_inclusive or not kr.max_inclusive):
            return None
        if len(kr.min_prefix) < leading_width \
                or len(kr.max_prefix) < leading_width:
            return None
        leading = tuple(kr.min_prefix[:leading_width])
        if leading != tuple(kr.max_prefix[:leading_width]):
            return None
        return self._shard_for_leading(leading)

    def query(self, table_name: str,
              query: Optional[Query] = None) -> QueryResult:
        return self._query(table_name,
                           query if query is not None else Query())

    def _query(self, table_name: str, query: Query) -> QueryResult:
        schema = self._any_live_table(table_name).schema
        pinned = self._pinned_shard(schema, query)
        if pinned is not None:
            self._m_single.inc()
            return self._run(
                pinned, lambda db: db.table(table_name).query(query))
        self._m_scatter.inc()
        results = self._fanout_table(table_name,
                                     lambda t: t.query(query))
        return self._merge_results(schema, query, results)

    def _merge_results(self, schema: Schema, query: Query,
                       results: List[QueryResult]) -> QueryResult:
        """Scatter-gather merge preserving the §3.5 continuation
        contract across shard boundaries."""
        descending = query.direction == DESCENDING
        stats = QueryStats()
        for result in results:
            stats.rows_scanned += result.stats.rows_scanned
            stats.tablets_opened += result.stats.tablets_opened
            stats.tablets_pruned += result.stats.tablets_pruned
        # A truncated shard only vouches for rows up to its own last
        # key; beyond the *smallest* such frontier (largest, for
        # descending scans) another shard's unseen rows could
        # interleave, so the merged stream must stop there.
        boundary = None
        any_truncated = False
        for result in results:
            if result.more_available and result.rows:
                any_truncated = True
                last_key = schema.key_of(result.rows[-1])
                if boundary is None:
                    boundary = last_key
                elif descending:
                    boundary = max(boundary, last_key)
                else:
                    boundary = min(boundary, last_key)
        limit = self.config.server_row_limit
        if query.limit is not None:
            limit = min(limit, query.limit)
        rows: List[Tuple[Any, ...]] = []
        more_available = any_truncated
        for row in merge_sorted_runs([r.rows for r in results],
                                     schema.key_of, descending):
            if boundary is not None:
                key = schema.key_of(row)
                past = key > boundary if not descending \
                    else key < boundary
                if past:
                    break
            if len(rows) >= limit:
                # Engine parity: a query stopped by the *client's* own
                # limit is complete, not truncated (Table.query only
                # flags more_available when the server row limit cut
                # the scan).  Here another merged row did arrive, so
                # flag it only when the server bound is the tighter one.
                if query.limit is None or query.limit > limit:
                    more_available = True
                break
            rows.append(row)
        stats.rows_returned = len(rows)
        return QueryResult(rows, more_available, stats)

    def _scan(self, table_name: str,
              query: Query) -> Iterator[Tuple[Any, ...]]:
        """Stream a query to exhaustion by continuing past each
        truncation - the adaptor's §3.5 loop, run router-side for the
        SQL executor."""
        schema = self._any_live_table(table_name).schema
        descending = query.direction == DESCENDING
        remaining = query.limit
        current = query
        while True:
            result = self._query(table_name, current)
            for row in result.rows:
                yield row
            if remaining is not None:
                remaining -= len(result.rows)
                if remaining <= 0:
                    return
            if not result.more_available or not result.rows:
                return
            last_key = schema.key_of(result.rows[-1])
            kr = current.key_range
            if descending:
                kr = type(kr)(min_prefix=kr.min_prefix,
                              min_inclusive=kr.min_inclusive,
                              max_prefix=last_key, max_inclusive=False)
            else:
                kr = type(kr)(min_prefix=last_key, min_inclusive=False,
                              max_prefix=kr.max_prefix,
                              max_inclusive=kr.max_inclusive)
            current = Query(kr, current.time_range, current.direction,
                            remaining)

    def latest(self, table_name: str, prefix: Sequence[Any],
               max_lookback_micros: Optional[int] = None):
        return self._latest(table_name, prefix,
                            max_lookback_micros=max_lookback_micros)

    def _latest(self, table_name: str, prefix: Sequence[Any],
                max_lookback_micros: Optional[int] = None):
        prefix = tuple(prefix)
        schema = self._any_live_table(table_name).schema
        leading_width = schema.key_width - 1
        if leading_width and len(prefix) >= leading_width:
            shard = self._shard_for_leading(prefix[:leading_width])
            self._m_single.inc()
            return self._run(
                shard, lambda db: db.table(table_name).latest(
                    prefix, max_lookback_micros=max_lookback_micros))
        self._m_scatter.inc()
        candidates = self._fanout_table(
            table_name, lambda t: t.latest(
                prefix, max_lookback_micros=max_lookback_micros))
        best = None
        for row in candidates:
            if row is None:
                continue
            if best is None or schema.ts_of(row) > schema.ts_of(best):
                best = row
        return best

    # ------------------------------------------------------ maintenance

    def maintenance(self) -> MaintenanceReport:
        """One maintenance pass across every live worker.  Downed
        workers are skipped (their tables are degraded, not the
        router); per-table reports merge by summing."""
        report = MaintenanceReport()
        for index in self._live_indexes():
            try:
                report.merge_from(
                    self._run(index, lambda db: db.maintenance()))
            except ShardDegradedError:
                continue
        return report

    def maintenance_until_quiet(self, max_rounds: int = 1000) -> int:
        for round_index in range(max_rounds):
            if self.maintenance().is_quiet:
                return round_index
        return max_rounds

    def flush_all(self) -> None:
        for index in self._live_indexes():
            self._run(index, lambda db: db.flush_all())

    def close(self) -> None:
        """Clean shutdown of every live worker, then the pool.

        Bypasses :meth:`_run`: shutdown must proceed even through an
        overload cooldown, and a worker dying mid-close changes
        nothing about closing the rest.
        """
        for index in self._live_indexes():
            try:
                self.engines[index].close()
            except Exception:
                continue
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ----------------------------------------------------------- health

    @property
    def read_only(self) -> bool:
        """The router refuses writes only when *every* live worker is
        read-only; a single degraded disk degrades its own keys."""
        live = self._live_indexes()
        return bool(live) and all(
            self.engines[i].read_only for i in live)

    @property
    def read_only_reason(self) -> Optional[str]:
        reasons = [self.engines[i].read_only_reason
                   for i in self._live_indexes()
                   if self.engines[i].read_only_reason]
        return "; ".join(reasons) if reasons else None

    def stats(self) -> Dict[str, Any]:
        """Metrics snapshot - all workers share one registry, so this
        is already the whole-cluster view (facade parity with
        ``LittleTable.stats`` and ``RemoteDatabase.stats``)."""
        return self.metrics.snapshot()

    def health(self) -> Dict[str, Any]:
        """Alias of :meth:`health_summary` (facade parity)."""
        return self.health_summary()

    def health_summary(self) -> Dict[str, Any]:
        """One health view across all workers: the merged engine
        summary plus shard topology and degradation."""
        live = self._live_indexes()
        base: Dict[str, Any]
        if live:
            base = self.engines[live[0]].health_summary()
        else:
            base = {}
        base["read_only"] = self.read_only
        base["read_only_reason"] = self.read_only_reason
        base["shards"] = len(self.engines)
        base["degraded_shards"] = {
            str(i): reason for i, reason in sorted(self._down.items())}
        return base

    def wal_status(self) -> Dict[str, Any]:
        """Durability state across all workers (``wal_status`` command
        parity): each shard keeps its own per-table WALs, so the view
        is per-shard.  Downed workers are skipped."""
        return {
            "default_tier": self.durability.tier,
            "shards": {str(i): self.engines[i].wal_status()
                       for i in self._live_indexes()},
        }
