"""Storage backends: where file bytes actually live.

The disk *model* (``repro.disk.model``) accounts for time; a storage
backend holds the actual bytes.  Two implementations:

* :class:`MemoryStorage` - a dict of immutable byte strings.  Fast and
  hermetic; the default for tests and benchmarks.
* :class:`FileStorage` - real files under a directory, with POSIX
  atomic rename.  Used by the durability/recovery tests and by anyone
  who wants data to survive the process.

Both expose the same minimal write-once interface that LittleTable
needs: tablets are written exactly once and never modified, and the
table descriptor is replaced via atomic rename (paper §3.2).
"""

from __future__ import annotations

import os
import tempfile
from typing import Dict, List


class StorageError(Exception):
    """Raised for missing files and other backend failures."""


class Storage:
    """Interface for a flat namespace of write-once files."""

    def write_file(self, name: str, data: bytes) -> None:
        """Create ``name`` with ``data``.  Fails if it exists."""
        raise NotImplementedError

    def append(self, name: str, data: bytes) -> None:
        """Append ``data`` to ``name``, creating it if missing.

        The one exception to the write-once rule: write-ahead log
        segments grow by appending durable records.  A crash mid-append
        may persist a prefix of ``data``; the WAL's per-record CRC
        framing detects and discards such torn tails on replay.
        """
        raise NotImplementedError

    def read(self, name: str, offset: int, length: int) -> bytes:
        """Read up to ``length`` bytes at ``offset``."""
        raise NotImplementedError

    def read_all(self, name: str) -> bytes:
        """Read the whole file."""
        return self.read(name, 0, self.size(name))

    def size(self, name: str) -> int:
        """Return the file's size in bytes."""
        raise NotImplementedError

    def exists(self, name: str) -> bool:
        """Return True if the file exists."""
        raise NotImplementedError

    def delete(self, name: str) -> None:
        """Remove the file."""
        raise NotImplementedError

    def rename(self, old: str, new: str) -> None:
        """Atomically rename ``old`` to ``new``, replacing ``new``."""
        raise NotImplementedError

    def list(self, prefix: str = "") -> List[str]:
        """List file names starting with ``prefix``, sorted."""
        raise NotImplementedError


class MemoryStorage(Storage):
    """Files held in memory.  Deterministic and fast."""

    def __init__(self) -> None:
        self._files: Dict[str, bytes] = {}

    def write_file(self, name: str, data: bytes) -> None:
        if name in self._files:
            raise StorageError(f"file exists: {name!r}")
        self._files[name] = bytes(data)

    def append(self, name: str, data: bytes) -> None:
        self._files[name] = self._files.get(name, b"") + bytes(data)

    def read(self, name: str, offset: int, length: int) -> bytes:
        try:
            data = self._files[name]
        except KeyError:
            raise StorageError(f"no such file: {name!r}") from None
        return data[offset:offset + length]

    def size(self, name: str) -> int:
        try:
            return len(self._files[name])
        except KeyError:
            raise StorageError(f"no such file: {name!r}") from None

    def exists(self, name: str) -> bool:
        return name in self._files

    def delete(self, name: str) -> None:
        if name not in self._files:
            raise StorageError(f"no such file: {name!r}")
        del self._files[name]

    def rename(self, old: str, new: str) -> None:
        if old not in self._files:
            raise StorageError(f"no such file: {old!r}")
        self._files[new] = self._files.pop(old)

    def list(self, prefix: str = "") -> List[str]:
        return sorted(name for name in self._files if name.startswith(prefix))


class FileStorage(Storage):
    """Files on the real filesystem under ``root``.

    Logical names may contain ``/``; they map to subdirectories.
    Writes go through a temp file + rename so that a partially-written
    tablet is never visible, mirroring the paper's atomic descriptor
    replacement.
    """

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)

    def _path(self, name: str) -> str:
        path = os.path.normpath(os.path.join(self.root, name))
        if not path.startswith(os.path.normpath(self.root)):
            raise StorageError(f"name escapes storage root: {name!r}")
        return path

    def write_file(self, name: str, data: bytes) -> None:
        path = self._path(name)
        if os.path.exists(path):
            raise StorageError(f"file exists: {name!r}")
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path))
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
                handle.flush()
                os.fsync(handle.fileno())
            os.rename(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    def append(self, name: str, data: bytes) -> None:
        path = self._path(name)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "ab") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())

    def read(self, name: str, offset: int, length: int) -> bytes:
        try:
            with open(self._path(name), "rb") as handle:
                handle.seek(offset)
                return handle.read(length)
        except FileNotFoundError:
            raise StorageError(f"no such file: {name!r}") from None

    def size(self, name: str) -> int:
        try:
            return os.path.getsize(self._path(name))
        except FileNotFoundError:
            raise StorageError(f"no such file: {name!r}") from None

    def exists(self, name: str) -> bool:
        return os.path.exists(self._path(name))

    def delete(self, name: str) -> None:
        try:
            os.unlink(self._path(name))
        except FileNotFoundError:
            raise StorageError(f"no such file: {name!r}") from None

    def rename(self, old: str, new: str) -> None:
        old_path = self._path(old)
        new_path = self._path(new)
        if not os.path.exists(old_path):
            raise StorageError(f"no such file: {old!r}")
        os.makedirs(os.path.dirname(new_path), exist_ok=True)
        os.replace(old_path, new_path)

    def list(self, prefix: str = "") -> List[str]:
        found: List[str] = []
        for dirpath, _dirnames, filenames in os.walk(self.root):
            for filename in filenames:
                full = os.path.join(dirpath, filename)
                name = os.path.relpath(full, self.root)
                name = name.replace(os.sep, "/")
                if name.startswith(prefix):
                    found.append(name)
        return sorted(found)
