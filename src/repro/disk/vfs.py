"""The simulated disk: a storage backend plus the disk cost model.

``SimulatedDisk`` is what the engine talks to.  Every operation both
performs the real byte movement against the backend *and* charges
modeled time to the :class:`~repro.disk.model.DiskModel`.  Benchmarks
read the model's elapsed time and stats to report paper-comparable
numbers; tests mostly ignore the model and use the real bytes.
"""

from __future__ import annotations

from typing import List, Optional

from ..obs.metrics import NULL_REGISTRY
from .model import DiskModel, DiskParameters, IoStats
from .storage import MemoryStorage, Storage


class SimulatedDisk:
    """A file namespace with spinning-disk time accounting."""

    def __init__(self, storage: Optional[Storage] = None,
                 params: Optional[DiskParameters] = None):
        self.storage = storage if storage is not None else MemoryStorage()
        self.model = DiskModel(params)
        # A FailpointRegistry (disk/faults.py) when fault injection is
        # armed; None in normal operation.  Duck-typed to avoid a
        # vfs -> faults import cycle.
        self.failpoints = None
        self._init_metrics(NULL_REGISTRY)

    def _init_metrics(self, registry) -> None:
        self._m_reads = registry.counter("disk.reads")
        self._m_read_bytes = registry.counter("disk.read_bytes")
        self._m_writes = registry.counter("disk.writes")
        self._m_write_bytes = registry.counter("disk.write_bytes")
        self._m_deletes = registry.counter("disk.deletes")

    def attach_metrics(self, registry) -> None:
        """Record I/O into ``registry`` (a database attaches its own)."""
        self._init_metrics(registry)

    # Convenience passthroughs -----------------------------------------

    @property
    def stats(self) -> IoStats:
        return self.model.stats

    @property
    def elapsed_s(self) -> float:
        """Total modeled disk time consumed so far."""
        return self.model.elapsed_s

    def drop_caches(self) -> None:
        """Clear the modeled page cache (as the paper does between runs)."""
        self.model.drop_caches()

    # Fault injection ---------------------------------------------------

    def fire(self, site: str) -> None:
        """Hit a named failpoint site; no-op unless one is armed."""
        if self.failpoints is not None:
            self.failpoints.fire(site)

    # File operations ---------------------------------------------------

    def write_file(self, name: str, data: bytes) -> float:
        """Write a whole new file; returns modeled seconds."""
        crash_after = None
        if self.failpoints is not None:
            data, crash_after = self.failpoints.intercept_write(name, data)
        self.storage.write_file(name, data)
        self.model.allocate(name, len(data))
        self._m_writes.inc()
        self._m_write_bytes.inc(len(data))
        seconds = self.model.charge_write(name, len(data))
        if crash_after is not None:
            raise crash_after
        return seconds

    def append(self, name: str, data: bytes) -> float:
        """Append durable bytes to a log file; returns modeled seconds.

        The write-ahead log's one primitive.  Charged as a sequential
        write at the file's tail (group commit exists precisely to
        amortize this).  Fires the ``wal.before_append`` site so the
        crash matrix can kill the process with bytes buffered but not
        yet durable.
        """
        self.fire("wal.before_append")
        self.storage.append(name, data)
        self._m_writes.inc()
        self._m_write_bytes.inc(len(data))
        return self.model.charge_append(name, len(data))

    def open(self, name: str) -> None:
        """Charge the inode-read seek for first open of a file.

        The engine calls this before reading a tablet's footer; it is
        how the paper's "three seeks to read a tablet's footer" (inode,
        trailer, footer) arises in the model.
        """
        self.model.charge_open(name)

    def read(self, name: str, offset: int, length: int) -> bytes:
        """Read bytes, charging modeled time for uncached chunks."""
        self.fire("disk.read")
        data = self.storage.read(name, offset, length)
        self.model.charge_read(name, offset, len(data))
        self._m_reads.inc()
        self._m_read_bytes.inc(len(data))
        return data

    def read_all(self, name: str) -> bytes:
        return self.read(name, 0, self.size(name))

    def size(self, name: str) -> int:
        return self.storage.size(name)

    def exists(self, name: str) -> bool:
        return self.storage.exists(name)

    def delete(self, name: str) -> None:
        self.fire("disk.delete")
        self.storage.delete(name)
        self.model.release(name)
        self._m_deletes.inc()

    def rename(self, old: str, new: str) -> None:
        """Atomic rename (free in the model: metadata only)."""
        self.fire("disk.rename")
        self.storage.rename(old, new)
        self.model.rename(old, new)

    def list(self, prefix: str = "") -> List[str]:
        return self.storage.list(prefix)
