"""Failpoint injection for fault-tolerance testing.

LittleTable's durability story (§3 of the paper) is *prefix
durability*: no WAL, so a crash may lose a suffix of recent inserts
but must never punch holes or serve garbage.  Proving that under real
crashes, torn writes, bit rot, ``EIO``, and ``ENOSPC`` needs a way to
inject those faults deterministically.  This module provides it:

* :class:`FailpointRegistry` - named sites armed with an action
  (``crash``, ``torn``, ``bitflip``, ``eio``, ``enospc``), a skip
  count ("fire on the nth hit"), and a fire count.
* :class:`FaultyVFS` - a :class:`~repro.disk.vfs.SimulatedDisk` with
  a registry pre-attached.  Any ``SimulatedDisk`` works the same way
  once its ``failpoints`` attribute is set.
* ``LITTLETABLE_FAILPOINTS`` - an environment hook the database reads
  at open time, so chaos runs can arm faults without touching code:
  ``LITTLETABLE_FAILPOINTS="disk.write=crash@2;flush.before_descriptor=eio*3"``.

Crashes are simulated by raising :class:`CrashPoint`, which derives
from ``BaseException`` on purpose: the engine's crash-isolation
handlers (``except Exception`` in maintenance and flush) must *not*
swallow a simulated ``kill -9``, exactly as they could not catch a
real one.  Torn writes persist a prefix of the payload and then
crash; bit flips silently corrupt the payload and let the process
live (bit rot).  ``eio``/``enospc`` raise typed
:class:`~repro.disk.storage.StorageError` subclasses the engine's
read-only degradation keys off.
"""

from __future__ import annotations

import errno
from typing import Dict, Iterable, Optional, Tuple

from .storage import StorageError
from .vfs import SimulatedDisk


class CrashPoint(BaseException):
    """A simulated ``kill -9`` at a failpoint.

    Derives from ``BaseException`` so ``except Exception`` crash
    isolation in the engine cannot swallow it - only the test harness
    (or nothing) catches a simulated kill.
    """


class InjectedIOError(StorageError):
    """An injected ``EIO``-class I/O failure."""

    errno = errno.EIO


class DiskFullError(StorageError):
    """The disk is full (``ENOSPC``), injected or real."""

    errno = errno.ENOSPC


#: Actions a failpoint can take when it fires.
ACTIONS = ("crash", "torn", "bitflip", "eio", "enospc")

#: Actions that mutate written bytes and therefore only make sense at
#: the ``disk.write`` interception site.
_WRITE_ONLY_ACTIONS = frozenset({"torn", "bitflip"})

#: The catalog of sites the engine fires, for the crash matrix and
#: docs.  ``disk.*`` sites are hit by the VFS itself on every
#: operation; the rest are named engine sites fired at semantic
#: boundaries (the ``fsync`` class of faults in the issue maps onto
#: the write/rename/descriptor boundaries below, since the simulated
#: disk models whole-file writes, not separate syncs).
KNOWN_SITES = (
    "disk.write",
    "disk.read",
    "disk.rename",
    "disk.delete",
    "tablet.write",
    "descriptor.before_write",
    "descriptor.before_rename",
    "descriptor.after_rename",
    "flush.before_write",
    "flush.before_descriptor",
    "flush.after_descriptor",
    "merge.before_write",
    "merge.before_descriptor",
    "merge.after_descriptor",
    "ttl.before_descriptor",
    "ttl.after_descriptor",
    "rewrite.before_descriptor",
    "migrate.before_descriptor",
    "wal.before_append",
    "wal.before_seal",
    "wal.before_recycle",
)


class _Failpoint:
    __slots__ = ("site", "action", "skip", "count", "arg")

    def __init__(self, site: str, action: str, skip: int, count: int,
                 arg: float):
        self.site = site
        self.action = action
        self.skip = skip
        self.count = count
        self.arg = arg


class FailpointRegistry:
    """Named fault-injection sites, armed from tests or the env.

    Each armed site carries:

    * ``action`` - one of :data:`ACTIONS`.
    * ``skip`` - hits to let pass before firing ("kill at the nth
      write" arms ``disk.write`` with ``skip=n-1``).
    * ``count`` - how many times to fire (``-1`` = every hit from
      then on; persistent ``EIO``/``ENOSPC`` use this).
    * ``arg`` - action parameter: the surviving fraction for ``torn``
      writes, the relative offset of the flipped bit for ``bitflip``.
    """

    def __init__(self) -> None:
        self._sites: Dict[str, _Failpoint] = {}
        self.fired: Dict[str, int] = {}
        self._m_injected = None

    def attach_metrics(self, registry) -> None:
        """Count fired faults as ``fault.injected`` in *registry*."""
        self._m_injected = registry.counter("fault.injected")

    def set(self, site: str, action: str, skip: int = 0, count: int = 1,
            arg: float = 0.5) -> None:
        """Arm *site*; replaces any previous arming of the site."""
        if action not in ACTIONS:
            raise ValueError(f"unknown failpoint action {action!r} "
                             f"(want one of {ACTIONS})")
        if action in _WRITE_ONLY_ACTIONS and site != "disk.write":
            raise ValueError(
                f"action {action!r} mutates written bytes and only "
                f"applies at site 'disk.write', not {site!r}")
        self._sites[site] = _Failpoint(site, action, skip, count, arg)

    def clear(self, site: Optional[str] = None) -> None:
        """Disarm one site, or every site when *site* is None."""
        if site is None:
            self._sites.clear()
        else:
            self._sites.pop(site, None)

    def armed_sites(self) -> Iterable[str]:
        return tuple(self._sites)

    def _take(self, site: str) -> Optional[_Failpoint]:
        """Consume one hit at *site*; the failpoint if it fires."""
        fp = self._sites.get(site)
        if fp is None:
            return None
        if fp.skip > 0:
            fp.skip -= 1
            return None
        if fp.count == 0:
            return None
        if fp.count > 0:
            fp.count -= 1
        self.fired[site] = self.fired.get(site, 0) + 1
        if self._m_injected is not None:
            self._m_injected.inc()
        return fp

    def fire(self, site: str) -> None:
        """Hit a named engine site; raises if an armed fault fires."""
        fp = self._take(site)
        if fp is not None:
            _raise_for(fp, site)

    def intercept_write(self, name: str,
                        data: bytes) -> Tuple[bytes, Optional[BaseException]]:
        """Hit the ``disk.write`` site for a write of *data*.

        Returns ``(data_to_write, exception_to_raise_after_write)``;
        raising actions (crash/eio/enospc) raise immediately, *before*
        any bytes land.  ``torn`` truncates the payload and returns a
        :class:`CrashPoint` to raise after the truncated write lands;
        ``bitflip`` flips one bit and lets the write proceed.
        """
        fp = self._take("disk.write")
        if fp is None:
            return data, None
        if fp.action == "torn":
            keep = max(0, min(len(data), int(len(data) * fp.arg)))
            return data[:keep], CrashPoint(
                f"torn write of {name!r}: {keep}/{len(data)} bytes persisted")
        if fp.action == "bitflip":
            if not data:
                return data, None
            position = min(len(data) - 1, int(len(data) * fp.arg))
            mutated = bytearray(data)
            mutated[position] ^= 0x01
            return bytes(mutated), None
        _raise_for(fp, f"disk.write({name!r})")
        raise AssertionError("unreachable")

    @classmethod
    def from_env(cls, text: str) -> "FailpointRegistry":
        """Parse a ``LITTLETABLE_FAILPOINTS`` value.

        Grammar, ``;``-separated: ``site=action[@skip][*count][:arg]``
        e.g. ``disk.write=crash@2`` (crash on the 3rd write),
        ``flush.before_descriptor=eio*-1`` (EIO forever),
        ``disk.write=torn:0.25`` (tear the next write at 25%).
        """
        registry = cls()
        for clause in text.split(";"):
            clause = clause.strip()
            if not clause:
                continue
            site, sep, spec = clause.partition("=")
            if not sep or not site or not spec:
                raise ValueError(f"bad failpoint clause {clause!r} "
                                 f"(want site=action[@skip][*count][:arg])")
            skip, count, arg = 0, 1, 0.5
            if ":" in spec:
                spec, _sep, raw = spec.rpartition(":")
                arg = float(raw)
            if "*" in spec:
                spec, _sep, raw = spec.rpartition("*")
                count = int(raw)
            if "@" in spec:
                spec, _sep, raw = spec.rpartition("@")
                skip = int(raw)
            registry.set(site.strip(), spec.strip(), skip=skip, count=count,
                         arg=arg)
        return registry


def _raise_for(fp: _Failpoint, where: str) -> None:
    if fp.action == "crash":
        raise CrashPoint(f"simulated crash at {where}")
    if fp.action == "eio":
        raise InjectedIOError(f"injected EIO at {where}")
    if fp.action == "enospc":
        raise DiskFullError(f"injected ENOSPC at {where}")
    raise ValueError(f"action {fp.action!r} cannot fire at {where}")


class FaultyVFS(SimulatedDisk):
    """A :class:`SimulatedDisk` with a failpoint registry attached."""

    def __init__(self, storage=None, params=None,
                 failpoints: Optional[FailpointRegistry] = None):
        super().__init__(storage=storage, params=params)
        self.failpoints = (failpoints if failpoints is not None
                           else FailpointRegistry())


def classify_storage_error(exc: BaseException) -> Optional[str]:
    """``"enospc"``, ``"eio"``, or None for non-resource errors.

    Drives read-only degradation: injected faults carry class-level
    errno, real ``OSError`` from :class:`~repro.disk.storage.FileStorage`
    carries the kernel's.
    """
    code = getattr(exc, "errno", None)
    if code == errno.ENOSPC:
        return "enospc"
    if code == errno.EIO:
        return "eio"
    return None
