"""Simulated spinning-disk substrate.

See DESIGN.md section 2: the paper evaluates on a single 7,200 RPM
spindle; this package provides the storage backends plus a first-order
disk cost model so benchmarks can report paper-comparable disk time.
``faults`` layers deterministic fault injection (crashes, torn writes,
bit flips, EIO/ENOSPC) over the disk for chaos testing.
"""

from .faults import (ACTIONS, KNOWN_SITES, CrashPoint, DiskFullError,
                     FailpointRegistry, FaultyVFS, InjectedIOError,
                     classify_storage_error)
from .model import DiskModel, DiskParameters, IoStats, KIB, MIB
from .storage import FileStorage, MemoryStorage, Storage, StorageError
from .vfs import SimulatedDisk

__all__ = [
    "ACTIONS",
    "KNOWN_SITES",
    "CrashPoint",
    "DiskFullError",
    "DiskModel",
    "DiskParameters",
    "FailpointRegistry",
    "FaultyVFS",
    "FileStorage",
    "InjectedIOError",
    "IoStats",
    "KIB",
    "MIB",
    "MemoryStorage",
    "SimulatedDisk",
    "Storage",
    "StorageError",
    "classify_storage_error",
]
