"""Simulated spinning-disk substrate.

See DESIGN.md section 2: the paper evaluates on a single 7,200 RPM
spindle; this package provides the storage backends plus a first-order
disk cost model so benchmarks can report paper-comparable disk time.
"""

from .model import DiskModel, DiskParameters, IoStats, KIB, MIB
from .storage import FileStorage, MemoryStorage, Storage, StorageError
from .vfs import SimulatedDisk

__all__ = [
    "DiskModel",
    "DiskParameters",
    "IoStats",
    "KIB",
    "MIB",
    "FileStorage",
    "MemoryStorage",
    "Storage",
    "StorageError",
    "SimulatedDisk",
]
