"""A first-order cost model of a spinning disk.

The paper's entire evaluation is about disk-time shape on a single
7,200 RPM spindle: 8 ms average combined seek + rotational latency and
about 120 MB/s of sequential throughput (Section 5.1.1).  A pure-Python
engine cannot reach the paper's absolute numbers, so every benchmark in
this reproduction reports *modeled* disk time: the engine performs all
of its real work (encoding, sorting, merging, file management) against
a storage backend, while this model accounts for how long each I/O
would have taken on the paper's hardware.

The model is deliberately first-order - the same level of modeling the
paper itself uses to predict its results ("it thus takes three seeks to
read a tablet's footer", "30.3 ms and 8.3 ms per tablet, very close to
the 4 and 1 seek times we expect").

State tracked:

* a linear disk address space; files are allocated as contiguous
  extents at write time (the paper notes ext4 usually stores tablets of
  <= 1 GB in a single extent);
* the disk head position, so sequential accesses avoid seek charges;
* a host page cache (LRU over fixed-size chunks) - reads served from it
  are free;
* readahead: every miss fetches at least the configured readahead
  window (Linux default 128 kB in the paper, 1 MB in one Figure 5
  variant), plus an optional drive-cache prefetch bonus that models the
  drive's internal 64 MB cache.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

KIB = 1024
MIB = 1024 * 1024


@dataclass
class DiskParameters:
    """Parameters of the simulated device (defaults match §5.1.1)."""

    seek_time_s: float = 0.008
    read_throughput_bps: float = 120 * MIB
    write_throughput_bps: float = 120 * MIB
    readahead_bytes: int = 128 * KIB
    # Extra sequential bytes the drive's internal cache effectively
    # prefetches on each miss (the paper attributes Figure 5's
    # higher-than-expected floor to the drive's 64 MB cache).
    drive_prefetch_bytes: int = 128 * KIB
    page_cache_bytes: int = 16 * 1024 * MIB
    # Page-cache granularity (Linux page size).  The trailer of a
    # tablet usually shares its last page with part of the footer, but
    # a realistic footer (~0.5% of a 16 MB tablet) spans many pages, so
    # footer reads still cost their own seek, as in §3.5.
    cache_chunk_bytes: int = 4 * KIB


@dataclass
class IoStats:
    """Counters the benchmarks read out."""

    seeks: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    bytes_fetched: int = 0  # includes readahead
    cache_hit_bytes: int = 0
    read_time_s: float = 0.0
    write_time_s: float = 0.0

    def snapshot(self) -> "IoStats":
        return IoStats(
            seeks=self.seeks,
            bytes_read=self.bytes_read,
            bytes_written=self.bytes_written,
            bytes_fetched=self.bytes_fetched,
            cache_hit_bytes=self.cache_hit_bytes,
            read_time_s=self.read_time_s,
            write_time_s=self.write_time_s,
        )

    def delta_since(self, earlier: "IoStats") -> "IoStats":
        return IoStats(
            seeks=self.seeks - earlier.seeks,
            bytes_read=self.bytes_read - earlier.bytes_read,
            bytes_written=self.bytes_written - earlier.bytes_written,
            bytes_fetched=self.bytes_fetched - earlier.bytes_fetched,
            cache_hit_bytes=self.cache_hit_bytes - earlier.cache_hit_bytes,
            read_time_s=self.read_time_s - earlier.read_time_s,
            write_time_s=self.write_time_s - earlier.write_time_s,
        )


@dataclass
class _Extent:
    start: int
    length: int


class DiskModel:
    """Accounts modeled time for reads and writes against one spindle."""

    def __init__(self, params: Optional[DiskParameters] = None):
        self.params = params or DiskParameters()
        self.stats = IoStats()
        self.elapsed_s = 0.0
        self._head = -1  # current disk address of the head (parked)
        self._frontier = 0  # next free disk address
        self._extents: Dict[str, _Extent] = {}
        # Page cache: (file, chunk_index) -> True, LRU ordered, with a
        # per-file index of cached chunks for O(file) invalidation.
        self._cache: "OrderedDict[Tuple[str, int], bool]" = OrderedDict()
        self._file_chunks: Dict[str, set] = {}
        self._cache_capacity_chunks = max(
            1, self.params.page_cache_bytes // self.params.cache_chunk_bytes
        )
        # Files whose inode is cached (charging one seek on first open;
        # the paper counts "one [seek] to read the inode" per footer read).
        self._inodes_cached: set = set()

    # ----------------------------------------------------------- layout

    def allocate(self, name: str, length: int) -> None:
        """Allocate a contiguous extent for a newly written file."""
        if name in self._extents:
            raise ValueError(f"extent already allocated for {name!r}")
        self._extents[name] = _Extent(self._frontier, length)
        self._frontier += length

    def release(self, name: str) -> None:
        """Forget a deleted file's extent and cached pages."""
        self._extents.pop(name, None)
        self._inodes_cached.discard(name)
        for chunk in self._file_chunks.pop(name, ()):
            self._cache.pop((name, chunk), None)

    def rename(self, old: str, new: str) -> None:
        """Move extent and cache entries to a new name.

        If ``new`` already exists (descriptor replacement), its pages
        and extent are dropped first; the old extent's space is simply
        leaked, as on a real filesystem until reuse.
        """
        self.release(new)
        if old in self._extents:
            self._extents[new] = self._extents.pop(old)
        if old in self._inodes_cached:
            self._inodes_cached.discard(old)
            self._inodes_cached.add(new)
        chunks = self._file_chunks.pop(old, set())
        for chunk in chunks:
            if self._cache.pop((old, chunk), None) is not None:
                self._cache[(new, chunk)] = True
        if chunks:
            self._file_chunks[new] = chunks

    # ------------------------------------------------------------ cache

    def drop_caches(self) -> None:
        """Simulate `echo 3 > /proc/sys/vm/drop_caches` plus the drive
        cache flush the paper performs before each benchmark run."""
        self._cache.clear()
        self._file_chunks.clear()
        self._inodes_cached.clear()

    def charge_open(self, name: str) -> float:
        """Charge one seek for the inode read on first open of a file.

        Subsequent opens are free until :meth:`drop_caches`.  Returns
        the modeled duration in seconds.
        """
        if name in self._inodes_cached:
            return 0.0
        self._inodes_cached.add(name)
        self.stats.seeks += 1
        self.stats.read_time_s += self.params.seek_time_s
        self.elapsed_s += self.params.seek_time_s
        # The head ends up at the inode, away from any data extent.
        self._head = -1
        return self.params.seek_time_s

    def _chunk_range(self, offset: int, length: int) -> Tuple[int, int]:
        chunk = self.params.cache_chunk_bytes
        first = offset // chunk
        last = (offset + max(length, 1) - 1) // chunk
        return first, last

    def _cache_insert(self, name: str, first_chunk: int, last_chunk: int) -> None:
        file_chunks = self._file_chunks.setdefault(name, set())
        for index in range(first_chunk, last_chunk + 1):
            key = (name, index)
            if key in self._cache:
                self._cache.move_to_end(key)
            else:
                self._cache[key] = True
                file_chunks.add(index)
        while len(self._cache) > self._cache_capacity_chunks:
            evicted, _ = self._cache.popitem(last=False)
            chunks = self._file_chunks.get(evicted[0])
            if chunks is not None:
                chunks.discard(evicted[1])

    def _cached(self, name: str, chunk_index: int) -> bool:
        key = (name, chunk_index)
        if key in self._cache:
            self._cache.move_to_end(key)
            return True
        return False

    # -------------------------------------------------------------- I/O

    def charge_write(self, name: str, length: int) -> float:
        """Charge a sequential write of a whole new file.

        Returns the modeled duration in seconds.  The file must have
        been allocated first.  LittleTable only ever writes whole
        tablets and small descriptor files, so the model treats every
        write as one seek (if the head is elsewhere) plus a sequential
        transfer - exactly the paper's §3.3 analysis of the 16 MB flush
        size sustaining ~95% of peak write rate.
        """
        extent = self._extents[name]
        duration = 0.0
        if self._head != extent.start:
            duration += self.params.seek_time_s
            self.stats.seeks += 1
        duration += length / self.params.write_throughput_bps
        self._head = extent.start + length
        self.stats.bytes_written += length
        self.stats.write_time_s += duration
        self.elapsed_s += duration
        # Freshly written data lands in the page cache.
        first, last = self._chunk_range(0, length)
        self._cache_insert(name, first, last)
        return duration

    def charge_append(self, name: str, length: int) -> float:
        """Charge a sequential append at the tail of ``name``.

        The write-ahead log's pattern: one seek if the head is away
        from the file's tail, then a sequential transfer.  The extent
        grows in place - WAL segments are the one file class that is
        not written whole - which keeps the read model's end-of-file
        clamp correct for replay.  Returns modeled seconds.
        """
        extent = self._extents.get(name)
        if extent is None:
            extent = _Extent(self._frontier, 0)
            self._extents[name] = extent
            self._frontier += length
        tail = extent.start + extent.length
        duration = 0.0
        if self._head != tail:
            duration += self.params.seek_time_s
            self.stats.seeks += 1
        duration += length / self.params.write_throughput_bps
        first, last = self._chunk_range(extent.length, length)
        extent.length += length
        self._head = extent.start + extent.length
        self.stats.bytes_written += length
        self.stats.write_time_s += duration
        self.elapsed_s += duration
        self._cache_insert(name, first, last)
        return duration

    def charge_read(self, name: str, offset: int, length: int) -> float:
        """Charge a read of ``length`` bytes at ``offset``.

        Cache-resident chunks are free.  Each run of missing chunks
        costs one seek (if the head is not already there) plus the
        transfer of at least one readahead window (plus the drive
        prefetch bonus), which then populates the cache.
        Returns the modeled duration in seconds.
        """
        if length <= 0:
            return 0.0
        extent = self._extents.get(name)
        params = self.params
        chunk = params.cache_chunk_bytes
        first, last = self._chunk_range(offset, length)
        duration = 0.0
        index = first
        while index <= last:
            if self._cached(name, index):
                self.stats.cache_hit_bytes += chunk
                index += 1
                continue
            # A run of missing chunks starting at `index`: fetch at
            # least the readahead window from here.
            fetch_bytes = max(params.readahead_bytes + params.drive_prefetch_bytes,
                              chunk)
            fetch_chunks = max(1, fetch_bytes // chunk)
            start_addr = (extent.start if extent else 0) + index * chunk
            if self._head != start_addr:
                duration += params.seek_time_s
                self.stats.seeks += 1
            # Do not fetch past the end of the file.
            if extent is not None:
                max_chunks = max(1, (extent.length + chunk - 1) // chunk - index)
                fetch_chunks = min(fetch_chunks, max_chunks)
            fetched = fetch_chunks * chunk
            duration += fetched / params.read_throughput_bps
            self.stats.bytes_fetched += fetched
            self._head = start_addr + fetched
            self._cache_insert(name, index, index + fetch_chunks - 1)
            index += fetch_chunks
        self.stats.bytes_read += length
        self.stats.read_time_s += duration
        self.elapsed_s += duration
        return duration
