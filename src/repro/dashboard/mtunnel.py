"""mtunnel: the device <-> shard transport (§2.1), with failures.

"Meraki's devices communicate with their hosting shard through a
proprietary virtual private network, called mtunnel."  What the
applications (§4) care about is not the tunnel itself but its failure
mode: devices become unreachable for minutes or hours because of
"problems with customers' uplinks or the broader Internet", and every
grabber must cope - showing gaps after long unavailability, resuming
counters after short ones.

``MTunnel`` fronts a set of :class:`SimulatedDevice` objects and
injects unavailability windows, either scripted or random.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..util.clock import Clock
from ..util.xorshift import Xorshift64Star
from .devices import SimulatedDevice


class DeviceUnreachable(Exception):
    """The device did not respond (uplink or Internet trouble)."""


class MTunnel:
    """Routes grabber fetches to devices, with injected outages."""

    def __init__(self, clock: Clock, seed: int = 7):
        self.clock = clock
        self._devices: Dict[int, SimulatedDevice] = {}
        self._outages: Dict[int, List[Tuple[int, int]]] = {}
        self._rng = Xorshift64Star(seed=seed)
        self.fetches = 0
        self.failures = 0

    # ------------------------------------------------------ registration

    def register(self, device: SimulatedDevice) -> None:
        self._devices[device.device_id] = device

    def device_ids(self) -> List[int]:
        return sorted(self._devices)

    def schedule_outage(self, device_id: int, start: int, end: int) -> None:
        """Make a device unreachable during [start, end)."""
        if end <= start:
            raise ValueError("outage must have positive duration")
        self._outages.setdefault(device_id, []).append((start, end))

    def _unreachable(self, device_id: int, now: int) -> bool:
        return any(start <= now < end
                   for start, end in self._outages.get(device_id, ()))

    # ------------------------------------------------------------ access

    def reach(self, device_id: int) -> SimulatedDevice:
        """Contact a device, advancing its simulation to now.

        Raises :class:`DeviceUnreachable` during an outage window.  The
        device keeps accumulating data during outages (it is alive,
        just unreachable), which is what makes re-reading after
        recovery possible.
        """
        self.fetches += 1
        try:
            device = self._devices[device_id]
        except KeyError:
            raise DeviceUnreachable(f"unknown device {device_id}") from None
        now = self.clock.now()
        device.advance_to(now)
        if self._unreachable(device_id, now):
            self.failures += 1
            raise DeviceUnreachable(f"device {device_id} offline")
        return device

    def try_reach(self, device_id: int) -> Optional[SimulatedDevice]:
        """Like :meth:`reach` but returns None instead of raising."""
        try:
            return self.reach(device_id)
        except DeviceUnreachable:
            return None
