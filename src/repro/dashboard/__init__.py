"""The Dashboard applications of paper Section 4: UsageGrabber,
aggregators/rollups, EventsGrabber, and video motion search, over a
simulated device fleet."""

from .aggregator import (
    Aggregator,
    NetworkUsageRollup,
    TagUsageRollup,
    UniqueClientsRollup,
    find_latest_ts,
)
from .configstore import ConfigStore
from .failover import (
    BackupError,
    DashboardDns,
    FailoverController,
    WarmSpare,
)
from .devices import SimulatedDevice, decode_motion_word, encode_motion_word
from .events import EventsGrabber
from .motion import MotionGrabber, MotionSearch, PixelRect
from .metrics_view import derived_health, metrics_page, render_metrics_page
from .mtunnel import DeviceUnreachable, MTunnel
from .shard import Shard, ShardTopology
from .splitting import split_shard
from .usage import UsageGrabber
from . import views

__all__ = [
    "Aggregator",
    "NetworkUsageRollup",
    "TagUsageRollup",
    "UniqueClientsRollup",
    "find_latest_ts",
    "ConfigStore",
    "BackupError",
    "DashboardDns",
    "FailoverController",
    "WarmSpare",
    "SimulatedDevice",
    "encode_motion_word",
    "decode_motion_word",
    "EventsGrabber",
    "MotionGrabber",
    "MotionSearch",
    "PixelRect",
    "DeviceUnreachable",
    "MTunnel",
    "derived_health",
    "metrics_page",
    "render_metrics_page",
    "Shard",
    "ShardTopology",
    "split_shard",
    "UsageGrabber",
    "views",
]
