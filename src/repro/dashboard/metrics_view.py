"""The Dashboard's engine-health page: one registry snapshot, rendered.

The paper's operators reason about flush/merge behaviour, tablet
counts, and rewrite cost (§4, appendix); this view puts those numbers
in front of them.  It consumes the same
``MetricsRegistry.snapshot()`` that the STATS protocol command and
``python -m repro.cli stats`` expose, so every surface agrees.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..core.database import LittleTable
from ..obs.metrics import render_snapshot


def metrics_page(db: LittleTable,
                 recent_spans: int = 20) -> Dict[str, Any]:
    """Everything the engine-health page needs, as plain data.

    ``metrics`` is the registry snapshot verbatim; ``tables`` adds the
    per-table shape summaries (tablet counts per period, write
    amplification, scan ratio); ``spans`` lists the most recent traced
    operations (flushes, merges, TTL reclaims), oldest first.
    """
    return {
        "metrics": db.metrics.snapshot(),
        "tables": {name: db.table(name).stats_summary()
                   for name in db.table_names()},
        "spans": [span.to_dict()
                  for span in db.tracer.recent(limit=recent_spans)],
    }


def derived_health(snapshot: Dict[str, Any]) -> Dict[str, Optional[float]]:
    """Ratios operators actually watch, derived from raw counters.

    * ``write_amplification`` - (flushed + merge-written bytes) per
      flushed byte; the merge-pathology indicator.
    * ``rewrites_per_row`` - merge-rewritten rows per inserted row;
      the appendix bounds this at O(log T).
    * ``bloom_skip_rate`` - fraction of Bloom probes that let a scan
      skip a tablet (§3.4.5's payoff).
    * ``scan_ratio`` - rows scanned per row returned (Figure 9).
    """
    counters = snapshot.get("counters", {})

    def ratio(numerator: float, denominator: float) -> Optional[float]:
        return numerator / denominator if denominator else None

    flushed = counters.get("flush.bytes", 0)
    return {
        "write_amplification": ratio(
            flushed + counters.get("merge.bytes_written", 0), flushed),
        "rewrites_per_row": ratio(
            counters.get("merge.rows_rewritten", 0),
            counters.get("insert.rows", 0)),
        "bloom_skip_rate": ratio(
            counters.get("bloom.negatives", 0),
            counters.get("bloom.probes", 0)),
        "scan_ratio": ratio(
            counters.get("query.rows_scanned", 0),
            counters.get("query.rows_returned", 0)),
    }


def render_metrics_page(page: Dict[str, Any]) -> str:
    """Render :func:`metrics_page` output as text (CLI and logs)."""
    lines: List[str] = ["== engine metrics =="]
    lines.append(render_snapshot(page.get("metrics", {})))
    health = derived_health(page.get("metrics", {}))
    lines.append("")
    lines.append("== derived health ==")
    for name, value in health.items():
        rendered = "n/a" if value is None else f"{value:.3f}"
        lines.append(f"{name}  {rendered}")
    tables = page.get("tables", {})
    if tables:
        lines.append("")
        lines.append("== tables ==")
        for name, summary in sorted(tables.items()):
            parts = ", ".join(f"{key}={value}"
                              for key, value in summary.items()
                              if key != "name")
            lines.append(f"{name}: {parts}")
    spans = page.get("spans", [])
    if spans:
        lines.append("")
        lines.append("== recent operations ==")
        for span in spans:
            tags = " ".join(f"{k}={v}" for k, v in span["tags"].items())
            lines.append(
                f"{span['name']}  {span['duration_us']:.0f}us  {tags}")
    return "\n".join(lines)
