"""The Dashboard's engine-health page: one registry snapshot, rendered.

The paper's operators reason about flush/merge behaviour, tablet
counts, and rewrite cost (§4, appendix); this view puts those numbers
in front of them.  It consumes the same
``MetricsRegistry.snapshot()`` that the STATS protocol command and
``python -m repro.cli stats`` expose, so every surface agrees.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..core.database import LittleTable
from ..obs.metrics import render_snapshot


def metrics_page(db: LittleTable,
                 recent_spans: int = 20) -> Dict[str, Any]:
    """Everything the engine-health page needs, as plain data.

    ``metrics`` is the registry snapshot verbatim; ``tables`` adds the
    per-table shape summaries (tablet counts per period, write
    amplification, scan ratio); ``spans`` lists the most recent traced
    operations (flushes, merges, TTL reclaims), oldest first.
    """
    return {
        "metrics": db.metrics.snapshot(),
        "tables": {name: db.table(name).stats_summary()
                   for name in db.table_names()},
        "spans": [span.to_dict()
                  for span in db.tracer.recent(limit=recent_spans)],
        "health": db.health_summary(),
    }


def derived_health(snapshot: Dict[str, Any]) -> Dict[str, Optional[float]]:
    """Ratios operators actually watch, derived from raw counters.

    * ``write_amplification`` - (flushed + merge-written bytes) per
      flushed byte; the merge-pathology indicator.
    * ``rewrites_per_row`` - merge-rewritten rows per inserted row;
      the appendix bounds this at O(log T).
    * ``bloom_skip_rate`` - fraction of Bloom probes that let a scan
      skip a tablet (§3.4.5's payoff).
    * ``scan_ratio`` - rows scanned per row returned (Figure 9).
    * ``cache_hit_rate`` - block-cache hits per lookup; the read
      path's warm/cold balance.
    * ``tablets_pruned_per_query`` - tablets the prune index skipped,
      per query.
    """
    counters = snapshot.get("counters", {})

    def ratio(numerator: float, denominator: float) -> Optional[float]:
        return numerator / denominator if denominator else None

    flushed = counters.get("flush.bytes", 0)
    block_hits = counters.get("readcache.block.hits", 0)
    return {
        "write_amplification": ratio(
            flushed + counters.get("merge.bytes_written", 0), flushed),
        "rewrites_per_row": ratio(
            counters.get("merge.rows_rewritten", 0),
            counters.get("insert.rows", 0)),
        "bloom_skip_rate": ratio(
            counters.get("bloom.negatives", 0),
            counters.get("bloom.probes", 0)),
        "scan_ratio": ratio(
            counters.get("query.rows_scanned", 0),
            counters.get("query.rows_returned", 0)),
        "cache_hit_rate": ratio(
            block_hits,
            block_hits + counters.get("readcache.block.misses", 0)),
        "tablets_pruned_per_query": ratio(
            counters.get("query.tablets_pruned", 0),
            counters.get("query.count", 0)),
    }


def cache_summary(snapshot: Dict[str, Any]) -> Dict[str, Any]:
    """The read-cache corner of a snapshot, as one nested dict.

    The ``cache`` subsection of ``ltdb stats --json`` and the
    engine-health page both render this.
    """
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})

    def rate(hits: int, misses: int) -> Optional[float]:
        total = hits + misses
        return hits / total if total else None

    block_hits = counters.get("readcache.block.hits", 0)
    block_misses = counters.get("readcache.block.misses", 0)
    footer_hits = counters.get("readcache.footer.hits", 0)
    footer_misses = counters.get("readcache.footer.misses", 0)
    latest_hits = counters.get("readcache.latest.hits", 0)
    latest_misses = counters.get("readcache.latest.misses", 0)
    return {
        "block": {
            "hits": block_hits,
            "misses": block_misses,
            "hit_rate": rate(block_hits, block_misses),
            "evictions": counters.get("readcache.block.evictions", 0),
            "resident_bytes": gauges.get(
                "readcache.block.resident_bytes", 0),
            "entries": gauges.get("readcache.block.entries", 0),
        },
        "footer": {
            "hits": footer_hits,
            "misses": footer_misses,
            "hit_rate": rate(footer_hits, footer_misses),
        },
        "latest": {
            "hits": latest_hits,
            "misses": latest_misses,
            "hit_rate": rate(latest_hits, latest_misses),
            "invalidations": counters.get(
                "readcache.latest.invalidations", 0),
        },
        "invalidations": counters.get("readcache.invalidations", 0),
        "generation_bumps": counters.get("readcache.generation", 0),
        "tablets_pruned": counters.get("query.tablets_pruned", 0),
    }


def codec_summary(snapshot: Dict[str, Any]) -> Dict[str, Any]:
    """The block-codec corner of a snapshot.

    Encode/decode volume and cost of the schema-compiled codec
    (``core/codec.py``), plus how many legacy v1 blocks merges have
    rewritten into format v2.  Throughputs are derived from the
    ``codec.*_ns`` counters; None until the first block moves.
    """
    counters = snapshot.get("counters", {})

    def mrows_per_s(rows: int, ns: int) -> Optional[float]:
        return rows / (ns / 1e9) / 1e6 if ns else None

    rows_encoded = counters.get("codec.rows_encoded", 0)
    rows_decoded = counters.get("codec.rows_decoded", 0)
    encode_ns = counters.get("codec.encode_ns", 0)
    decode_ns = counters.get("codec.decode_ns", 0)
    return {
        "rows_encoded": rows_encoded,
        "rows_decoded": rows_decoded,
        "blocks_encoded": counters.get("codec.blocks_encoded", 0),
        "blocks_decoded": counters.get("codec.blocks_decoded", 0),
        "blocks_upgraded_v1_to_v2": counters.get(
            "codec.blocks_upgraded_v1_to_v2", 0),
        "encode_ms": encode_ns / 1e6,
        "decode_ms": decode_ns / 1e6,
        "encode_mrows_per_s": mrows_per_s(rows_encoded, encode_ns),
        "decode_mrows_per_s": mrows_per_s(rows_decoded, decode_ns),
    }


def pushdown_summary(snapshot: Dict[str, Any]) -> Dict[str, Any]:
    """The vectorized-query corner of a snapshot.

    How much aggregate work ran columnar inside the scan
    (``core/table.py:aggregate_partials``) versus fell back to rows:
    pushed queries, blocks consumed column-major vs row-at-a-time,
    rows entering the kernels on each path, rows the predicate kernels
    short-circuited before aggregation, and whole queries the planner
    kept on the row path (remote tables, descending scans).
    """
    counters = snapshot.get("counters", {})
    rows_columnar = counters.get("query.pushdown.rows_columnar", 0)
    rows_fallback = counters.get("query.pushdown.rows_fallback", 0)
    total_rows = rows_columnar + rows_fallback
    return {
        "queries": counters.get("query.pushdown.queries", 0),
        "fallback_queries": counters.get(
            "query.pushdown.fallback_queries", 0),
        "blocks_columnar": counters.get(
            "query.pushdown.blocks_columnar", 0),
        "blocks_fallback": counters.get(
            "query.pushdown.blocks_fallback", 0),
        "rows_columnar": rows_columnar,
        "rows_fallback": rows_fallback,
        "rows_kernel_filtered": counters.get(
            "query.pushdown.rows_kernel_filtered", 0),
        "columnar_row_fraction": (
            rows_columnar / total_rows if total_rows else None),
    }


def maintenance_summary(snapshot: Dict[str, Any]) -> Dict[str, Any]:
    """The background-maintenance corner of a snapshot.

    What an operator needs to judge the non-blocking engine: is the
    scheduler keeping up (queue depth, ticks, per-table runs), are
    swaps actually brief (``swap_lock_hold_us`` percentiles - this is
    the *only* time maintenance holds the state lock), is the writer
    being stalled (backpressure), and is deferred file reclamation
    draining (``deferred_deletes``).
    """
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    histograms = snapshot.get("histograms", {})
    swap = histograms.get("maintenance.swap_lock_hold_us", {})
    stall_wait = histograms.get("insert.backpressure_wait_us", {})
    return {
        "queue_depth": gauges.get("maintenance.queue_depth", 0),
        "ticks": counters.get("maintenance.ticks", 0),
        "table_runs": counters.get("maintenance.table_runs", 0),
        "errors": counters.get("maintenance.errors", 0),
        "deferred_deletes": counters.get("maintenance.deferred_deletes", 0),
        "swap_lock_hold_us": {
            "count": swap.get("count", 0),
            "p50": swap.get("p50"),
            "p99": swap.get("p99"),
            "max": swap.get("max"),
        },
        "backpressure": {
            "stalls": counters.get("insert.backpressure_stalls", 0),
            "wait_p99_us": stall_wait.get("p99"),
        },
    }


def sched_summary(snapshot: Dict[str, Any]) -> Dict[str, Any]:
    """The SLO scheduler / IO throttle corner of a snapshot.

    Is the adaptive controller engaged (``throttle_pct`` nonzero, SLO
    breaches counted), what merge IO rate is it currently granting,
    how much merge debt is queued behind flush work, and how much the
    rate limiter actually held writes back.  The ``sched`` subsection
    of ``ltdb stats --json`` and the engine-health page both render
    this.
    """
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    histograms = snapshot.get("histograms", {})
    wait = histograms.get("io.throttle_wait_us", {})
    return {
        "throttle_pct": gauges.get("sched.throttle_pct", 0),
        "watched_p99_us": gauges.get("sched.watched_p99_us", 0),
        "slo_breaches": counters.get("sched.slo_breaches", 0),
        "merge_rate_bytes_s": gauges.get("sched.merge_rate_bytes_s", 0),
        "io_rate_bytes_s": gauges.get("io.rate_bytes_s", 0),
        "flush_pending_limit": gauges.get("sched.flush_pending_limit", 0),
        "merge_debt_bytes": gauges.get("sched.merge_debt_bytes", 0),
        "flush_priority_runs": counters.get("sched.flush_priority_runs", 0),
        "merge_priority_runs": counters.get("sched.merge_priority_runs", 0),
        "throttle_waits": counters.get("io.throttle_waits", 0),
        "throttled_bytes": counters.get("io.throttled_bytes", 0),
        "throttle_wait_p99_us": wait.get("p99"),
    }


def admission_summary(snapshot: Dict[str, Any]) -> Dict[str, Any]:
    """The overload-protection corner of a snapshot.

    How loaded the front door is (in-flight requests, queue waits)
    and how much it refused: slot sheds (admission queue timed out)
    versus deadline sheds (the request overran its client-propagated
    budget while queued).  The ``admission`` subsection of ``ltdb
    stats --json`` and the engine-health page both render this.
    """
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    histograms = snapshot.get("histograms", {})
    wait = histograms.get("server.admission.queue_wait_us", {})
    return {
        "inflight": gauges.get("server.admission.inflight", 0),
        "shed": counters.get("server.admission.shed", 0),
        "deadline_sheds": counters.get("server.admission.deadline_sheds", 0),
        "queue_wait_p99_us": wait.get("p99"),
        "shard_overload_sheds": counters.get("shard.overload_sheds", 0),
        "shard_cooldown_skips": counters.get("shard.cooldown_skips", 0),
    }


def fault_summary(snapshot: Dict[str, Any]) -> Dict[str, Any]:
    """The fault-tolerance corner of a snapshot.

    Detection (checksum failures), containment (quarantined tablets,
    scrub activity), degradation (read-only mode), and injection (how
    many faults the failpoint framework fired - nonzero only under
    test).  The ``fault`` subsection of ``ltdb stats --json`` and the
    engine-health page both render this.
    """
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    return {
        "checksum_failures": counters.get("storage.checksum_failures", 0),
        "quarantined_tablets": counters.get(
            "storage.quarantined_tablets", 0),
        "scrub_runs": counters.get("storage.scrub_runs", 0),
        "scrub_orphans_removed": counters.get(
            "storage.scrub_orphans_removed", 0),
        "scrub_quarantined": counters.get("storage.scrub_quarantined", 0),
        "read_only": bool(gauges.get("fault.read_only", 0)),
        "read_only_entries": counters.get("fault.read_only_entries", 0),
        "read_only_rejections": counters.get(
            "fault.read_only_rejections", 0),
        "faults_injected": counters.get("fault.injected", 0),
    }


def render_metrics_page(page: Dict[str, Any]) -> str:
    """Render :func:`metrics_page` output as text (CLI and logs)."""
    lines: List[str] = ["== engine metrics =="]
    lines.append(render_snapshot(page.get("metrics", {})))
    health = derived_health(page.get("metrics", {}))
    lines.append("")
    lines.append("== derived health ==")
    for name, value in health.items():
        rendered = "n/a" if value is None else f"{value:.3f}"
        lines.append(f"{name}  {rendered}")
    cache = cache_summary(page.get("metrics", {}))
    lines.append("")
    lines.append("== read cache ==")
    for section in ("block", "footer", "latest"):
        parts = ", ".join(
            f"{key}={'n/a' if value is None else value}"
            for key, value in cache[section].items())
        lines.append(f"{section}: {parts}")
    lines.append(
        f"invalidations={cache['invalidations']}, "
        f"generation_bumps={cache['generation_bumps']}, "
        f"tablets_pruned={cache['tablets_pruned']}")
    codec = codec_summary(page.get("metrics", {}))
    lines.append("")
    lines.append("== block codec ==")
    lines.append(
        f"encode: rows={codec['rows_encoded']}, "
        f"blocks={codec['blocks_encoded']}, "
        f"time={codec['encode_ms']:.1f}ms, "
        + ("throughput=n/a" if codec['encode_mrows_per_s'] is None else
           f"throughput={codec['encode_mrows_per_s']:.2f}Mrows/s"))
    lines.append(
        f"decode: rows={codec['rows_decoded']}, "
        f"blocks={codec['blocks_decoded']}, "
        f"time={codec['decode_ms']:.1f}ms, "
        + ("throughput=n/a" if codec['decode_mrows_per_s'] is None else
           f"throughput={codec['decode_mrows_per_s']:.2f}Mrows/s"))
    lines.append(
        f"blocks_upgraded_v1_to_v2={codec['blocks_upgraded_v1_to_v2']}")
    upkeep = maintenance_summary(page.get("metrics", {}))
    lines.append("")
    lines.append("== maintenance ==")
    lines.append(
        f"queue_depth={upkeep['queue_depth']}, ticks={upkeep['ticks']}, "
        f"table_runs={upkeep['table_runs']}, errors={upkeep['errors']}, "
        f"deferred_deletes={upkeep['deferred_deletes']}")
    swap = upkeep["swap_lock_hold_us"]

    def us(value) -> str:
        return "n/a" if value is None else f"{value:.0f}us"

    lines.append(
        f"swap_lock_hold: count={swap['count']}, p50={us(swap['p50'])}, "
        f"p99={us(swap['p99'])}, max={us(swap['max'])}")
    stalls = upkeep["backpressure"]
    lines.append(
        f"backpressure: stalls={stalls['stalls']}, "
        f"wait_p99={us(stalls['wait_p99_us'])}")
    sched = sched_summary(page.get("metrics", {}))
    lines.append("")
    lines.append("== slo scheduler ==")
    lines.append(
        f"throttle={sched['throttle_pct']}%, "
        f"watched_p99={us(sched['watched_p99_us'])}, "
        f"slo_breaches={sched['slo_breaches']}, "
        f"merge_rate={sched['merge_rate_bytes_s']}B/s")
    lines.append(
        f"priorities: flush_runs={sched['flush_priority_runs']}, "
        f"merge_runs={sched['merge_priority_runs']}, "
        f"merge_debt={sched['merge_debt_bytes']}B, "
        f"flush_pending_limit={sched['flush_pending_limit']}")
    lines.append(
        f"io throttle: waits={sched['throttle_waits']}, "
        f"throttled_bytes={sched['throttled_bytes']}, "
        f"wait_p99={us(sched['throttle_wait_p99_us'])}")
    admission = admission_summary(page.get("metrics", {}))
    lines.append("")
    lines.append("== admission ==")
    lines.append(
        f"inflight={admission['inflight']}, shed={admission['shed']}, "
        f"deadline_sheds={admission['deadline_sheds']}, "
        f"queue_wait_p99={us(admission['queue_wait_p99_us'])}")
    lines.append(
        f"shard overloads: sheds={admission['shard_overload_sheds']}, "
        f"cooldown_skips={admission['shard_cooldown_skips']}")
    push = pushdown_summary(page.get("metrics", {}))
    lines.append("")
    lines.append("== query pushdown ==")
    lines.append(
        f"queries: pushed={push['queries']}, "
        f"fallback={push['fallback_queries']}")
    lines.append(
        f"blocks: columnar={push['blocks_columnar']}, "
        f"fallback={push['blocks_fallback']}")
    share = push["columnar_row_fraction"]
    lines.append(
        f"rows: columnar={push['rows_columnar']}, "
        f"fallback={push['rows_fallback']}, "
        f"kernel_filtered={push['rows_kernel_filtered']}, "
        + ("columnar_share=n/a" if share is None
           else f"columnar_share={share:.3f}"))
    fault = fault_summary(page.get("metrics", {}))
    lines.append("")
    lines.append("== fault tolerance ==")
    lines.append(
        f"checksum_failures={fault['checksum_failures']}, "
        f"quarantined_tablets={fault['quarantined_tablets']}, "
        f"faults_injected={fault['faults_injected']}")
    lines.append(
        f"scrub: runs={fault['scrub_runs']}, "
        f"garbage_removed={fault['scrub_orphans_removed']}, "
        f"quarantined={fault['scrub_quarantined']}")
    lines.append(
        f"read_only={fault['read_only']}, "
        f"entries={fault['read_only_entries']}, "
        f"rejections={fault['read_only_rejections']}")
    health_state = page.get("health")
    if health_state and health_state.get("read_only"):
        lines.append(
            f"DEGRADED: {health_state.get('read_only_reason')}")
    tables = page.get("tables", {})
    if tables:
        lines.append("")
        lines.append("== tables ==")
        for name, summary in sorted(tables.items()):
            parts = ", ".join(f"{key}={value}"
                              for key, value in summary.items()
                              if key != "name")
            lines.append(f"{name}: {parts}")
    spans = page.get("spans", [])
    if spans:
        lines.append("")
        lines.append("== recent operations ==")
        for span in spans:
            tags = " ".join(f"{k}={v}" for k, v in span["tags"].items())
            lines.append(
                f"{span['name']}  {span['duration_us']:.0f}us  {tags}")
    return "\n".join(lines)
