"""A Dashboard shard: the full §2.1 stack in one object.

A shard hosts a set of customers, their networks and devices, a
PostgreSQL stand-in for configuration, a LittleTable instance for
time-series data, grabber daemons, and aggregators.  ``run_minutes``
drives the whole thing on the virtual clock: grabbers poll every
minute (§4.1.1), aggregators and LittleTable maintenance run along the
way.  Benchmarks use this to reproduce the production measurements of
§5.2; tests use it as the end-to-end integration surface.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.config import EngineConfig
from ..core.database import LittleTable
from ..disk.vfs import SimulatedDisk
from ..util.clock import MICROS_PER_MINUTE, VirtualClock
from ..util.xorshift import Xorshift64Star
from . import schemas
from .aggregator import (
    NetworkUsageRollup,
    TagUsageRollup,
    UniqueClientsRollup,
)
from .configstore import ConfigStore
from .devices import SimulatedDevice
from .events import EventsGrabber
from .motion import MotionGrabber, MotionSearch
from .mtunnel import MTunnel
from .usage import UsageGrabber


@dataclass
class ShardTopology:
    """How many of everything a shard hosts."""

    customers: int = 4
    networks_per_customer: int = 2
    aps_per_network: int = 4
    cameras_per_network: int = 1
    seed: int = 42


class Shard:
    """One Dashboard shard over a simulated device fleet."""

    def __init__(self, topology: Optional[ShardTopology] = None,
                 clock: Optional[VirtualClock] = None,
                 config: Optional[EngineConfig] = None,
                 sentinel_period_micros: Optional[int] = None):
        self.topology = topology or ShardTopology()
        self.clock = clock or VirtualClock(start=10_000 * 86_400_000_000)
        self.db = LittleTable(disk=SimulatedDisk(),
                              config=config or EngineConfig(),
                              clock=self.clock)
        self.config_store = ConfigStore()
        self.mtunnel = MTunnel(self.clock, seed=self.topology.seed)
        self._rng = Xorshift64Star(seed=self.topology.seed)
        self._build_fleet()
        self._build_tables()
        self._build_daemons(sentinel_period_micros)

    # ------------------------------------------------------------- build

    def _build_fleet(self) -> None:
        start = self.clock.now()
        for customer_index in range(self.topology.customers):
            customer = self.config_store.add_customer(
                f"customer-{customer_index}")
            for network_index in range(self.topology.networks_per_customer):
                network = self.config_store.add_network(
                    customer.customer_id,
                    f"net-{customer_index}-{network_index}")
                for ap_index in range(self.topology.aps_per_network):
                    device = self.config_store.add_device(
                        network.network_id, f"ap-{ap_index}", kind="ap")
                    self.mtunnel.register(SimulatedDevice(
                        device.device_id, network.network_id, kind="ap",
                        seed=self.topology.seed, start=start))
                for cam_index in range(self.topology.cameras_per_network):
                    device = self.config_store.add_device(
                        network.network_id, f"cam-{cam_index}",
                        kind="camera")
                    self.mtunnel.register(SimulatedDevice(
                        device.device_id, network.network_id, kind="camera",
                        seed=self.topology.seed, start=start))

    def _build_tables(self) -> None:
        db = self.db
        self.usage_table = schemas.ensure_table(
            db, schemas.USAGE_TABLE, schemas.usage_schema())
        self.client_usage_table = schemas.ensure_table(
            db, schemas.CLIENT_USAGE_TABLE, schemas.client_usage_schema())
        self.events_table = schemas.ensure_table(
            db, schemas.EVENTS_TABLE, schemas.events_schema())
        self.motion_table = schemas.ensure_table(
            db, schemas.MOTION_TABLE, schemas.motion_schema())
        self.network_rollup_table = schemas.ensure_table(
            db, schemas.NETWORK_ROLLUP_TABLE, schemas.network_rollup_schema())
        self.tag_rollup_table = schemas.ensure_table(
            db, schemas.TAG_ROLLUP_TABLE, schemas.tag_rollup_schema())
        self.unique_clients_table = schemas.ensure_table(
            db, schemas.UNIQUE_CLIENTS_TABLE, schemas.unique_clients_schema())

    def _build_daemons(self, sentinel_period_micros: Optional[int]) -> None:
        self.usage_grabber = UsageGrabber(
            self.usage_table, self.mtunnel, self.config_store, self.clock,
            client_table=self.client_usage_table)
        self.events_grabber = EventsGrabber(
            self.events_table, self.mtunnel, self.config_store, self.clock,
            sentinel_period_micros=sentinel_period_micros)
        self.motion_grabber = MotionGrabber(
            self.motion_table, self.mtunnel, self.config_store, self.clock)
        self.motion_search = MotionSearch(self.motion_table)
        self.aggregators = [
            NetworkUsageRollup(self.usage_table, self.network_rollup_table,
                               self.clock),
            TagUsageRollup(self.usage_table, self.tag_rollup_table,
                           self.clock, self.config_store),
            UniqueClientsRollup(self.client_usage_table,
                                self.unique_clients_table, self.clock),
        ]

    # --------------------------------------------------------------- run

    def run_minutes(self, minutes: int,
                    aggregate_every_minutes: int = 10) -> Dict[str, int]:
        """Drive the shard forward: one grabber round per minute."""
        totals = {"usage_rows": 0, "event_rows": 0, "motion_rows": 0,
                  "rollup_rows": 0}
        for minute in range(minutes):
            self.clock.advance(MICROS_PER_MINUTE)
            totals["usage_rows"] += self.usage_grabber.poll().rows_inserted
            totals["event_rows"] += self.events_grabber.poll().events_inserted
            totals["motion_rows"] += (
                self.motion_grabber.poll().events_inserted)
            if minute % aggregate_every_minutes == 0:
                for aggregator in self.aggregators:
                    totals["rollup_rows"] += aggregator.run().rows_written
            self.db.maintenance()
        return totals

    # --------------------------------------------------------- recovery

    def crash_littletable(self) -> None:
        """Crash and recover LittleTable; daemons rebuild their caches.

        This is the §4.1 story end to end: unflushed rows are lost,
        the grabbers rebuild from what survived plus the devices, and
        aggregators rediscover their position.
        """
        self.db = self.db.simulate_crash()
        self._build_tables()
        self.usage_grabber.rebuild_cache(self.usage_table)
        self.usage_grabber.client_table = self.client_usage_table
        self.events_grabber.rebuild_cache(self.events_table)
        self.motion_grabber.rebuild_cache(self.motion_table)
        self.motion_search.table = self.motion_table
        for aggregator, source, destination in zip(
            self.aggregators,
            [self.usage_table, self.usage_table, self.client_usage_table],
            [self.network_rollup_table, self.tag_rollup_table,
             self.unique_clients_table],
        ):
            aggregator.source = source
            aggregator.destination = destination
            aggregator.recover()
