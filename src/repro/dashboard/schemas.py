"""Standard table schemas used by the Dashboard applications (§4).

Each schema's primary key is chosen for the features built on it, per
the paper's central advice: key (network, device, ts) makes both
whole-network and single-device reads contiguous (Figure 1).
"""

from __future__ import annotations

from typing import Optional

from ..core.database import LittleTable
from ..core.schema import Column, ColumnType, Schema
from ..core.table import Table

USAGE_TABLE = "usage"
CLIENT_USAGE_TABLE = "client_usage"
EVENTS_TABLE = "events"
MOTION_TABLE = "motion"
NETWORK_ROLLUP_TABLE = "usage_by_network_10m"
TAG_ROLLUP_TABLE = "usage_by_tag_10m"
UNIQUE_CLIENTS_TABLE = "unique_clients_by_network_1h"


def usage_schema() -> Schema:
    """Per-device transfer-rate samples (§4.1.1): key (N, D, t2),
    value (t1, c2, r)."""
    return Schema(
        [
            Column("network", ColumnType.INT64),
            Column("device", ColumnType.INT64),
            Column("ts", ColumnType.TIMESTAMP),
            Column("prev_ts", ColumnType.TIMESTAMP),
            Column("counter", ColumnType.INT64),
            Column("rate", ColumnType.DOUBLE),
        ],
        key=["network", "device", "ts"],
    )


def client_usage_schema() -> Schema:
    """Per-client transfer deltas, for top-client views and HLL."""
    return Schema(
        [
            Column("network", ColumnType.INT64),
            Column("client", ColumnType.STRING),
            Column("ts", ColumnType.TIMESTAMP),
            Column("bytes", ColumnType.INT64),
        ],
        key=["network", "client", "ts"],
    )


def events_schema() -> Schema:
    """Device event logs (§4.2).  Sentinel rows use kind='sentinel'."""
    return Schema(
        [
            Column("network", ColumnType.INT64),
            Column("device", ColumnType.INT64),
            Column("ts", ColumnType.TIMESTAMP),
            Column("event_id", ColumnType.INT64),
            Column("kind", ColumnType.STRING),
            Column("detail", ColumnType.STRING),
        ],
        key=["network", "device", "ts"],
    )


def motion_schema() -> Schema:
    """Camera motion events (§4.3), keyed on the camera identifier."""
    return Schema(
        [
            Column("camera", ColumnType.INT64),
            Column("ts", ColumnType.TIMESTAMP),
            Column("duration", ColumnType.INT64),
            Column("word", ColumnType.INT64),
        ],
        key=["camera", "ts"],
    )


def network_rollup_schema() -> Schema:
    """10-minute per-network byte totals (§4.1.2)."""
    return Schema(
        [
            Column("network", ColumnType.INT64),
            Column("ts", ColumnType.TIMESTAMP),
            Column("bytes", ColumnType.INT64),
            Column("samples", ColumnType.INT64),
        ],
        key=["network", "ts"],
    )


def tag_rollup_schema() -> Schema:
    """10-minute per-(customer, tag) byte totals (§4.1.2)."""
    return Schema(
        [
            Column("customer", ColumnType.INT64),
            Column("tag", ColumnType.STRING),
            Column("ts", ColumnType.TIMESTAMP),
            Column("bytes", ColumnType.INT64),
        ],
        key=["customer", "tag", "ts"],
    )


def unique_clients_schema() -> Schema:
    """Hourly per-network HyperLogLog sketches of distinct clients."""
    return Schema(
        [
            Column("network", ColumnType.INT64),
            Column("ts", ColumnType.TIMESTAMP),
            Column("sketch", ColumnType.BLOB),
        ],
        key=["network", "ts"],
    )


def ensure_table(db: LittleTable, name: str, schema: Schema,
                 ttl_micros: Optional[int] = None) -> Table:
    """Create the table if needed; return it."""
    if db.has_table(name):
        return db.table(name)
    return db.create_table(name, schema, ttl_micros=ttl_micros)
