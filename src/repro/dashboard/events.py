"""EventsGrabber (paper §4.2).

Devices assign each event a unique id from a monotonically increasing
counter.  EventsGrabber caches the most recent id fetched per device,
supplies it on every fetch, and the device replies with anything newer.
Rows go to LittleTable keyed (network, device, ts) with the event id
and contents as the value.

Recovery after a restart (§4.2):

1. query a fixed recent window and cache the latest event id found per
   device;
2. a device with no recent row is fetched with *no* previous id; the
   device replies starting from the oldest event it has stored, whose
   timestamp then bounds how far back to search LittleTable with a
   latest-row query, so already-stored events are not re-inserted.

The optional *sentinel* mitigation (§4.2) periodically inserts a row
carrying the latest event id so that recovery never needs to look
further back than one sentinel period.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..core.errors import DuplicateKeyError
from ..core.row import KeyRange, Query, TimeRange
from ..core.table import Table
from ..util.clock import Clock, MICROS_PER_HOUR
from .configstore import ConfigStore
from .mtunnel import DeviceUnreachable, MTunnel

SENTINEL_KIND = "sentinel"


@dataclass
class EventsPollStats:
    devices_polled: int = 0
    devices_unreachable: int = 0
    events_inserted: int = 0
    sentinels_inserted: int = 0
    recoveries: int = 0


class EventsGrabber:
    """The device event-log grabber."""

    def __init__(self, table: Table, mtunnel: MTunnel, config: ConfigStore,
                 clock: Clock,
                 recovery_window_micros: int = MICROS_PER_HOUR,
                 sentinel_period_micros: Optional[int] = None):
        self.table = table
        self.mtunnel = mtunnel
        self.config = config
        self.clock = clock
        self.recovery_window_micros = recovery_window_micros
        self.sentinel_period_micros = sentinel_period_micros
        # device_id -> most recent event id fetched.
        self._last_event_id: Dict[int, int] = {}
        # device_id -> last ts inserted (keeps per-device ts unique).
        self._last_ts: Dict[int, int] = {}
        # device_id -> ts of the last sentinel written.
        self._last_sentinel: Dict[int, int] = {}

    def last_event_id(self, device_id: int) -> Optional[int]:
        return self._last_event_id.get(device_id)

    # -------------------------------------------------------------- poll

    def poll(self) -> EventsPollStats:
        stats = EventsPollStats()
        for device_id in self.mtunnel.device_ids():
            stats.devices_polled += 1
            try:
                device = self.mtunnel.reach(device_id)
            except DeviceUnreachable:
                stats.devices_unreachable += 1
                continue
            self._handle_device(device, stats)
        return stats

    def _handle_device(self, device, stats: EventsPollStats) -> None:
        known = self._last_event_id.get(device.device_id)
        if known is None:
            known = self._recover_device(device, stats)
        events = device.events_after(known)
        rows = []
        for event in events:
            ts = max(event.ts, self._last_ts.get(device.device_id, -1) + 1)
            self._last_ts[device.device_id] = ts
            rows.append((device.network_id, device.device_id, ts,
                         event.event_id, event.kind, event.detail))
            self._last_event_id[device.device_id] = event.event_id
        if rows:
            self.table.insert_tuples(rows)
            stats.events_inserted += len(rows)
        if not events:
            self._last_event_id.setdefault(device.device_id,
                                           device.latest_event_id())
        self._maybe_sentinel(device, stats)

    def _maybe_sentinel(self, device, stats: EventsPollStats) -> None:
        if self.sentinel_period_micros is None:
            return
        latest_id = self._last_event_id.get(device.device_id)
        if latest_id is None or latest_id == 0:
            return
        now = self.clock.now()
        last = self._last_sentinel.get(device.device_id)
        if last is not None and now - last < self.sentinel_period_micros:
            return
        ts = max(now, self._last_ts.get(device.device_id, -1) + 1)
        try:
            self.table.insert_tuples([
                (device.network_id, device.device_id, ts, latest_id,
                 SENTINEL_KIND, "")
            ])
        except DuplicateKeyError:
            return
        self._last_ts[device.device_id] = ts
        self._last_sentinel[device.device_id] = now
        stats.sentinels_inserted += 1

    # ---------------------------------------------------------- recovery

    def rebuild_cache(self, table: Optional[Table] = None) -> int:
        """Phase 1 of recovery: scan a fixed recent window (§4.2)."""
        if table is not None:
            self.table = table
        self._last_event_id.clear()
        self._last_ts.clear()
        now = self.clock.now()
        window = TimeRange.between(now - self.recovery_window_micros, None)
        found: Dict[int, int] = {}
        for row in self.table.scan(Query(KeyRange.all(), window)):
            _network, device_id, ts, event_id, _kind, _detail = row
            if event_id > found.get(device_id, -1):
                found[device_id] = event_id
            last = self._last_ts.get(device_id, -1)
            if ts > last:
                self._last_ts[device_id] = ts
        self._last_event_id.update(found)
        return len(found)

    def _recover_device(self, device, stats: EventsPollStats
                        ) -> Optional[int]:
        """Phase 2: bound the search using the device's oldest event."""
        stats.recoveries += 1
        oldest = device.oldest_event()
        if oldest is None:
            return None
        # Search LittleTable no further back than the oldest event the
        # device still has; anything older is irretrievable anyway.
        lookback = self.clock.now() - oldest.ts
        if lookback <= 0:
            return None
        latest_row = self.table.latest(
            (device.network_id, device.device_id),
            max_lookback_micros=lookback,
        )
        if latest_row is None:
            return None
        _network, _device, ts, event_id, _kind, _detail = latest_row
        self._last_event_id[device.device_id] = event_id
        if ts > self._last_ts.get(device.device_id, -1):
            self._last_ts[device.device_id] = ts
        return event_id
