"""Fault tolerance and load balancing (paper §2.2).

"To protect against data loss, every shard has a warm spare ...
Dashboard uses PostgreSQL's built-in continuous archiving ... [and,
for LittleTable,] every 10 minutes Dashboard runs rsync from shard to
spare repeatedly until a sync completes without copying any files"
(§3.5).  "Each spare also takes hourly backups that it stores locally.
Finally ... every night the spare signs and encrypts a backup of each
database and stores it in Amazon S3."  On failure, "an automated
failover sequence ... brings the spare out of continuous archival mode
and redirects traffic to it by updating DNS records.  Once initiated,
this process takes only a minute or two."

This module reproduces that machinery over the simulated substrate:
rsync-style continuous archival, local hourly snapshots, offsite
signed backups (HMAC stands in for the signature, zlib for the
encryption envelope - the point is integrity checking, not secrecy),
and a DNS-redirect failover that promotes the spare.
"""

from __future__ import annotations

import hashlib
import hmac
import json
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.database import LittleTable
from ..disk.storage import MemoryStorage, Storage
from ..disk.vfs import SimulatedDisk
from ..util.clock import Clock, micros_from_seconds

FAILOVER_SECONDS = 90  # "only a minute or two, including the DNS TTL"


class BackupError(Exception):
    """A backup failed verification."""


@dataclass
class Snapshot:
    """One point-in-time copy of every file on the spare."""

    taken_at: int
    files: Dict[str, bytes]


class WarmSpare:
    """The §2.2 spare: continuously archived, hourly snapshots,
    nightly signed offsite backups."""

    def __init__(self, clock: Clock, signing_key: bytes = b"meraki-spare",
                 max_local_snapshots: int = 24):
        self.clock = clock
        self.storage: Storage = MemoryStorage()
        self.signing_key = signing_key
        self.max_local_snapshots = max_local_snapshots
        self.snapshots: List[Snapshot] = []
        self.last_sync_at: Optional[int] = None
        self.syncs = 0

    # ------------------------------------------------ continuous archival

    def sync_from(self, primary: LittleTable) -> int:
        """One 10-minute archival pass: rsync until nothing copies.

        Returns the number of files copied.  Works because "an rsync
        that copies no files is quick relative to the rate of new
        tablets being written to disk" (§3.5).
        """
        copied = primary.archive_to(self.storage)
        self.last_sync_at = self.clock.now()
        self.syncs += 1
        return copied

    # ----------------------------------------------------------- backups

    def take_local_snapshot(self) -> Snapshot:
        """The hourly local backup, for recovery from "programming or
        operational errors" (restoring state from before a bad write).
        """
        files = {name: self.storage.read_all(name)
                 for name in self.storage.list()}
        snapshot = Snapshot(taken_at=self.clock.now(), files=files)
        self.snapshots.append(snapshot)
        if len(self.snapshots) > self.max_local_snapshots:
            self.snapshots.pop(0)
        return snapshot

    def restore_snapshot(self, snapshot: Snapshot) -> None:
        """Roll the spare's storage back to a snapshot."""
        for name in self.storage.list():
            self.storage.delete(name)
        for name, data in snapshot.files.items():
            self.storage.write_file(name, data)

    def offsite_backup(self) -> bytes:
        """The nightly signed, encrypted backup blob for S3.

        Layout: 32-byte HMAC-SHA256 signature, then the zlib-wrapped
        JSON manifest of all files (hex-encoded).
        """
        manifest = {name: self.storage.read_all(name).hex()
                    for name in self.storage.list()}
        body = zlib.compress(
            json.dumps({"taken_at": self.clock.now(),
                        "files": manifest}).encode("utf-8"))
        signature = hmac.new(self.signing_key, body,
                             hashlib.sha256).digest()
        return signature + body

    def restore_offsite(self, blob: bytes) -> int:
        """Verify and restore an offsite backup.  Returns file count."""
        if len(blob) < 32:
            raise BackupError("backup blob too short")
        signature, body = blob[:32], blob[32:]
        expected = hmac.new(self.signing_key, body,
                            hashlib.sha256).digest()
        if not hmac.compare_digest(signature, expected):
            raise BackupError("backup signature verification failed")
        payload = json.loads(zlib.decompress(body).decode("utf-8"))
        for name in self.storage.list():
            self.storage.delete(name)
        for name, data_hex in payload["files"].items():
            self.storage.write_file(name, bytes.fromhex(data_hex))
        return len(payload["files"])


@dataclass
class DashboardDns:
    """The customer/device -> shard mapping (§2.1): dashboard.meraki.com
    redirects each customer to the host currently serving their shard."""

    records: Dict[str, str] = field(default_factory=dict)

    def point(self, shard_name: str, host: str) -> None:
        self.records[shard_name] = host

    def resolve(self, shard_name: str) -> str:
        return self.records[shard_name]


class FailoverController:
    """Runs the §2.2 automated failover sequence."""

    def __init__(self, shard_name: str, primary: LittleTable,
                 spare: WarmSpare, dns: DashboardDns,
                 clock: Clock):
        self.shard_name = shard_name
        self.primary = primary
        self.spare = spare
        self.dns = dns
        self.clock = clock
        self.failed_over = False
        dns.point(shard_name, "primary")

    def run_archival_tick(self) -> int:
        """The every-10-minutes sync (call from the shard's cron)."""
        if self.failed_over:
            return 0
        return self.spare.sync_from(self.primary)

    def initiate_failover(self) -> LittleTable:
        """Promote the spare: stop archival, repoint DNS, and open a
        LittleTable over the spare's storage.

        Customers "cannot view or reconfigure their networks" during
        the window; the returned database serves from then on.
        """
        if self.failed_over:
            raise RuntimeError("failover already completed")
        self.failed_over = True
        # The window covers automation plus the DNS cache TTL.
        if hasattr(self.clock, "advance"):
            self.clock.advance(micros_from_seconds(FAILOVER_SECONDS))
        self.dns.point(self.shard_name, "spare")
        # The cold tier (§6) is shared archive infrastructure (e.g.
        # S3), not per-shard hardware: the promoted database keeps
        # using the same one.
        return LittleTable(disk=SimulatedDisk(self.spare.storage),
                           config=self.primary.config,
                           clock=self.clock,
                           cold_disk=self.primary.cold_disk)
