"""The configuration store (the paper's PostgreSQL role).

Dashboard keeps configuration - customers, networks, devices, and
user-defined tags - in PostgreSQL with full ACID semantics (§2.3.4),
while time-series data goes to LittleTable.  The reproduction only
needs the config store as the *dimension-table* source for aggregator
joins (§4.1.2: "an aggregator reads the tags for each access point from
PostgreSQL and writes a new table of usage keyed on customer and tag").

This is deliberately a small, synchronous, in-memory store; nothing in
the paper's evaluation depends on its internals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set


class ConfigError(Exception):
    """Unknown ids or duplicate registrations."""


@dataclass
class Customer:
    customer_id: int
    name: str


@dataclass
class Network:
    network_id: int
    customer_id: int
    name: str


@dataclass
class Device:
    device_id: int
    network_id: int
    name: str
    kind: str  # "ap", "switch", "camera", ...
    tags: Set[str] = field(default_factory=set)


class ConfigStore:
    """Customers -> networks -> devices, plus tags."""

    def __init__(self) -> None:
        self._customers: Dict[int, Customer] = {}
        self._networks: Dict[int, Network] = {}
        self._devices: Dict[int, Device] = {}
        self._next_customer = 1
        self._next_network = 1
        self._next_device = 1

    # ---------------------------------------------------------- creation

    def add_customer(self, name: str) -> Customer:
        customer = Customer(self._next_customer, name)
        self._next_customer += 1
        self._customers[customer.customer_id] = customer
        return customer

    def add_network(self, customer_id: int, name: str) -> Network:
        if customer_id not in self._customers:
            raise ConfigError(f"no such customer: {customer_id}")
        network = Network(self._next_network, customer_id, name)
        self._next_network += 1
        self._networks[network.network_id] = network
        return network

    def add_device(self, network_id: int, name: str,
                   kind: str = "ap") -> Device:
        if network_id not in self._networks:
            raise ConfigError(f"no such network: {network_id}")
        device = Device(self._next_device, network_id, name, kind)
        self._next_device += 1
        self._devices[device.device_id] = device
        return device

    # ------------------------------------------------------------ lookup

    def customer(self, customer_id: int) -> Customer:
        try:
            return self._customers[customer_id]
        except KeyError:
            raise ConfigError(f"no such customer: {customer_id}") from None

    def network(self, network_id: int) -> Network:
        try:
            return self._networks[network_id]
        except KeyError:
            raise ConfigError(f"no such network: {network_id}") from None

    def device(self, device_id: int) -> Device:
        try:
            return self._devices[device_id]
        except KeyError:
            raise ConfigError(f"no such device: {device_id}") from None

    def customers(self) -> List[Customer]:
        return [self._customers[k] for k in sorted(self._customers)]

    def networks_of(self, customer_id: int) -> List[Network]:
        self.customer(customer_id)
        return [n for _id, n in sorted(self._networks.items())
                if n.customer_id == customer_id]

    def devices_in(self, network_id: int) -> List[Device]:
        self.network(network_id)
        return [d for _id, d in sorted(self._devices.items())
                if d.network_id == network_id]

    def all_devices(self, kind: Optional[str] = None) -> List[Device]:
        devices = [self._devices[k] for k in sorted(self._devices)]
        if kind is not None:
            devices = [d for d in devices if d.kind == kind]
        return devices

    def customer_of_network(self, network_id: int) -> Customer:
        return self.customer(self.network(network_id).customer_id)

    # -------------------------------------------------------------- tags

    def tag_device(self, device_id: int, tag: str) -> None:
        """Users define tag meanings for themselves (§4.1.2)."""
        self.device(device_id).tags.add(tag)

    def untag_device(self, device_id: int, tag: str) -> None:
        self.device(device_id).tags.discard(tag)

    def devices_with_tag(self, tag: str) -> List[Device]:
        return [d for _id, d in sorted(self._devices.items())
                if tag in d.tags]

    def tags_of(self, device_id: int) -> Set[str]:
        return set(self.device(device_id).tags)
