"""UsageGrabber (paper §4.1.1).

Every minute, fetch from each device a cumulative byte counter, turn
consecutive fetches into average-rate samples, and store them in
LittleTable keyed (network, device, t2) with value (t1, c2, r).

The §4.1.1 rules reproduced here:

* the very first response from a device produces no row (there is no
  interval yet) - the counter is only cached;
* if the gap t2 - t1 exceeds the threshold T (Dashboard uses an hour),
  no row is inserted either - users see a gap - and the cache restarts
  from (t2, c2);
* after a LittleTable crash, the in-memory cache is rebuilt by querying
  the last sample per device no older than T, after which operation
  resumes; the crash appears to users as at most a brief device
  unreachability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..core.row import KeyRange, Query, TimeRange
from ..core.table import Table
from ..util.clock import Clock, MICROS_PER_HOUR
from .configstore import ConfigStore
from .mtunnel import DeviceUnreachable, MTunnel


@dataclass
class UsagePollStats:
    """What one poll round did (for tests and the shard driver)."""

    devices_polled: int = 0
    devices_unreachable: int = 0
    rows_inserted: int = 0
    gaps: int = 0
    first_contacts: int = 0


class UsageGrabber:
    """The per-device byte-counter grabber."""

    def __init__(self, table: Table, mtunnel: MTunnel, config: ConfigStore,
                 clock: Clock, threshold_micros: int = MICROS_PER_HOUR,
                 client_table: Optional[Table] = None):
        self.table = table
        self.client_table = client_table
        self.mtunnel = mtunnel
        self.config = config
        self.clock = clock
        self.threshold_micros = threshold_micros
        # device_id -> (t1, c1): the previous fetch.
        self._cache: Dict[int, Tuple[int, int]] = {}
        # (device_id, mac) -> previous cumulative counter value.
        self._client_cache: Dict[Tuple[int, str], int] = {}

    @property
    def cache_size(self) -> int:
        return len(self._cache)

    def cached_entry(self, device_id: int) -> Optional[Tuple[int, int]]:
        return self._cache.get(device_id)

    # -------------------------------------------------------------- poll

    def poll(self) -> UsagePollStats:
        """One fetch round over every registered device."""
        stats = UsagePollStats()
        self._expire_stale_entries()
        for device_id in self.mtunnel.device_ids():
            stats.devices_polled += 1
            try:
                device = self.mtunnel.reach(device_id)
            except DeviceUnreachable:
                stats.devices_unreachable += 1
                continue
            self._handle_response(device, stats)
        return stats

    def _expire_stale_entries(self) -> None:
        # §4.1.1: entries older than T behave identically to first
        # contact, so they can be dropped to bound the cache.
        cutoff = self.clock.now() - self.threshold_micros
        stale = [device_id for device_id, (t1, _c1) in self._cache.items()
                 if t1 < cutoff]
        for device_id in stale:
            del self._cache[device_id]
            self._client_cache = {
                key: value for key, value in self._client_cache.items()
                if key[0] != device_id
            }

    def _handle_response(self, device, stats: UsagePollStats) -> None:
        t2, c2 = device.read_counter()
        cached = self._cache.get(device.device_id)
        self._cache[device.device_id] = (t2, c2)
        if cached is None:
            stats.first_contacts += 1
            self._cache_clients(device)
            return
        t1, c1 = cached
        if t2 <= t1:
            return
        if t2 - t1 > self.threshold_micros:
            # Too long a gap to honestly claim a steady rate (§4.1.1).
            stats.gaps += 1
            self._cache_clients(device)
            return
        rate = (c2 - c1) / ((t2 - t1) / 1_000_000.0)  # bytes/second
        self.table.insert_tuples([
            (device.network_id, device.device_id, t2, t1, c2, rate)
        ])
        stats.rows_inserted += 1
        if self.client_table is not None:
            stats.rows_inserted += self._insert_client_rows(device, t1, t2)

    def _cache_clients(self, device) -> None:
        if self.client_table is None:
            return
        _t, counters = device.read_client_counters()
        for mac, value in counters.items():
            self._client_cache[(device.device_id, mac)] = value

    def _insert_client_rows(self, device, t1: int, t2: int) -> int:
        _t, counters = device.read_client_counters()
        rows = []
        for mac in sorted(counters):
            value = counters[mac]
            previous = self._client_cache.get((device.device_id, mac))
            self._client_cache[(device.device_id, mac)] = value
            if previous is None:
                continue
            delta = value - previous
            if delta < 0:
                continue
            rows.append((device.network_id, mac, t2, delta))
        if rows:
            self.client_table.insert_tuples(rows)
        return len(rows)

    # ---------------------------------------------------------- recovery

    def rebuild_cache(self, table: Optional[Table] = None) -> int:
        """Rebuild the in-memory cache after a LittleTable crash.

        §4.1.1: "UsageGrabber can rebuild its in-memory cache by
        querying LittleTable for the maximum timestamp and associated
        counter value for each device from the current time minus T
        forward."  One scan of the last T of data suffices.  Returns
        the number of devices recovered.
        """
        if table is not None:
            self.table = table
        self._cache.clear()
        self._client_cache.clear()
        now = self.clock.now()
        query = Query(KeyRange.all(),
                      TimeRange.between(now - self.threshold_micros, None))
        latest: Dict[int, Tuple[int, int]] = {}
        for row in self.table.scan(query):
            _network, device_id, ts, _prev_ts, counter, _rate = row
            held = latest.get(device_id)
            if held is None or ts > held[0]:
                latest[device_id] = (ts, counter)
        self._cache.update(latest)
        return len(latest)
