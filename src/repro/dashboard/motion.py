"""MotionGrabber and video motion search (paper §4.3).

Cameras encode motion as 32-bit words - a nibble each for the coarse
cell's column and row, and 24 bits flagging motion in the cell's 6x4
macroblocks.  MotionGrabber fetches these events like EventsGrabber
fetches logs and stores them keyed on the camera id.  Dashboard users
then select a rectangle of the frame and search backwards in time for
motion within it; heatmaps aggregate the same rows.

With LittleTable returning ~500k rows/second and ~51k rows per camera
per week, searching a week of video takes ~100 ms (§4.3) - the
production-rates benchmark checks that estimate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from ..core.row import DESCENDING, KeyRange, Query, TimeRange
from ..core.table import Table
from ..util.clock import Clock
from .configstore import ConfigStore
from .devices import (
    CELL_COLS_MB,
    CELL_ROWS_MB,
    GRID_COLS,
    GRID_ROWS,
    MACROBLOCK_PX,
    decode_motion_word,
)
from .mtunnel import DeviceUnreachable, MTunnel


@dataclass
class MotionPollStats:
    cameras_polled: int = 0
    cameras_unreachable: int = 0
    events_inserted: int = 0


@dataclass(frozen=True)
class PixelRect:
    """A rectangle of interest in frame pixels, [x0, x1) x [y0, y1)."""

    x0: int
    y0: int
    x1: int
    y1: int

    def __post_init__(self):
        if not (self.x0 < self.x1 and self.y0 < self.y1):
            raise ValueError("empty rectangle")

    def macroblock_bounds(self) -> Tuple[int, int, int, int]:
        """(col0, row0, col1, row1) of covered macroblocks, inclusive."""
        col0 = self.x0 // MACROBLOCK_PX
        row0 = self.y0 // MACROBLOCK_PX
        col1 = (self.x1 - 1) // MACROBLOCK_PX
        row1 = (self.y1 - 1) // MACROBLOCK_PX
        return col0, row0, col1, row1


def word_intersects(word: int, rect: PixelRect) -> bool:
    """Does a motion word's flagged macroblocks intersect the rect?"""
    cell_col, cell_row, bits = decode_motion_word(word)
    col0, row0, col1, row1 = rect.macroblock_bounds()
    base_col = cell_col * CELL_COLS_MB
    base_row = cell_row * CELL_ROWS_MB
    for row_mb in range(CELL_ROWS_MB):
        for col_mb in range(CELL_COLS_MB):
            bit = row_mb * CELL_COLS_MB + col_mb
            if not bits & (1 << bit):
                continue
            col = base_col + col_mb
            row = base_row + row_mb
            if col0 <= col <= col1 and row0 <= row <= row1:
                return True
    return False


class MotionGrabber:
    """Fetches motion events from cameras into LittleTable."""

    def __init__(self, table: Table, mtunnel: MTunnel, config: ConfigStore,
                 clock: Clock):
        self.table = table
        self.mtunnel = mtunnel
        self.config = config
        self.clock = clock
        # camera id -> last event start ts fetched.
        self._last_ts: Dict[int, int] = {}

    def poll(self) -> MotionPollStats:
        stats = MotionPollStats()
        for device in self.config.all_devices(kind="camera"):
            stats.cameras_polled += 1
            try:
                camera = self.mtunnel.reach(device.device_id)
            except DeviceUnreachable:
                stats.cameras_unreachable += 1
                continue
            self._handle_camera(camera, stats)
        return stats

    def _handle_camera(self, camera, stats: MotionPollStats) -> None:
        known = self._last_ts.get(camera.device_id)
        if known is None:
            known = self._recover_camera(camera)
        events = camera.motion_after(known)
        rows = []
        last = known if known is not None else -1
        for event in events:
            ts = max(event.ts, last + 1)
            last = ts
            rows.append((camera.device_id, ts, event.duration_micros,
                         event.word))
        if rows:
            self.table.insert_tuples(rows)
            stats.events_inserted += len(rows)
            self._last_ts[camera.device_id] = last
        elif known is not None:
            self._last_ts[camera.device_id] = known

    def _recover_camera(self, camera) -> Optional[int]:
        """After a restart, resume from the latest stored row."""
        latest = self.table.latest((camera.device_id,))
        if latest is None:
            return None
        ts = latest[1]
        self._last_ts[camera.device_id] = ts
        return ts

    def rebuild_cache(self, table: Optional[Table] = None) -> None:
        if table is not None:
            self.table = table
        self._last_ts.clear()


class MotionSearch:
    """Rectangle search and heatmaps over the motion table (§4.3)."""

    def __init__(self, table: Table):
        self.table = table

    def search(self, camera_id: int, rect: PixelRect,
               ts_min: Optional[int] = None, ts_max: Optional[int] = None,
               limit: Optional[int] = None
               ) -> List[Tuple[int, int, int]]:
        """Find motion in ``rect``, newest first.

        Returns (ts, duration, word) tuples.  This is the §4.3 feature:
        "a Dashboard user can select any rectangular area of interest
        in a camera's video frame and search backwards in time for
        motion events within that area."
        """
        query = Query(KeyRange.prefix((camera_id,)),
                      TimeRange.between(ts_min, ts_max), DESCENDING)
        found: List[Tuple[int, int, int]] = []
        for row in self.table.scan(query):
            _camera, ts, duration, word = row
            if word_intersects(word, rect):
                found.append((ts, duration, word))
                if limit is not None and len(found) >= limit:
                    break
        return found

    def heatmap(self, camera_id: int, ts_min: Optional[int] = None,
                ts_max: Optional[int] = None) -> List[List[int]]:
        """Per-macroblock motion counts over a time range.

        Returns a GRID_ROWS*CELL_ROWS_MB x GRID_COLS*CELL_COLS_MB
        matrix of counts, the basis of the §4.3 "heatmaps of motion
        over time".
        """
        rows_mb = GRID_ROWS * CELL_ROWS_MB
        cols_mb = GRID_COLS * CELL_COLS_MB
        grid = [[0] * cols_mb for _ in range(rows_mb)]
        query = Query(KeyRange.prefix((camera_id,)),
                      TimeRange.between(ts_min, ts_max))
        for row in self.table.scan(query):
            _camera, _ts, _duration, word = row
            cell_col, cell_row, bits = decode_motion_word(word)
            base_col = cell_col * CELL_COLS_MB
            base_row = cell_row * CELL_ROWS_MB
            for row_mb in range(CELL_ROWS_MB):
                for col_mb in range(CELL_COLS_MB):
                    if bits & (1 << (row_mb * CELL_COLS_MB + col_mb)):
                        grid[base_row + row_mb][base_col + col_mb] += 1
        return grid
