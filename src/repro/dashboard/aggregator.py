"""Aggregators and rollups (paper §4.1.2).

Background processes read source tables and write substantially smaller
derived tables so Dashboard can render month-long graphs from a few
thousand rows instead of millions.  Aggregation lives *outside*
LittleTable - the paper originally planned rrdtool-style built-in
aggregation but found separate processes let them iterate faster and
join against PostgreSQL dimension tables (tags, client OS, ...).

Two durability work-arounds from §4.1.2 are reproduced faithfully:

* **Restart discovery.**  "LittleTable provides no built-in, efficient
  way to find the most recent row in a table.  To compensate ...
  aggregators query their destination tables over exponentially longer
  periods in the past until they find some row.  They then find the
  most recent row via binary search."  See :func:`find_latest_ts`.
* **The persistence horizon.**  "Aggregators must take care not to
  insert rows derived from source data that might not yet be persisted
  on disk ... aggregators simply assume that data written more than 20
  minutes in the past has reached disk."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..core.row import KeyRange, Query, TimeRange
from ..core.table import Table
from ..util.clock import Clock, MICROS_PER_HOUR, MICROS_PER_MINUTE
from ..util.hyperloglog import HyperLogLog
from .configstore import ConfigStore

PERSISTENCE_HORIZON_MICROS = 20 * MICROS_PER_MINUTE


def find_latest_ts(table: Table, now: int,
                   base_micros: int = MICROS_PER_MINUTE,
                   max_doublings: int = 40) -> Optional[int]:
    """The §4.1.2 restart-discovery protocol.

    Phase 1: probe [now - base * 2^k, now] for k = 0, 1, ... until a
    row appears.  Phase 2: binary-search the left edge of the window
    for the latest populated instant.  Uses only existence queries
    (limit 1), exactly what the real aggregators can issue.
    """

    def any_row_at_or_after(ts: int) -> bool:
        query = Query(KeyRange.all(), TimeRange.between(ts, None), limit=1)
        return bool(table.query(query).rows)

    window = base_micros
    for _ in range(max_doublings):
        if any_row_at_or_after(max(0, now - window)):
            break
        if window > now:
            return None  # table is empty back to the epoch
        window *= 2
    else:
        return None
    low = max(0, now - window)   # some row exists at or after `low`
    high = now + 1               # no row exists at or after `high`...
    while any_row_at_or_after(high):
        # ... unless rows carry future timestamps; widen until true.
        high = high * 2 + 1
    while low + 1 < high:
        mid = (low + high) // 2
        if any_row_at_or_after(mid):
            low = mid
        else:
            high = mid
    return low


@dataclass
class AggregatorRun:
    """One run's outcome."""

    periods_processed: int = 0
    rows_read: int = 0
    rows_written: int = 0


class Aggregator:
    """Base class: processes whole periods of source data at a time.

    Subclasses implement :meth:`aggregate_period`, mapping the source
    rows of one period to destination rows (whose ``ts`` must be the
    period start, and whose keys must ascend so inserts hit the §3.4.4
    fast path).
    """

    def __init__(self, source: Table, destination: Table, clock: Clock,
                 period_micros: int, use_flush_command: bool = False):
        if period_micros <= 0:
            raise ValueError("period must be positive")
        self.source = source
        self.destination = destination
        self.clock = clock
        self.period_micros = period_micros
        # §4.1.2: "To remove this assumption, we are considering adding
        # a new command to LittleTable that flushes to disk all tablets
        # with timestamps before a given value."  With the command, the
        # aggregator can process right up to "now" instead of trailing
        # the 20-minute persistence horizon.
        self.use_flush_command = use_flush_command
        self._next_period_start: Optional[int] = None

    # ------------------------------------------------------------ state

    def recover(self) -> Optional[int]:
        """Find where to resume from the destination table (§4.1.2).

        Because LittleTable flushes rows in insertion order, finding
        any row of a period in the destination proves all earlier
        periods completed; we re-process from that period forward.
        """
        now = self.clock.now()
        latest = find_latest_ts(self.destination, now)
        if latest is None:
            self._next_period_start = None
            return None
        start = (latest // self.period_micros) * self.period_micros
        self._next_period_start = start
        self._delete_nothing_but_allow_reprocess(start)
        return start

    def _delete_nothing_but_allow_reprocess(self, start: int) -> None:
        # LittleTable has no updates: re-processing the found period
        # would collide with its existing rows.  Subclasses insert with
        # duplicate tolerance instead (see _insert_rows).
        pass

    # -------------------------------------------------------------- run

    def run(self) -> AggregatorRun:
        """Process every complete period up to the persistence horizon."""
        outcome = AggregatorRun()
        now = self.clock.now()
        if self.use_flush_command:
            self.source.flush_before(now)
            horizon = now
        else:
            horizon = now - PERSISTENCE_HORIZON_MICROS
        if self._next_period_start is None:
            first_source = find_latest_ts(self.source, now)
            if first_source is None:
                return outcome
            earliest = self._earliest_source_ts(first_source)
            self._next_period_start = (
                earliest // self.period_micros) * self.period_micros
        while self._next_period_start + self.period_micros <= horizon:
            start = self._next_period_start
            end = start + self.period_micros
            rows = list(self.source.scan(
                Query(KeyRange.all(), TimeRange(min_ts=start, max_ts=end,
                                                max_inclusive=False))))
            outcome.rows_read += len(rows)
            written = self._insert_rows(self.aggregate_period(start, rows))
            outcome.rows_written += written
            outcome.periods_processed += 1
            self._next_period_start = end
        return outcome

    def _earliest_source_ts(self, latest_hint: int) -> int:
        """Earliest source ts (one scan; only runs on first start)."""
        minimum = latest_hint
        for row in self.source.scan(Query(KeyRange.all(), TimeRange.all())):
            ts = self.source.schema.ts_of(row)
            if ts < minimum:
                minimum = ts
        return minimum

    def _insert_rows(self, rows: Iterable[Tuple]) -> int:
        from ..core.errors import DuplicateKeyError

        written = 0
        for row in rows:
            try:
                self.destination.insert_tuples([row])
                written += 1
            except DuplicateKeyError:
                # Re-processing the boundary period after recovery.
                continue
        return written

    # ------------------------------------------------------- subclasses

    def aggregate_period(self, period_start: int,
                         rows: List[Tuple]) -> List[Tuple]:
        """Map one period's source rows to destination rows."""
        raise NotImplementedError


class NetworkUsageRollup(Aggregator):
    """usage -> usage_by_network_10m: cumulative bytes per network.

    This is §4.1.2's motivating example: a month-long graph of a
    100-device network needs ~4M source rows but only a few thousand
    rollup rows.
    """

    def __init__(self, source: Table, destination: Table, clock: Clock,
                 period_micros: int = 10 * MICROS_PER_MINUTE):
        super().__init__(source, destination, clock, period_micros)

    def aggregate_period(self, period_start, rows):
        totals: Dict[int, Tuple[int, int]] = {}
        for network, _device, ts, prev_ts, _counter, rate in rows:
            transferred = int(rate * ((ts - prev_ts) / 1_000_000.0))
            total, samples = totals.get(network, (0, 0))
            totals[network] = (total + transferred, samples + 1)
        return [
            (network, period_start, total, samples)
            for network, (total, samples) in sorted(totals.items())
        ]


class TagUsageRollup(Aggregator):
    """usage -> usage_by_tag_10m, joining device tags from the config
    store (§4.1.2's "classrooms"/"playing-fields" example)."""

    def __init__(self, source: Table, destination: Table, clock: Clock,
                 config: ConfigStore,
                 period_micros: int = 10 * MICROS_PER_MINUTE):
        super().__init__(source, destination, clock, period_micros)
        self.config = config

    def aggregate_period(self, period_start, rows):
        totals: Dict[Tuple[int, str], int] = {}
        for network, device, ts, prev_ts, _counter, rate in rows:
            tags = self.config.tags_of(device)
            if not tags:
                continue
            customer = self.config.customer_of_network(network).customer_id
            transferred = int(rate * ((ts - prev_ts) / 1_000_000.0))
            for tag in tags:
                key = (customer, tag)
                totals[key] = totals.get(key, 0) + transferred
        return [
            (customer, tag, period_start, total)
            for (customer, tag), total in sorted(totals.items())
        ]


class UniqueClientsRollup(Aggregator):
    """client_usage -> hourly HyperLogLog sketches per network.

    "Several features within Dashboard track clients using
    HyperLogLog, a fixed-size, probabilistic representation of a set
    that permits unions and provides cardinality estimates with
    bounded relative error" (§4.1.2).  Figure 8's largest values
    (up to 75 kB) are these sketches.
    """

    def __init__(self, source: Table, destination: Table, clock: Clock,
                 period_micros: int = MICROS_PER_HOUR, precision: int = 12):
        super().__init__(source, destination, clock, period_micros)
        self.precision = precision

    def aggregate_period(self, period_start, rows):
        sketches: Dict[int, HyperLogLog] = {}
        for network, client, _ts, _bytes in rows:
            sketch = sketches.get(network)
            if sketch is None:
                sketch = HyperLogLog(self.precision)
                sketches[network] = sketch
            sketch.add(client.encode("utf-8"))
        return [
            (network, period_start, sketch.serialize())
            for network, sketch in sorted(sketches.items())
        ]

    @staticmethod
    def estimate(row: Tuple) -> float:
        """Decode a destination row back to a cardinality estimate."""
        return HyperLogLog.deserialize(row[2]).cardinality()

    @staticmethod
    def union_estimate(rows: Iterable[Tuple]) -> float:
        """Distinct clients across several sketches (periods/networks)."""
        combined: Optional[HyperLogLog] = None
        for row in rows:
            sketch = HyperLogLog.deserialize(row[2])
            combined = sketch if combined is None else combined.union(sketch)
        return 0.0 if combined is None else combined.cardinality()
