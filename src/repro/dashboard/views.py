"""Dashboard page queries (§2.1): "customers connect ... to view these
statistics".

These are the read paths the whole design optimizes for - each view is
one rectangle of (key range x time range), served by a single
clustered scan (Figure 1).  They are used by the production-rates
benchmark and the examples, and they document how a webapp is meant to
consume the tables the grabbers and aggregators maintain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.row import DESCENDING, KeyRange, Query, TimeRange
from ..core.table import Table
from ..util.clock import MICROS_PER_MINUTE


@dataclass
class GraphPoint:
    """One point of a usage graph: [bucket_start, bucket_start+width)."""

    bucket_start: int
    value: float


def usage_graph(usage_table: Table, network_id: int, ts_min: int,
                ts_max: int, bucket_micros: int = 10 * MICROS_PER_MINUTE,
                device_id: Optional[int] = None) -> List[GraphPoint]:
    """Bytes transferred over time for a network (or one device).

    Reads the raw per-minute samples - the §4.1.2 motivation notes
    this is fine for short windows but that month-long graphs should
    read the rollup table instead (see :func:`rollup_graph`).
    """
    if bucket_micros <= 0:
        raise ValueError("bucket width must be positive")
    prefix = ((network_id,) if device_id is None
              else (network_id, device_id))
    buckets: Dict[int, float] = {}
    query = Query(KeyRange.prefix(prefix),
                  TimeRange(min_ts=ts_min, max_ts=ts_max,
                            max_inclusive=False))
    for _network, _device, ts, prev_ts, _counter, rate in \
            usage_table.scan(query):
        transferred = rate * ((ts - prev_ts) / 1_000_000.0)
        bucket = (ts // bucket_micros) * bucket_micros
        buckets[bucket] = buckets.get(bucket, 0.0) + transferred
    return [GraphPoint(start, buckets[start])
            for start in sorted(buckets)]


def rollup_graph(rollup_table: Table, network_id: int,
                 ts_min: Optional[int] = None,
                 ts_max: Optional[int] = None) -> List[GraphPoint]:
    """The same graph from the 10-minute rollup table (§4.1.2).

    "Rendering the same graph from this derived table yields only a
    few thousand points, and it reduces resource usage across the
    stack."
    """
    query = Query(KeyRange.prefix((network_id,)),
                  TimeRange.between(ts_min, ts_max))
    return [GraphPoint(row[1], float(row[2]))
            for row in rollup_table.scan(query)]


def top_clients(client_usage_table: Table, network_id: int, ts_min: int,
                ts_max: Optional[int] = None, limit: int = 10
                ) -> List[Tuple[str, int]]:
    """The per-client leaderboard ("bytes transferred per client in
    the last hour", §1).  Returns (mac, bytes) pairs, biggest first."""
    totals: Dict[str, int] = {}
    query = Query(KeyRange.prefix((network_id,)),
                  TimeRange.between(ts_min, ts_max))
    for _network, client, _ts, transferred in \
            client_usage_table.scan(query):
        totals[client] = totals.get(client, 0) + transferred
    ranked = sorted(totals.items(), key=lambda item: (-item[1], item[0]))
    return ranked[:limit]


def device_status(usage_table: Table, network_id: int,
                  device_ids: Sequence[int], now: int,
                  offline_after_micros: int = 5 * MICROS_PER_MINUTE
                  ) -> Dict[int, str]:
    """Online/offline per device, from the age of its latest sample.

    Uses latest-row-for-prefix (§3.4.5) with a bounded lookback: a
    device without a recent row is shown offline rather than searched
    for arbitrarily far into the past.
    """
    status: Dict[int, str] = {}
    for device_id in device_ids:
        row = usage_table.latest(
            (network_id, device_id),
            max_lookback_micros=offline_after_micros)
        status[device_id] = "online" if row is not None else "offline"
    return status


def event_page(events_table: Table, network_id: int,
               ts_min: Optional[int] = None,
               ts_max: Optional[int] = None,
               kind: Optional[str] = None,
               contains: Optional[str] = None,
               limit: int = 50) -> List[Tuple]:
    """One page of the event log, newest first (§4.2: "particularly
    useful for diagnosing network connectivity issues or performing
    forensic analysis")."""
    query = Query(KeyRange.prefix((network_id,)),
                  TimeRange.between(ts_min, ts_max), DESCENDING)
    page: List[Tuple] = []
    for row in events_table.scan(query):
        _network, _device, _ts, _event_id, row_kind, detail = row
        if kind is not None and row_kind != kind:
            continue
        if contains is not None and contains not in detail:
            continue
        page.append(row)
        if len(page) >= limit:
            break
    return page


def tag_usage_report(tag_rollup_table: Table, customer_id: int,
                     ts_min: Optional[int] = None,
                     ts_max: Optional[int] = None) -> Dict[str, int]:
    """Total bytes per user-defined tag (§4.1.2's school example)."""
    totals: Dict[str, int] = {}
    query = Query(KeyRange.prefix((customer_id,)),
                  TimeRange.between(ts_min, ts_max))
    for _customer, tag, _ts, transferred in tag_rollup_table.scan(query):
        totals[tag] = totals.get(tag, 0) + transferred
    return totals
