"""Shard splitting (paper §2.2, load balancing).

"To keep Dashboard responsive, the team splits overloaded shards by
mapping roughly half of their customers to each of two new child
shards.  To maintain high resource utilization, the operations team
assigns new customers to underloaded shards during customer sign-up."

A split partitions the parent's customers across two children and
migrates each customer's slice of every LittleTable table: usage rows
follow their network, motion rows follow their camera, rollups follow
their network/customer keys.  This is exactly the operation the
paper's key choices make cheap - each customer's data is contiguous
in the keyspace, so migration is a handful of prefix scans rather
than a full-table shuffle.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..core.row import KeyRange, Query
from ..core.table import Table
from . import schemas
from .shard import Shard, ShardTopology


def _network_owner(shard: Shard) -> Dict[int, int]:
    """network_id -> customer_id, from the config store."""
    return {
        network.network_id: network.customer_id
        for customer in shard.config_store.customers()
        for network in shard.config_store.networks_of(customer.customer_id)
    }


def _device_owner(shard: Shard) -> Dict[int, int]:
    """device_id -> customer_id."""
    owners = {}
    network_owner = _network_owner(shard)
    for device in shard.config_store.all_devices():
        owners[device.device_id] = network_owner[device.network_id]
    return owners


def _row_customer_resolvers(shard: Shard) -> Dict[str, Callable]:
    """Per-table: map a row to the customer that owns it."""
    networks = _network_owner(shard)
    devices = _device_owner(shard)
    return {
        schemas.USAGE_TABLE: lambda row: networks.get(row[0]),
        schemas.CLIENT_USAGE_TABLE: lambda row: networks.get(row[0]),
        schemas.EVENTS_TABLE: lambda row: networks.get(row[0]),
        schemas.MOTION_TABLE: lambda row: devices.get(row[0]),
        schemas.NETWORK_ROLLUP_TABLE: lambda row: networks.get(row[0]),
        schemas.TAG_ROLLUP_TABLE: lambda row: row[0],  # keyed by customer
        schemas.UNIQUE_CLIENTS_TABLE: lambda row: networks.get(row[0]),
    }


def split_shard(parent: Shard) -> Tuple[Shard, Shard, Dict[int, int]]:
    """Split ``parent`` into two child shards.

    Customers are partitioned half-and-half (by id order, a stand-in
    for the operations team's judgement); each child receives its
    customers' config and time-series rows.  Returns
    ``(child_a, child_b, assignment)`` where assignment maps
    customer_id -> 0 or 1.

    The parent's in-memory rows are flushed first so the children see
    everything; the parent should be decommissioned afterwards.
    """
    customers = parent.config_store.customers()
    if len(customers) < 2:
        raise ValueError("need at least two customers to split a shard")
    parent.db.flush_all()
    assignment = {
        customer.customer_id: (0 if index < (len(customers) + 1) // 2 else 1)
        for index, customer in enumerate(customers)
    }
    children = (
        _empty_child(parent, seed_offset=1),
        _empty_child(parent, seed_offset=2),
    )
    _copy_config(parent, children, assignment)
    _copy_rows(parent, children, assignment)
    return children[0], children[1], assignment


def _empty_child(parent: Shard, seed_offset: int) -> Shard:
    child = Shard(
        ShardTopology(customers=0, networks_per_customer=0,
                      aps_per_network=0, cameras_per_network=0,
                      seed=parent.topology.seed + seed_offset),
        clock=parent.clock,
    )
    return child


def _copy_config(parent: Shard, children, assignment) -> None:
    """Recreate each customer's config tree on its child, preserving
    ids (devices keep their identities across the split, as they must:
    their keys embed the ids)."""
    for customer in parent.config_store.customers():
        child = children[assignment[customer.customer_id]]
        store = child.config_store
        # Preserve ids by writing directly into the store's maps; the
        # public add_* API would renumber.
        store._customers[customer.customer_id] = customer
        store._next_customer = max(store._next_customer,
                                   customer.customer_id + 1)
        for network in parent.config_store.networks_of(
                customer.customer_id):
            store._networks[network.network_id] = network
            store._next_network = max(store._next_network,
                                      network.network_id + 1)
            for device in parent.config_store.devices_in(
                    network.network_id):
                store._devices[device.device_id] = device
                store._next_device = max(store._next_device,
                                         device.device_id + 1)
                simulated = parent.mtunnel._devices.get(device.device_id)
                if simulated is not None:
                    child.mtunnel.register(simulated)


def _copy_rows(parent: Shard, children, assignment) -> Dict[str, int]:
    """Migrate every table's rows to the owning child."""
    resolvers = _row_customer_resolvers(parent)
    moved: Dict[str, int] = {}
    for name in parent.db.table_names():
        resolve = resolvers.get(name)
        if resolve is None:
            continue
        source = parent.db.table(name)
        destinations: List[Table] = [
            child.db.table(name) for child in children
        ]
        batches: List[List] = [[], []]
        count = 0
        for row in source.scan(Query()):
            customer = resolve(row)
            if customer is None or customer not in assignment:
                continue
            batch = batches[assignment[customer]]
            batch.append(row)
            count += 1
            if len(batch) >= 512:
                destinations[assignment[customer]].insert_tuples(batch)
                batch.clear()
        for index, batch in enumerate(batches):
            if batch:
                destinations[index].insert_tuples(batch)
        moved[name] = count
    for child in children:
        child.db.flush_all()
    return moved
