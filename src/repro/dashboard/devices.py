"""Simulated Meraki devices.

The paper's grabbers pull three kinds of time-series data from devices
over mtunnel (§4): cumulative byte counters (UsageGrabber), event logs
with monotonically increasing ids (EventsGrabber), and motion events
from security cameras (MotionGrabber).  This module simulates devices
producing all three, driven by the virtual clock and a deterministic
PRNG so every benchmark and test is reproducible.

A crucial property the applications rely on (§2.3.4, §4.1): the device
*is* the recovery store.  Counters are cumulative, the event log is
retained on the device (bounded), and cameras keep video in flash, so
anything LittleTable loses in a crash can be re-read from the device.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..util.clock import MICROS_PER_HOUR, MICROS_PER_MINUTE, MICROS_PER_SECOND
from ..util.xorshift import Xorshift64Star

# Motion geometry (§4.3): a 960x540 frame is 60x34 macroblocks of
# 16x16 px; coarse cells are 6x4 macroblocks, so the coarse grid is
# 10 columns x 9 rows (the last row is partial).  A nibble each
# addresses the coarse col/row; 24 bits flag the macroblocks.
FRAME_WIDTH_PX = 960
FRAME_HEIGHT_PX = 540
MACROBLOCK_PX = 16
CELL_COLS_MB = 6
CELL_ROWS_MB = 4
GRID_COLS = 10  # 60 / 6
GRID_ROWS = 9   # ceil(34 / 4)


def encode_motion_word(cell_col: int, cell_row: int, block_bits: int) -> int:
    """Pack one motion event into a 32-bit word (§4.3)."""
    if not 0 <= cell_col < 16 or not 0 <= cell_row < 16:
        raise ValueError("coarse cell coordinates must fit in a nibble")
    if not 0 <= block_bits < (1 << 24):
        raise ValueError("macroblock bits must fit in 24 bits")
    return (cell_col << 28) | (cell_row << 24) | block_bits


def decode_motion_word(word: int) -> Tuple[int, int, int]:
    """Unpack a motion word into (cell_col, cell_row, block_bits)."""
    return (word >> 28) & 0xF, (word >> 24) & 0xF, word & 0xFFFFFF


@dataclass
class DeviceEvent:
    """One log entry: DHCP lease, (dis)association, 802.1X auth ..."""

    event_id: int
    ts: int
    kind: str
    detail: str


@dataclass
class MotionEvent:
    """One coalesced motion event from a camera (§4.3)."""

    ts: int
    duration_micros: int
    word: int


_EVENT_KINDS = ("dhcp_lease", "association", "disassociation", "8021x_auth")


class SimulatedDevice:
    """One device: counters, event log, optionally a camera.

    ``advance_to(now)`` simulates everything the device did between the
    previous time and ``now``; grabbers then read the results.
    """

    def __init__(self, device_id: int, network_id: int, kind: str = "ap",
                 seed: int = 1, start: int = 0,
                 mean_rate_bps: float = 50_000.0,
                 events_per_hour: float = 12.0,
                 motion_per_hour: float = 30.0,
                 max_log_entries: int = 10_000,
                 client_count: int = 8):
        self.device_id = device_id
        self.network_id = network_id
        self.kind = kind
        self._rng = Xorshift64Star(seed=seed ^ (device_id * 0x9E3779B9) ^ 1)
        self._now = start
        self.mean_rate_bps = mean_rate_bps
        self.events_per_hour = events_per_hour
        self.motion_per_hour = motion_per_hour
        self.max_log_entries = max_log_entries
        # Cumulative 64-bit transfer counter (never resets).
        self.byte_counter = 0
        # Per-client cumulative counters, keyed by MAC string.
        self.client_counters = {}
        self._client_macs = [
            self._random_mac() for _ in range(client_count)
        ]
        for mac in self._client_macs:
            self.client_counters[mac] = 0
        # Event log with monotonically increasing ids (§4.2).
        self._next_event_id = 1
        self._events: List[DeviceEvent] = []
        # Camera state.
        self._motion: List[MotionEvent] = []

    # -------------------------------------------------------- simulation

    def _random_mac(self) -> str:
        return ":".join(
            f"{self._rng.next_below(256):02x}" for _ in range(6)
        )

    def advance_to(self, now: int) -> None:
        """Simulate device activity up to ``now``."""
        if now < self._now:
            raise ValueError("device time cannot move backwards")
        elapsed = now - self._now
        if elapsed == 0:
            return
        self._advance_counters(elapsed, now)
        self._advance_events(elapsed, now)
        if self.kind == "camera":
            self._advance_motion(elapsed, now)
        self._now = now

    def _advance_counters(self, elapsed: int, now: int) -> None:
        # A diurnal-ish rate: the mean scaled by 0.5-1.5 pseudorandomly.
        scale = 0.5 + self._rng.next_float()
        seconds = elapsed / MICROS_PER_SECOND
        total = int(self.mean_rate_bps * scale * seconds)
        self.byte_counter += total
        # Spread across clients unevenly.
        remaining = total
        for mac in self._client_macs[:-1]:
            share = remaining // 2
            self.client_counters[mac] += share
            remaining -= share
        self.client_counters[self._client_macs[-1]] += remaining

    def _advance_events(self, elapsed: int, now: int) -> None:
        expected = self.events_per_hour * (elapsed / MICROS_PER_HOUR)
        count = int(expected)
        if self._rng.next_float() < (expected - count):
            count += 1
        for index in range(count):
            ts = self._now + ((index + 1) * elapsed) // (count + 1)
            kind = _EVENT_KINDS[self._rng.next_below(len(_EVENT_KINDS))]
            mac = self._client_macs[
                self._rng.next_below(len(self._client_macs))]
            event = DeviceEvent(self._next_event_id, ts, kind,
                                f"client={mac}")
            self._next_event_id += 1
            self._events.append(event)
        overflow = len(self._events) - self.max_log_entries
        if overflow > 0:
            del self._events[:overflow]

    def _advance_motion(self, elapsed: int, now: int) -> None:
        expected = self.motion_per_hour * (elapsed / MICROS_PER_HOUR)
        count = int(expected)
        if self._rng.next_float() < (expected - count):
            count += 1
        for index in range(count):
            ts = self._now + ((index + 1) * elapsed) // (count + 1)
            cell_col = self._rng.next_below(GRID_COLS)
            cell_row = self._rng.next_below(GRID_ROWS)
            block_bits = self._rng.next_u32() & 0xFFFFFF
            if block_bits == 0:
                block_bits = 1
            duration = (1 + self._rng.next_below(30)) * MICROS_PER_SECOND
            # Coalesce with the previous event if it is the same cell
            # in (near-)successive frames (§4.3).
            if (self._motion
                    and self._motion[-1].ts + self._motion[-1].duration_micros
                    >= ts
                    and decode_motion_word(self._motion[-1].word)[:2]
                    == (cell_col, cell_row)):
                previous = self._motion[-1]
                merged_bits = (previous.word | block_bits) & 0xFFFFFF
                self._motion[-1] = MotionEvent(
                    previous.ts,
                    ts + duration - previous.ts,
                    encode_motion_word(cell_col, cell_row, merged_bits),
                )
                continue
            self._motion.append(MotionEvent(
                ts, duration, encode_motion_word(cell_col, cell_row,
                                                 block_bits)))
        overflow = len(self._motion) - self.max_log_entries
        if overflow > 0:
            del self._motion[:overflow]

    # ------------------------------------------------- grabber interface

    def read_counter(self) -> Tuple[int, int]:
        """(device_time, cumulative_bytes) - what UsageGrabber fetches."""
        return self._now, self.byte_counter

    def read_client_counters(self) -> Tuple[int, dict]:
        """(device_time, {mac: cumulative_bytes}) for per-client usage."""
        return self._now, dict(self.client_counters)

    def events_after(self, last_event_id: Optional[int]) -> List[DeviceEvent]:
        """Events newer than ``last_event_id`` (§4.2).

        With ``None``, the device replies starting from the oldest
        event it has stored.
        """
        if last_event_id is None:
            return list(self._events)
        return [e for e in self._events if e.event_id > last_event_id]

    def oldest_event(self) -> Optional[DeviceEvent]:
        """The oldest retained event (bounds recovery searches, §4.2)."""
        return self._events[0] if self._events else None

    def latest_event_id(self) -> int:
        return self._next_event_id - 1

    def motion_after(self, ts: Optional[int]) -> List[MotionEvent]:
        """Motion events that started after ``ts`` (cameras only)."""
        if self.kind != "camera":
            return []
        if ts is None:
            return list(self._motion)
        return [m for m in self._motion if m.ts > ts]
