#!/usr/bin/env python3
"""Video motion search: the paper's §4.3 application.

Security cameras encode motion as 32-bit words (coarse cell + 24
macroblock bits); MotionGrabber stores them keyed on the camera, and a
user can "select any rectangular area of interest in a camera's video
frame and search backwards in time for motion events within that
area", or render heatmaps of motion over time.

Run:  python examples/video_motion_search.py
"""

from repro.dashboard import PixelRect, Shard, ShardTopology
from repro.dashboard.devices import decode_motion_word
from repro.util.clock import MICROS_PER_MINUTE


def render_heatmap(grid) -> str:
    """Downsample the macroblock heatmap to a terminal-sized view."""
    blocks = " .:-=+*#%@"
    peak = max((max(row) for row in grid), default=0) or 1
    lines = []
    for row in grid[::2]:  # halve vertically for aspect ratio
        line = "".join(
            blocks[min(9, int(9 * value / peak))] for value in row
        )
        lines.append("    |" + line + "|")
    return "\n".join(lines)


def main() -> None:
    shard = Shard(ShardTopology(customers=1, networks_per_customer=1,
                                aps_per_network=0, cameras_per_network=2))
    print("Recording motion from 2 cameras for 4 simulated hours...")
    totals = shard.run_minutes(240)
    print(f"  stored {totals['motion_rows']} motion events")

    camera = shard.config_store.all_devices(kind="camera")[0]

    # The security incident: search the lower-right quadrant of the
    # frame, newest first.
    quadrant = PixelRect(480, 270, 960, 540)
    hits = shard.motion_search.search(camera.device_id, quadrant, limit=5)
    print(f"\nMotion in the lower-right quadrant of camera "
          f"{camera.device_id} (newest first):")
    for ts, duration, word in hits:
        cell_col, cell_row, bits = decode_motion_word(word)
        minutes_ago = (shard.clock.now() - ts) / MICROS_PER_MINUTE
        print(f"  [{minutes_ago:6.1f} min ago] cell ({cell_col},{cell_row})"
              f" {bin(bits).count('1')} macroblocks,"
              f" {duration / 1_000_000:.0f}s")

    # Narrow the search to a doorway-sized region.
    doorway = PixelRect(640, 380, 720, 540)
    doorway_hits = shard.motion_search.search(camera.device_id, doorway)
    print(f"\nDoorway region: {len(doorway_hits)} events "
          f"(vs {len(shard.motion_search.search(camera.device_id, PixelRect(0, 0, 960, 540)))} frame-wide)")

    # The §4.3 heatmap, over the full recording.
    print("\nMotion heatmap (full frame, 4 hours):")
    grid = shard.motion_search.heatmap(camera.device_id)
    print(render_heatmap(grid))

    # The paper's cost estimate: at 500k rows/s, a week of one
    # camera's ~51k rows searches in ~100 ms; our 4 hours is smaller
    # still, and the scan ratio shows why the key layout matters.  The
    # engine-wide metrics registry has the numbers.
    counters = shard.db.metrics.snapshot()["counters"]
    ratio = (counters["query.rows_scanned"]
             / max(1, counters["query.rows_returned"]))
    print(f"\nScan efficiency: {ratio:.2f} rows scanned per row returned "
          f"(the motion table is keyed (camera, ts), so searches read "
          f"only the camera they ask about)")


if __name__ == "__main__":
    main()
