#!/usr/bin/env python3
"""Scale-out: one workload, three deployments, zero code changes.

The unified client API (`repro.connect`) returns a database facade
with the same `insert`/`query`/`latest`/`stats`/`health` surface as
an in-process `LittleTable`, so this example defines ONE workload
function and runs it unchanged against:

1. an in-process engine (no network at all);
2. a single-engine server behind the classic thread-per-connection
   front end;
3. a 4-shard `ShardRouter` behind the asyncio front end, where the
   v2 protocol pipelines requests and scatter-gather queries merge
   rows from every shard in key order.

Run:  python examples/scale_out.py
"""

import time

import repro
from repro import ClientConfig, Column, ColumnType, LittleTable, Query, Schema
from repro.net import AsyncLittleTableServer, LittleTableServer, ShardRouter

SCHEMA = Schema(
    [
        Column("device", ColumnType.STRING),
        Column("ts", ColumnType.TIMESTAMP),
        Column("bytes", ColumnType.INT64),
    ],
    key=["device", "ts"],
)

DEVICES = 16
SAMPLES = 25


def workload(db, label):
    """The dashboard workload from the paper's §4.1, facade-only."""
    db.create_table("usage", SCHEMA)
    now = int(time.time() * 1_000_000)
    rows = [
        {"device": f"ap-{d:02d}", "ts": now - s * 60_000_000,
         "bytes": 1000 * d + s}
        for d in range(DEVICES)
        for s in range(SAMPLES)
    ]
    inserted = db.insert("usage", rows)

    result = db.query("usage", Query(limit=DEVICES * SAMPLES))
    ordered = all(result.rows[i][:2] <= result.rows[i + 1][:2]
                  for i in range(len(result.rows) - 1))

    latest = db.latest("usage", ("ap-07",))
    health = db.health()

    print(f"  [{label}] inserted={inserted} "
          f"queried={len(result.rows)} key-ordered={ordered} "
          f"latest(ap-07).bytes={latest[2]} "
          f"read_only={health['read_only']}")


def main() -> None:
    print("Scale-out: the same workload against three deployments\n")

    print("1. In-process engine:")
    with LittleTable() as db:
        workload(db, "in-process")

    print("2. Threaded server, repro.connect():")
    with LittleTableServer(LittleTable()) as server:
        with repro.connect(server.address) as db:
            workload(db, "1 server")

    print("3. Async server over a 4-shard router, pipelined v2 client:")
    router = ShardRouter(shards=4)
    with AsyncLittleTableServer(router) as server:
        host, port = server.address
        with repro.connect(f"{host}:{port}",
                           config=ClientConfig(pipeline_depth=64)) as db:
            workload(db, "4 shards")
            client = db.client
            print(f"     negotiated protocol v{client.server_version}, "
                  f"features={list(client.server_features)}, "
                  f"server reports {client.server_shards} shards")
            snapshot = db.stats()
            scatter = snapshot["counters"].get("shard.scatter_queries", 0)
            single = snapshot["counters"].get(
                "shard.single_shard_queries", 0)
            print(f"     scatter-gather queries={scatter}, "
                  f"single-shard (pinned) queries={single}")

    print("\nOne facade, three deployments - no workload changes.")


if __name__ == "__main__":
    main()
