#!/usr/bin/env python3
"""Network usage end to end: the paper's §4.1 application.

Builds a small shard - simulated devices behind mtunnel, UsageGrabber
polling every minute, aggregators rolling usage up per network and per
tag - then renders a text "Dashboard" of usage graphs, demonstrates a
mid-run LittleTable crash, and shows the recovery protocol making it
invisible to customers.

Run:  python examples/network_usage_dashboard.py
"""

from repro.core import KeyRange, Query, TimeRange
from repro.dashboard import Shard, ShardTopology
from repro.util.clock import MICROS_PER_HOUR, MICROS_PER_MINUTE


def sparkline(values, width=48):
    """Render a list of numbers as a text graph."""
    if not values:
        return "(no data)"
    peak = max(values) or 1
    blocks = " .:-=+*#%@"
    sampled = values[-width:]
    return "".join(blocks[min(9, int(9 * v / peak))] for v in sampled)


def show_network_graphs(shard) -> None:
    """The §4.1.2 rollup graph: bytes per network per 10 minutes."""
    print("\n  Usage by network (10-minute rollups):")
    for network in shard.config_store.networks_of(1):
        rows = shard.db.query(
            "usage_by_network_10m",
            Query(KeyRange.prefix((network.network_id,)))).rows
        series = [row[2] for row in rows]
        print(f"    {network.name:>10}  {sparkline(series)}  "
              f"({len(series)} points)")


def show_device_drilldown(shard, network_id=1, device_id=1) -> None:
    """The §4.1.1 drill-down: per-minute rates for one device."""
    hour_ago = TimeRange.between(
        shard.clock.now() - MICROS_PER_HOUR, None)
    rows = shard.db.query(
        "usage", Query(KeyRange.prefix((network_id, device_id)),
                       hour_ago)).rows
    rates = [row[5] for row in rows]
    print(f"\n  Device {device_id} rate, last hour "
          f"({len(rates)} samples):")
    print(f"    {sparkline(rates)}")
    if rates:
        print(f"    min {min(rates):,.0f} B/s   max {max(rates):,.0f} B/s")


def show_tag_report(shard) -> None:
    """The §4.1.2 tag join: usage per user-defined tag."""
    rows = shard.db.query("usage_by_tag_10m").rows
    totals = {}
    for _customer, tag, _ts, total in rows:
        totals[tag] = totals.get(tag, 0) + total
    print("\n  Usage by tag (joined from the config store):")
    for tag, total in sorted(totals.items()):
        print(f"    {tag:>15}: {total:,} bytes")


def main() -> None:
    shard = Shard(ShardTopology(customers=1, networks_per_customer=2,
                                aps_per_network=4, cameras_per_network=0))
    # Tag some access points the way the paper's school example does.
    shard.config_store.tag_device(1, "classrooms")
    shard.config_store.tag_device(2, "classrooms")
    shard.config_store.tag_device(3, "playing-fields")

    print("Running the shard for 90 simulated minutes...")
    totals = shard.run_minutes(90)
    print(f"  grabbed {totals['usage_rows']} usage rows, "
          f"wrote {totals['rollup_rows']} rollup rows")

    show_network_graphs(shard)
    show_device_drilldown(shard)
    show_tag_report(shard)

    # Now the §4.1.1 crash story: LittleTable dies, the grabber
    # rebuilds its counter cache from what survived plus the devices.
    print("\nSimulating a LittleTable crash...")
    rows_before = len(shard.db.query("usage").rows)
    shard.crash_littletable()
    rows_after = len(shard.db.query("usage").rows)
    print(f"  usage rows: {rows_before} before, {rows_after} after "
          f"(unflushed tail lost)")

    print("Resuming polling for 10 minutes...")
    shard.run_minutes(10)
    rows = shard.db.query(
        "usage",
        Query(KeyRange.prefix((1, 1)),
              TimeRange.between(shard.clock.now() - 20 * MICROS_PER_MINUTE,
                                None))).rows
    widest_gap = max(
        (row[2] - row[3] for row in rows), default=0) / MICROS_PER_MINUTE
    print(f"  device (1,1) resumed; widest sample interval around the "
          f"crash: {widest_gap:.0f} minutes")
    print("  To a customer this looks like brief device unreachability "
          "- exactly the paper's §4.1.1 claim.")


if __name__ == "__main__":
    main()
