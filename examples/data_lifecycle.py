#!/usr/bin/env python3
"""Data lifecycle: the paper's proposed extensions, end to end.

The paper closes with features Meraki was considering; this
reproduction implements them, and this example walks the life of a
table through all of them:

* the §4.1.2 flush command (``flush_before``), removing the
  aggregators' 20-minute persistence assumption;
* the §6 LHAM-style cold tier, moving old tablets to archive storage;
* the §7 bulk delete, for regional-privacy compliance;
* the §2.2 warm spare: continuous archival, signed offsite backups,
  and DNS failover.

Run:  python examples/data_lifecycle.py
"""

from repro.core import (
    Column,
    ColumnType,
    EngineConfig,
    KeyRange,
    LittleTable,
    Query,
    Schema,
    TimeRange,
)
from repro.dashboard import DashboardDns, FailoverController, WarmSpare
from repro.disk import DiskParameters, SimulatedDisk
from repro.util.clock import (
    MICROS_PER_DAY,
    MICROS_PER_MINUTE,
    MICROS_PER_WEEK,
    VirtualClock,
)


def main() -> None:
    clock = VirtualClock(start=20_000 * MICROS_PER_DAY)
    # An archive tier with S3-ish latencies next to the hot disk.
    cold = SimulatedDisk(params=DiskParameters(
        seek_time_s=0.080, read_throughput_bps=40 * 1024 * 1024))
    db = LittleTable(clock=clock, cold_disk=cold,
                     config=EngineConfig(merge_min_age_micros=0))
    schema = Schema(
        [Column("customer", ColumnType.INT64),
         Column("device", ColumnType.INT64),
         Column("ts", ColumnType.TIMESTAMP),
         Column("bytes", ColumnType.INT64)],
        key=["customer", "device", "ts"],
    )
    usage = db.create_table("usage", schema)

    # --- 1. Months of history accumulate -----------------------------
    print("Accumulating 8 weeks of samples for 3 customers...")
    start = clock.now()
    for week in range(8):
        for customer in (1, 2, 3):
            rows = [{"customer": customer, "device": d,
                     "ts": start + week * MICROS_PER_WEEK + d,
                     "bytes": week * 100 + d} for d in range(10)]
            db.insert("usage", rows)
        usage.flush_all()
    clock.advance(8 * MICROS_PER_WEEK)
    db.maintenance_until_quiet()
    print(f"  {usage.row_count_estimate()} rows in "
          f"{len(usage.on_disk_tablets)} tablets")

    # --- 2. The explicit flush command (§4.1.2) ----------------------
    db.insert("usage", [{"customer": 1, "device": 99, "ts": clock.now(),
                         "bytes": 1}])
    written = usage.flush_before(clock.now() + 1)
    print(f"\nflush_before(now): {len(written)} tablet(s) written - "
          f"aggregators can now trust everything up to 'now' is durable")

    # --- 3. Old data migrates to the cold tier (§6) ------------------
    cutoff = clock.now() - 3 * MICROS_PER_WEEK
    moved = usage.migrate_to_cold(cutoff)
    tiers = [t.tier for t in usage.on_disk_tablets]
    print(f"\nmigrate_to_cold: {moved} tablet(s) moved; tiers now "
          f"{sorted(tiers)}")
    old_rows = db.query("usage", Query(
        KeyRange.prefix((2,)),
        TimeRange.between(None, cutoff))).rows
    print(f"  queries still see the archived history transparently: "
          f"{len(old_rows)} old rows for customer 2 "
          f"(cold-tier read time {cold.elapsed_s * 1000:.0f} ms modeled)")

    # --- 4. A customer invokes their right to erasure (§7) -----------
    before = len(db.query("usage").rows)
    removed = usage.bulk_delete((2,))
    after = len(db.query("usage").rows)
    print(f"\nbulk_delete(customer=2): {removed} rows removed "
          f"({before} -> {after}); hot and cold tablets rewritten in "
          f"place")

    # --- 5. The warm spare and failover (§2.2) -----------------------
    spare = WarmSpare(clock)
    dns = DashboardDns()
    controller = FailoverController("shard-7", db, spare, dns, clock)
    controller.run_archival_tick()
    spare.take_local_snapshot()
    offsite = spare.offsite_backup()
    print(f"\nspare synced ({spare.syncs} pass), hourly snapshot taken, "
          f"offsite backup signed ({len(offsite):,} bytes)")

    print("Primary fails! Initiating automated failover...")
    promoted = controller.initiate_failover()
    rows = promoted.query("usage").rows
    print(f"  DNS now points at: {dns.resolve('shard-7')}; the spare "
          f"serves {len(rows)} rows "
          f"(the bulk delete is preserved: "
          f"{sum(1 for r in rows if r[0] == 2)} customer-2 rows)")


if __name__ == "__main__":
    main()
