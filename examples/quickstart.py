#!/usr/bin/env python3
"""Quickstart: the LittleTable core API in five minutes.

Creates a database, defines a two-dimensionally clustered table (the
paper's Figure 1 example: key = network, device, ts), inserts some
samples, and runs the two dashboard queries the paper's introduction
motivates - a whole-network graph and a single-device drill-down -
plus a latest-row lookup, a crash/recovery round trip, and a look at
the engine's metrics registry.

Run:  python examples/quickstart.py
"""

from repro.core import (
    Column,
    ColumnType,
    KeyRange,
    LittleTable,
    Query,
    Schema,
    TimeRange,
)
from repro.util.clock import MICROS_PER_DAY, MICROS_PER_MINUTE, VirtualClock


def main() -> None:
    # A virtual clock makes the example deterministic; pass no clock
    # to use wall time.  (No `with` here: the crash demo below needs
    # to leave rows unflushed, and leaving a `with` block flushes.)
    clock = VirtualClock(start=20_000 * MICROS_PER_DAY)
    db = LittleTable(clock=clock)

    # The paper's running example: bytes transferred per device,
    # clustered by (network, device) and partitioned by time.  The
    # last key column must be the timestamp, named "ts" (§3.1).
    schema = Schema(
        [
            Column("network", ColumnType.INT64),
            Column("device", ColumnType.INT64),
            Column("ts", ColumnType.TIMESTAMP),
            Column("bytes", ColumnType.INT64),
        ],
        key=["network", "device", "ts"],
    )
    db.create_table("usage", schema, ttl_micros=365 * MICROS_PER_DAY)

    # Insert ten minutes of samples for two networks of three devices,
    # straight through the database facade.
    for minute in range(10):
        rows = [
            {"network": network, "device": device, "ts": clock.now(),
             "bytes": 1000 * network + 10 * device + minute}
            for network in (1, 2)
            for device in range(3)
        ]
        db.insert("usage", rows)
        clock.advance(MICROS_PER_MINUTE)

    # Query 1: everything network 1 transferred in the last five
    # minutes - one contiguous rectangle of the keyspace x time plane.
    recent = TimeRange.between(clock.now() - 5 * MICROS_PER_MINUTE, None)
    result = db.query("usage", Query(KeyRange.prefix((1,)), recent))
    print(f"network 1, last 5 minutes: {len(result.rows)} rows")
    total = sum(row[3] for row in result.rows)
    print(f"  total bytes: {total}")

    # Query 2: drill down to one device over all time.
    result = db.query("usage", Query(KeyRange.prefix((1, 2))))
    print(f"network 1 device 2, all time: {len(result.rows)} rows")

    # Latest row for a key prefix (§3.4.5) - what EventsGrabber uses
    # to find where it left off.
    latest = db.latest("usage", (2, 0))
    print(f"latest sample for (2, 0): ts={latest[2]}, bytes={latest[3]}")

    # Every layer records into one metrics registry; this is the same
    # view `ltdb stats` and the STATS protocol command render.
    counters = db.metrics.snapshot()["counters"]
    print(f"inserted {counters['insert.rows']} rows in "
          f"{counters['insert.batches']} batches; "
          f"{counters['query.count']} queries scanned "
          f"{counters['query.rows_scanned']} rows")

    # Durability is deliberately weak (§3.1): unflushed rows die in a
    # crash, flushed rows survive, and survival is always a prefix of
    # insertion order.
    db.flush_all()
    db.insert("usage", [{"network": 9, "device": 9, "ts": clock.now(),
                         "bytes": 1}])

    # The recovered database is a context manager: leaving the block
    # is a clean shutdown that flushes every table.
    with db.simulate_crash() as recovered_db:
        print(f"rows before crash: 61; after recovery: "
              f"{len(recovered_db.query('usage').rows)} "
              f"(the unflushed row was lost, as designed)")

        # The same data through the SQL front end (§2.3.2).
        from repro.sqlapi import SqlSession

        sql = SqlSession(recovered_db)
        answer = sql.execute(
            "SELECT device, SUM(bytes) FROM usage WHERE network = 1 "
            "GROUP BY network, device")
        print("SQL per-device totals for network 1:")
        for device, total_bytes in answer:
            print(f"  device {device}: {total_bytes} bytes")


if __name__ == "__main__":
    main()
