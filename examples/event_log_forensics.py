#!/usr/bin/env python3
"""Event logs and forensics: the paper's §4.2 application.

EventsGrabber pulls device event logs (DHCP leases, associations,
802.1X authentications) into LittleTable; network operators then
browse and search them to debug connectivity problems.  This example
exercises the whole §4.2 story: monotonic event ids, a device outage,
a LittleTable crash, sentinel rows, and the SQL interface for the
actual forensics.

Run:  python examples/event_log_forensics.py
"""

from repro.core import KeyRange, Query, TimeRange
from repro.dashboard import Shard, ShardTopology
from repro.dashboard.events import SENTINEL_KIND
from repro.sqlapi import SqlSession
from repro.util.clock import MICROS_PER_HOUR, MICROS_PER_MINUTE


def main() -> None:
    shard = Shard(
        ShardTopology(customers=1, networks_per_customer=1,
                      aps_per_network=3, cameras_per_network=0),
        sentinel_period_micros=15 * MICROS_PER_MINUTE,
    )

    print("Collecting event logs for two simulated hours...")
    # Device 2 loses its uplink for 40 minutes along the way (§4's
    # "temporary device unavailability").
    outage_start = shard.clock.now() + 30 * MICROS_PER_MINUTE
    shard.mtunnel.schedule_outage(
        2, outage_start, outage_start + 40 * MICROS_PER_MINUTE)
    totals = shard.run_minutes(120)
    print(f"  stored {totals['event_rows']} events "
          f"(including periodic sentinel rows)")

    # Browse the most recent events, newest first, like the Dashboard
    # event-log page.
    print("\nMost recent events for network 1:")
    recent = shard.db.query("events", Query(
        KeyRange.prefix((1,)),
        TimeRange.between(shard.clock.now() - MICROS_PER_HOUR, None),
        direction="desc", limit=8))
    for _network, device, ts, event_id, kind, detail in recent.rows:
        minutes_ago = (shard.clock.now() - ts) / MICROS_PER_MINUTE
        print(f"  [{minutes_ago:5.1f} min ago] device {device} "
              f"#{event_id:<5} {kind:15} {detail}")

    # Forensics through SQL (§2.3.2: "using a well-understood ...
    # query language was extremely valuable").
    sql = SqlSession(shard.db)
    print("\nEvent counts by device (SQL):")
    counts = sql.execute(
        "SELECT network, device, COUNT(*) FROM events "
        "WHERE network = 1 GROUP BY network, device")
    for _network, device, count in counts:
        print(f"  device {device}: {count} events")

    # The outage left no duplicate or missing ids: the device's
    # monotonic counter plus the grabber's id cache see to that.
    rows = shard.db.query("events", Query(KeyRange.prefix((1, 2)))).rows
    ids = [r[3] for r in rows if r[4] != SENTINEL_KIND]
    print(f"\nDevice 2 (which suffered a 40-minute outage): "
          f"{len(ids)} events, ids {ids[0]}..{ids[-1]}, "
          f"duplicates: {len(ids) - len(set(ids))}, "
          f"gaps: {ids[-1] - ids[0] + 1 - len(ids)}")

    # Crash LittleTable and restart the grabber; sentinels bound how
    # far back recovery must search (§4.2).
    print("\nCrashing LittleTable and restarting the grabber...")
    shard.db.flush_all()
    shard.crash_littletable()
    shard.run_minutes(10)
    rows = shard.db.query("events", Query(KeyRange.prefix((1,)))).rows
    pairs = [(r[1], r[3]) for r in rows if r[4] != SENTINEL_KIND]
    print(f"  after recovery: {len(rows)} rows, duplicate events: "
          f"{len(pairs) - len(set(pairs))}")
    sentinels = [r for r in rows if r[4] == SENTINEL_KIND]
    print(f"  sentinel rows present: {len(sentinels)} "
          f"(each repeats its device's latest real event id, which is "
          f"what bounds the recovery search)")


if __name__ == "__main__":
    main()
