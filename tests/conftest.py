"""Shared fixtures: schemas, clocks, and engine builders."""

import pytest

from repro.core import Column, ColumnType, EngineConfig, LittleTable, Schema
from repro.disk import SimulatedDisk
from repro.util.clock import MICROS_PER_DAY, VirtualClock

# A stable "now" far from the epoch: day 10,000 (2-Jan-1997), aligned to
# a week boundary plus a bit so period math is interesting.
BASE_TIME = 10_000 * MICROS_PER_DAY + 5 * 3_600_000_000


def usage_schema():
    """The paper's running example: (network, device, ts) -> counters."""
    return Schema(
        [
            Column("network", ColumnType.INT64),
            Column("device", ColumnType.INT64),
            Column("ts", ColumnType.TIMESTAMP),
            Column("bytes", ColumnType.INT64),
            Column("rate", ColumnType.DOUBLE),
        ],
        key=["network", "device", "ts"],
    )


def event_schema():
    """Event-log style schema with a string payload."""
    return Schema(
        [
            Column("network", ColumnType.INT64),
            Column("device", ColumnType.INT64),
            Column("ts", ColumnType.TIMESTAMP),
            Column("event_id", ColumnType.INT64),
            Column("contents", ColumnType.STRING),
        ],
        key=["network", "device", "ts"],
    )


@pytest.fixture
def clock():
    return VirtualClock(start=BASE_TIME)


@pytest.fixture
def small_config():
    """Tiny flush/merge sizes so tests exercise multi-tablet paths."""
    return EngineConfig(
        block_size_bytes=1024,
        flush_size_bytes=16 * 1024,
        max_merged_tablet_bytes=256 * 1024,
        merge_min_age_micros=0,
        merge_rollover_delay_fraction=0.0,
        server_row_limit=100_000,
    )


@pytest.fixture
def db(clock, small_config):
    return LittleTable(disk=SimulatedDisk(), config=small_config, clock=clock)


@pytest.fixture
def usage_table(db):
    return db.create_table("usage", usage_schema())
