"""Tests for the SQL shell (repro.cli)."""

import io

import pytest

from repro.cli import Shell, format_result, main, open_database
from repro.core import LittleTable
from repro.sqlapi.executor import SqlResult


@pytest.fixture
def shell():
    out = io.StringIO()
    return Shell(LittleTable(), out=out), out


CREATE = ("CREATE TABLE t (k INT64, ts TIMESTAMP, v INT64, "
          "PRIMARY KEY (k, ts));")


class TestFormatResult:
    def test_no_columns(self):
        assert format_result(SqlResult([], [], 3)) == "ok (3 affected)"

    def test_empty_rows(self):
        assert format_result(SqlResult(["a"], [])) == "(no rows)"

    def test_alignment(self):
        text = format_result(SqlResult(["col", "x"], [(1, 22), (333, 4)]))
        lines = text.splitlines()
        assert lines[0].startswith("col")
        assert lines[-1] == "(2 rows)"

    def test_blob_rendering(self):
        text = format_result(SqlResult(["b"], [(b"\x01\x02",)]))
        assert "X'0102'" in text
        long_blob = format_result(SqlResult(["b"], [(bytes(100),)]))
        assert "(100 bytes)" in long_blob

    def test_float_rendering(self):
        assert "1.5" in format_result(SqlResult(["f"], [(1.5,)]))


class TestShell:
    def test_statement_round_trip(self, shell):
        sh, out = shell
        sh.run([CREATE, "INSERT INTO t (k, ts, v) VALUES (1, 10, 5);",
                "SELECT * FROM t;"])
        text = out.getvalue()
        assert "ok (1 affected)" in text
        assert "(1 rows)" in text

    def test_multiline_statement(self, shell):
        sh, out = shell
        assert sh.feed("SELECT *\n")
        assert sh.feed("FROM nowhere;\n")
        assert "error:" in out.getvalue()

    def test_errors_do_not_kill_shell(self, shell):
        sh, out = shell
        sh.run(["SELECT * FROM missing;", CREATE, ".tables"])
        text = out.getvalue()
        assert "error:" in text
        assert "t" in text.splitlines()[-1]

    def test_dot_tables_empty(self, shell):
        sh, out = shell
        sh.feed(".tables\n")
        assert "(no tables)" in out.getvalue()

    def test_dot_help(self, shell):
        sh, out = shell
        sh.feed(".help\n")
        assert "CREATE TABLE" in out.getvalue()

    def test_dot_maintenance(self, shell):
        sh, out = shell
        sh.run([CREATE, "INSERT INTO t (k, ts, v) VALUES (1, 10, 5);"])
        sh.feed(".maintenance\n")
        assert "flushed" in out.getvalue()

    def test_quit_stops_run(self, shell):
        sh, out = shell
        assert sh.run([".quit", "SELECT * FROM missing;"]) is False
        assert "error" not in out.getvalue()

    def test_unknown_dot_command(self, shell):
        sh, out = shell
        sh.feed(".bogus\n")
        assert "unknown command" in out.getvalue()


class TestOperatorCommands:
    def test_dot_stats(self, shell):
        sh, out = shell
        sh.run([CREATE, "INSERT INTO t (k, ts, v) VALUES (1, 10, 5);"])
        sh.feed(".stats\n")
        text = out.getvalue()
        assert "t:" in text
        assert "rows: 1" in text
        assert "write_amplification" in text

    def test_dot_stats_named_table(self, shell):
        sh, out = shell
        sh.run([CREATE])
        sh.feed(".stats t\n")
        assert "rows: 0" in out.getvalue()
        sh.feed(".stats ghost\n")
        assert "error:" in out.getvalue()

    def test_dot_fsck_healthy(self, shell):
        sh, out = shell
        sh.run([CREATE, "INSERT INTO t (k, ts, v) VALUES (1, 10, 5);",
                "FLUSH t;"])
        sh.feed(".fsck\n")
        assert "all tables healthy" in out.getvalue()

    def test_dot_fsck_reports_damage(self, shell):
        sh, out = shell
        sh.run([CREATE, "INSERT INTO t (k, ts, v) VALUES (1, 10, 5);",
                "FLUSH t;"])
        table = sh.db.table("t")
        table.descriptor.tablets[0].row_count += 1
        table.evict_reader_cache()
        sh.feed(".fsck\n")
        assert "row count mismatch" in out.getvalue()

    def test_explain_through_shell(self, shell):
        sh, out = shell
        sh.run([CREATE, "EXPLAIN SELECT * FROM t WHERE k = 1;"])
        assert "key prefix depth" in out.getvalue()


class TestStatsCache:
    def test_stats_json_has_cache_subsection(self, tmp_path, capsys):
        import json

        data = str(tmp_path / "lt")
        assert main(["--data", data, "-e", CREATE.rstrip(";"),
                     "-e", "INSERT INTO t (k, ts, v) VALUES (1, 10, 5)",
                     "-e", "FLUSH t", "-e", "SELECT * FROM t"]) == 0
        capsys.readouterr()
        assert main(["stats", "--data", data, "--json"]) == 0
        page = json.loads(capsys.readouterr().out)
        cache = page["cache"]
        for section in ("block", "footer", "latest"):
            assert {"hits", "misses", "hit_rate"} <= set(cache[section])
        assert "evictions" in cache["block"]
        assert "resident_bytes" in cache["block"]
        assert "invalidations" in cache
        assert "generation_bumps" in cache
        assert "tablets_pruned" in cache

    def test_stats_text_renders_cache_section(self, tmp_path, capsys):
        data = str(tmp_path / "lt")
        assert main(["--data", data, "-e", CREATE.rstrip(";")]) == 0
        capsys.readouterr()
        assert main(["stats", "--data", data]) == 0
        out = capsys.readouterr().out
        assert "== read cache ==" in out
        assert "cache_hit_rate" in out
        assert "tablets_pruned_per_query" in out


class TestPersistence:
    def test_data_dir_round_trip(self, tmp_path, capsys):
        data = str(tmp_path / "lt")
        assert main(["--data", data, "-e", CREATE.rstrip(";"),
                     "-e", "INSERT INTO t (k, ts, v) VALUES (1, 10, 5)"]) == 0
        capsys.readouterr()
        assert main(["--data", data, "-e", "SELECT v FROM t"]) == 0
        assert "(1 rows)" in capsys.readouterr().out

    def test_in_memory_database(self):
        db = open_database(None)
        assert db.table_names() == []
