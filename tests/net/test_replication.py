"""Warm-standby replication suites.

A primary with ``replicated``-tier tables serves the streaming
commands (``repl_manifest``/``repl_fetch_wal``/``repl_fetch_tablet``);
a :class:`~repro.net.replica.Follower` pulls them into a read-only
local engine that serves reads with reported lag, converges after
flushes reshape the primary's tablet set, and promotes to a primary
that passes fsck.
"""

import threading
import time

import pytest

from repro.core import (
    DurabilityPolicy,
    LittleTable,
    Query,
    ReadOnlyModeError,
    ReplicaDivergedError,
    is_healthy,
)
from repro.disk import SimulatedDisk
from repro.net.client import LittleTableClient
from repro.net.replica import Follower
from repro.net.server import LittleTableServer

from ..conftest import usage_schema

REPL = DurabilityPolicy(tier="replicated", wal_segment_bytes=4096)


def row_for(index: int) -> dict:
    return {"network": 1, "device": 1, "ts": index + 1,
            "bytes": index, "rate": 0.0}


@pytest.fixture
def primary():
    db = LittleTable(disk=SimulatedDisk(), durability=REPL)
    db.create_table("t", usage_schema())
    server = LittleTableServer(db)
    server.start()
    try:
        yield db, server
    finally:
        server.stop()
        db.close()


def make_follower(server, **kwargs):
    standby = LittleTable(disk=SimulatedDisk())
    host, port = server.address
    return Follower(standby, host, port, **kwargs)


def wait_until(predicate, timeout_s=10.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return False


class TestConvergence:
    def test_streams_memtable_rows(self, primary):
        db, server = primary
        db.insert("t", [row_for(i) for i in range(20)])
        follower = make_follower(server)
        try:
            follower.sync_once()
            rows = follower.db.query("t", Query()).rows
            assert rows == db.query("t", Query()).rows
            assert len(rows) == 20
        finally:
            follower.stop()

    def test_resyncs_after_flush_reshapes_tablets(self, primary):
        db, server = primary
        db.insert("t", [row_for(i) for i in range(30)])
        follower = make_follower(server)
        try:
            follower.sync_once()
            db.table("t").flush_all()       # tablet set changes
            db.insert("t", [row_for(30 + i) for i in range(10)])
            follower.sync_once()
            assert len(follower.db.query("t", Query()).rows) == 40
            # The standby's copy is tablets + replayed tail, healthy.
            assert is_healthy(follower.db)
        finally:
            follower.stop()

    def test_background_loop_converges_and_reports_lag(self, primary):
        db, server = primary
        follower = make_follower(server, poll_interval_s=0.02)
        try:
            follower.start()
            for batch in range(5):
                db.insert("t", [row_for(batch * 20 + i)
                                for i in range(20)])
                if batch == 2:
                    db.table("t").flush_all()
            assert wait_until(
                lambda: follower.db.has_table("t")
                and len(follower.db.query("t", Query()).rows) == 100
                and follower.lag_records() == 0)
            status = follower.status()
            assert status["following"] == "%s:%d" % server.address
            assert status["tables"]["t"]["lag_records"] == 0
            assert status["error"] is None
            # Lag also surfaces through the standby's own admin API.
            wal = follower.db.wal_status()
            assert wal["replication"]["lag_records"] == 0
            health = follower.db.health_summary()["durability"]
            assert health["replication"]["following"]
        finally:
            follower.stop()

    def test_standby_rejects_writes(self, primary):
        db, server = primary
        follower = make_follower(server)
        try:
            with pytest.raises(ReadOnlyModeError):
                follower.db.insert("t", [row_for(0)])
        finally:
            follower.stop()

    def test_new_tables_appear(self, primary):
        db, server = primary
        follower = make_follower(server)
        try:
            follower.sync_once()
            db.create_table("u", usage_schema())
            db.insert("u", [row_for(0)])
            follower.sync_once()
            assert follower.db.has_table("u")
            assert len(follower.db.query("u", Query()).rows) == 1
        finally:
            follower.stop()

    def test_none_tier_tables_not_replicated(self, primary):
        db, server = primary
        db.create_table("local_only", usage_schema(),
                        durability=DurabilityPolicy(tier="wal"))
        db.insert("local_only", [row_for(0)])
        follower = make_follower(server)
        try:
            follower.sync_once()
            assert not follower.db.has_table("local_only")
        finally:
            follower.stop()


class TestDivergence:
    def test_primary_regression_halts_loop(self, primary):
        db, server = primary
        db.insert("t", [row_for(i) for i in range(5)])
        follower = make_follower(server)
        try:
            follower.sync_once()
            # Fake a primary that lost its log (restored from an old
            # snapshot): its durable LSN is behind what we applied.
            follower._applied["t"] = 10_000
            with pytest.raises(ReplicaDivergedError):
                follower.sync_once()
            # The background loop records the error and halts.
            follower.start()
            assert wait_until(lambda: follower.error is not None)
            assert "re-seed" in follower.error
        finally:
            follower.stop()


class TestPromotion:
    def test_promote_serves_writes_and_passes_fsck(self, primary):
        db, server = primary
        db.insert("t", [row_for(i) for i in range(25)])
        db.table("t").flush_all()
        db.insert("t", [row_for(25 + i) for i in range(5)])
        follower = make_follower(server)
        standby = follower.db
        follower.sync_once()
        promoted = follower.promote()
        assert promoted is standby
        assert standby.replication is None
        standby.insert("t", [row_for(100)])
        assert len(standby.query("t", Query()).rows) == 31
        assert is_healthy(standby)
        # Reopening the standby's directory comes up clean (the
        # ``ltdb fsck`` criterion: scrub finds nothing to repair).
        disk = standby.disk
        standby.close()
        reopened = LittleTable(disk=disk)
        assert reopened.last_scrub.clean
        assert len(reopened.query("t", Query()).rows) == 31
        reopened.close()

    def test_promote_rearms_wal_protection(self, primary):
        """Failover must not silently downgrade durability: the
        primary's table-level policy rides the manifest, and promote()
        re-arms the WAL so the new primary's acknowledged writes
        survive a crash and it can serve replication itself."""
        db, server = primary
        db.insert("t", [row_for(i) for i in range(10)])
        follower = make_follower(server)
        follower.sync_once()
        promoted = follower.promote()
        table = promoted.table("t")
        assert table.durability.tier == "replicated"
        assert table.wal is not None
        promoted.insert("t", [row_for(50)])
        # Abandon without close (kill -9 on the new primary): the
        # acknowledged write must come back from the WAL.
        disk = promoted.disk
        reopened = LittleTable(disk=disk)
        rows = reopened.query("t", Query()).rows
        assert {row[2] for row in rows} == (
            {index + 1 for index in range(10)} | {51})
        assert reopened.table("t").durability.tier == "replicated"
        reopened.close()


class TestServeFollowCli:
    def test_serve_follow_round_trip(self, primary):
        from repro.cli import serve_main

        db, server = primary
        db.insert("t", [row_for(i) for i in range(12)])
        host, port = server.address
        stop = threading.Event()
        seen = {}

        def on_ready(standby_server):
            def probe():
                try:
                    shost, sport = standby_server.address
                    with LittleTableClient(shost, sport) as client:
                        def rows():
                            try:
                                return len(list(client.query("t")))
                            except Exception:
                                return -1  # table not streamed yet

                        assert wait_until(lambda: rows() == 12)
                        seen["rows"] = rows()
                        seen["wal"] = client.wal_status()
                finally:
                    stop.set()

            threading.Thread(target=probe, daemon=True).start()

        rc = serve_main(["--follow", f"{host}:{port}", "--port", "0"],
                        stop_event=stop, on_ready=on_ready)
        assert rc == 0
        assert seen["rows"] == 12
        assert seen["wal"]["replication"]["following"] == f"{host}:{port}"

    def test_follow_rejects_shards(self):
        from repro.cli import serve_main

        assert serve_main(["--follow", "127.0.0.1:1", "--shards", "2",
                           "--port", "0"]) == 2

    def test_follow_rejects_bad_address(self):
        from repro.cli import serve_main

        assert serve_main(["--follow", "nonsense", "--port", "0"]) == 2


class TestWireDurability:
    def test_create_table_with_policy_over_wire(self, primary):
        db, server = primary
        host, port = server.address
        with LittleTableClient(host, port) as client:
            client.create_table("wired", usage_schema(),
                                durability=DurabilityPolicy(tier="wal"))
            status = client.wal_status()
            assert status["tables"]["wired"]["tier"] == "wal"
            assert status["default_tier"] == "replicated"
        assert db.table("wired").durability.tier == "wal"
