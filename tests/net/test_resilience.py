"""Network resilience: timeouts, retry/reconnect, degraded servers.

The client's sleep and RNG are injectable, so backoff is asserted by
inspecting recorded delays instead of waiting them out; server
"crashes" are real stop()/restart cycles against the same engine
(which is exactly what a client of the paper's system observes: the
persistent connection breaks, §3.1/§4.1).
"""

import pytest

from repro.core import (
    Column,
    ColumnType,
    EngineConfig,
    LittleTable,
    ReadOnlyModeError,
    Schema,
)
from repro.disk import DiskFullError, FaultyVFS
from repro.net import (ClientConfig, ConnectionLost, LittleTableClient,
                       LittleTableServer)
from repro.util.clock import MICROS_PER_DAY, VirtualClock

BASE = 10_000 * MICROS_PER_DAY


def event_schema():
    return Schema(
        [Column("device", ColumnType.INT64),
         Column("ts", ColumnType.TIMESTAMP),
         Column("value", ColumnType.INT64)],
        key=["device", "ts"],
    )


def make_db(disk=None):
    return LittleTable(disk=disk, clock=VirtualClock(start=BASE),
                       config=EngineConfig(server_row_limit=16))


def fast_client(server, **overrides):
    """A client whose backoff sleeps are recorded, not slept."""
    host, port = server.address
    overrides.setdefault("retry_backoff_s", 0.001)
    client = LittleTableClient(host, port,
                               config=ClientConfig(**overrides))
    client.sleeps = []
    client._sleep = client.sleeps.append
    return client


@pytest.fixture
def db():
    database = make_db()
    yield database
    database.close()


@pytest.fixture
def server(db):
    with LittleTableServer(db) as running:
        yield running


class TestTimeoutKnobs:
    def test_request_timeout_reaches_socket(self, server):
        client = fast_client(server, request_timeout_s=1.5)
        with client:
            assert client._sock.gettimeout() == 1.5
            assert client.ping()

    def test_default_is_blocking_reads(self, server):
        with fast_client(server) as client:
            assert client._sock.gettimeout() is None

    def test_connect_timeout_is_used(self, server, monkeypatch):
        import socket as socket_module
        seen = {}
        real = socket_module.create_connection

        def spying(address, timeout=None, **kwargs):
            seen["timeout"] = timeout
            return real(address, timeout=timeout, **kwargs)

        monkeypatch.setattr("repro.net.client.socket.create_connection",
                            spying)
        with fast_client(server, connect_timeout_s=2.5):
            assert seen["timeout"] == 2.5


class TestBackoff:
    def test_exponential_with_cap(self, server):
        client = fast_client(server, retry_backoff_s=0.1,
                             retry_backoff_max_s=0.3)
        with client:
            client._rng = type("R", (), {"random": lambda self: 1.0})()
            for attempt in range(4):
                client._backoff(attempt)
            assert client.sleeps == [0.1, 0.2, 0.3, 0.3]

    def test_jitter_halves_at_minimum(self, server):
        client = fast_client(server, retry_backoff_s=0.2,
                             retry_backoff_max_s=1.0)
        with client:
            client._rng = type("R", (), {"random": lambda self: 0.0})()
            client._backoff(0)
            assert client.sleeps == [pytest.approx(0.1)]


class TestServerRestart:
    def test_idempotent_query_survives_restart(self, db, server):
        client = fast_client(server)
        with client:
            client.create_table("t", event_schema())
            client.insert("t", [{"device": 1, "ts": BASE + i, "value": i}
                                for i in range(10)])
            host, port = server.address
            server.stop()
            assert server.is_stopped
            # Same engine, fresh server on the same port: the client's
            # persistent connection is dead but the data is not.
            with LittleTableServer(db, port=port):
                rows = list(client.query("t"))
            assert [row[1] for row in rows] == [BASE + i for i in range(10)]
            assert len(client.sleeps) >= 1  # it actually retried

    def test_reconnect_invalidates_schema_cache(self, db, server):
        client = fast_client(server)
        with client:
            client.create_table("t", event_schema())
            list(client.query("t"))  # warms the schema cache
            client._schema_cache["t"] = "stale-sentinel"
            host, port = server.address
            server.stop()
            with LittleTableServer(db, port=port):
                assert client.ping()
                # The reconnect dropped the poisoned entry; the next
                # lookup re-fetches the real schema from the server.
                assert "t" not in client._schema_cache
                assert client._schema("t") == event_schema()

    def test_retries_are_bounded(self, server):
        client = fast_client(server, max_retries=2)
        with client:
            server.stop()  # nothing ever comes back on this port
            with pytest.raises(ConnectionLost):
                client.ping()
            assert len(client.sleeps) == 2

    def test_insert_is_never_retried(self, db, server):
        client = fast_client(server)
        with client:
            client.create_table("t", event_schema())
            host, port = server.address
            server.stop()
            with LittleTableServer(db, port=port):
                # Even with a healthy server back up, a write through a
                # broken connection must surface, not silently resend:
                # the old server may have applied it (§4.1).
                with pytest.raises(ConnectionLost):
                    client.insert("t", [{"device": 1, "ts": BASE,
                                         "value": 0}])
            assert client.sleeps == []  # zero backoff = zero retries

    def test_auto_reconnect_false_disables_retries(self, db, server):
        client = fast_client(server, auto_reconnect=False)
        with client:
            host, port = server.address
            server.stop()
            with LittleTableServer(db, port=port):
                with pytest.raises(ConnectionLost):
                    client.ping()
            assert client.sleeps == []


class TestReadOnlyServer:
    def test_enospc_degrades_but_reads_serve(self):
        disk = FaultyVFS()
        db = make_db(disk=disk)
        with LittleTableServer(db) as server:
            client = fast_client(server)
            with client:
                client.create_table("t", event_schema())
                client.insert("t", [{"device": 1, "ts": BASE + i,
                                     "value": i} for i in range(8)])
                disk.failpoints.set("disk.write", "enospc", count=-1)
                table = db.table("t")
                with pytest.raises(DiskFullError):
                    table.flush_all()
                assert db.read_only
                # Writes are refused with the typed error...
                with pytest.raises(ReadOnlyModeError):
                    client.insert("t", [{"device": 2, "ts": BASE,
                                         "value": 0}])
                with pytest.raises(ReadOnlyModeError):
                    client.create_table("u", event_schema())
                # ...while reads and health keep serving.
                assert len(list(client.query("t"))) == 8
                health = client.health()
                assert health["read_only"]
                assert "disk full" in health["read_only_reason"]
                # Operator clears space; the engine becomes writable.
                disk.failpoints.clear()
                db.exit_read_only()
                client.insert("t", [{"device": 2, "ts": BASE, "value": 0}])
                assert len(list(client.query("t"))) == 9
        db.close()

    def test_health_on_healthy_server(self, server):
        with fast_client(server) as client:
            health = client.health()
            assert health["read_only"] is False
            assert health["quarantined_tablets"] == 0


class _WedgedThread:
    """Stands in for a serve thread that refuses to exit."""

    def join(self, timeout=None):
        pass

    def is_alive(self):
        return True


class TestServerShutdown:
    def test_is_stopped_lifecycle(self, db):
        server = LittleTableServer(db)
        assert server.is_stopped  # never started
        server.start()
        assert not server.is_stopped
        server.close()  # the stop() alias
        assert server.is_stopped

    def test_wedged_thread_warns_and_keeps_handle(self, db, caplog):
        server = LittleTableServer(db)
        server.start()
        real_thread = server._thread
        server._thread = _WedgedThread()
        with caplog.at_level("WARNING", logger="repro.net.server"):
            server.stop()
        assert "did not exit" in caplog.text
        # The handle is kept so is_stopped tells the truth instead of
        # pretending the leak did not happen (the old behaviour).
        assert server._thread is not None
        assert not server.is_stopped
        real_thread.join(timeout=5)  # the real thread did stop
        assert not real_thread.is_alive()
