"""Unit tests for the server's command dispatch (no TCP involved)."""

import pytest

from repro.core import Column, ColumnType, LittleTable, Schema
from repro.net.server import LittleTableServer
from repro.util.clock import MICROS_PER_DAY, VirtualClock

BASE = 10_000 * MICROS_PER_DAY


def make_schema():
    return Schema(
        [Column("k", ColumnType.INT64),
         Column("ts", ColumnType.TIMESTAMP),
         Column("v", ColumnType.INT64)],
        key=["k", "ts"],
    )


@pytest.fixture
def server():
    clock = VirtualClock(start=BASE)
    db = LittleTable(clock=clock)
    # Dispatch works without start(): no sockets needed.
    built = LittleTableServer(db)
    built.clock = clock
    return built


def ok(response):
    assert response.get("ok"), response
    return response


class TestDispatch:
    def test_ping(self, server):
        assert ok(server.dispatch({"cmd": "ping"}))["pong"]

    def test_unknown_command(self, server):
        response = server.dispatch({"cmd": "fly"})
        assert not response["ok"]
        assert response["error"] == "ProtocolViolationError"

    def test_missing_command(self, server):
        assert not server.dispatch({})["ok"]

    def test_create_insert_query(self, server):
        ok(server.dispatch({"cmd": "create_table", "table": "t",
                            "schema": make_schema().to_dict()}))
        ok(server.dispatch({"cmd": "insert", "table": "t",
                            "rows": [[1, BASE, 10], [2, BASE, 20]]}))
        response = ok(server.dispatch({"cmd": "query", "table": "t"}))
        assert len(response["rows"]) == 2
        assert response["rows_scanned"] == 2

    def test_engine_errors_become_responses(self, server):
        response = server.dispatch({"cmd": "drop_table", "table": "ghost"})
        assert not response["ok"]
        assert response["error"] == "NoSuchTableError"

    def test_internal_errors_are_contained(self, server):
        # A malformed request (missing fields) must not crash dispatch.
        response = server.dispatch({"cmd": "insert"})
        assert not response["ok"]

    def test_query_with_bounds(self, server):
        ok(server.dispatch({"cmd": "create_table", "table": "t",
                            "schema": make_schema().to_dict()}))
        ok(server.dispatch({"cmd": "insert", "table": "t",
                            "rows": [[k, BASE + k, 0] for k in range(10)]}))
        response = ok(server.dispatch({
            "cmd": "query", "table": "t",
            "key_min": [3], "key_max": [6],
            "ts_min": BASE + 4, "descending": True,
        }))
        assert [row[0] for row in response["rows"]] == [6, 5, 4]

    def test_latest_roundtrip(self, server):
        ok(server.dispatch({"cmd": "create_table", "table": "t",
                            "schema": make_schema().to_dict()}))
        ok(server.dispatch({"cmd": "insert", "table": "t",
                            "rows": [[1, BASE, 1], [1, BASE + 9, 2]]}))
        response = ok(server.dispatch({"cmd": "latest", "table": "t",
                                       "prefix": [1]}))
        assert response["row"] == [1, BASE + 9, 2]
        empty = ok(server.dispatch({"cmd": "latest", "table": "t",
                                    "prefix": [9]}))
        assert empty["row"] is None

    def test_flush_and_bulk_delete(self, server):
        ok(server.dispatch({"cmd": "create_table", "table": "t",
                            "schema": make_schema().to_dict()}))
        ok(server.dispatch({"cmd": "insert", "table": "t",
                            "rows": [[k, BASE, 0] for k in range(4)]}))
        flush = ok(server.dispatch({"cmd": "flush", "table": "t"}))
        assert flush["tablets_written"] == 1
        deleted = ok(server.dispatch({"cmd": "bulk_delete", "table": "t",
                                      "prefix": [2]}))
        assert deleted["rows_removed"] == 1

    def test_alter_actions(self, server):
        ok(server.dispatch({"cmd": "create_table", "table": "t",
                            "schema": make_schema().to_dict()}))
        ok(server.dispatch({
            "cmd": "alter", "table": "t", "action": "add_column",
            "column": {"name": "extra", "type": "string", "default": "x"},
        }))
        ok(server.dispatch({"cmd": "alter", "table": "t",
                            "action": "set_ttl", "ttl_micros": 1000}))
        table = server.db.table("t")
        assert table.schema.has_column("extra")
        assert table.ttl_micros == 1000
        bad = server.dispatch({"cmd": "alter", "table": "t",
                               "action": "rename"})
        assert not bad["ok"]

    def test_list_tables_includes_schema_and_ttl(self, server):
        ok(server.dispatch({"cmd": "create_table", "table": "t",
                            "schema": make_schema().to_dict(),
                            "ttl_micros": 777}))
        listed = ok(server.dispatch({"cmd": "list_tables"}))["tables"]
        assert listed[0]["name"] == "t"
        assert listed[0]["ttl_micros"] == 777
        assert Schema.from_dict(listed[0]["schema"]) == make_schema()
