"""The unified client API: repro.connect, ClientConfig, facade parity.

Parity is the point of the redesign, so the central test runs ONE
workload function against three deployments - in-process engine,
threaded single-engine server, async sharded server - and asserts the
facade behaves identically (same rows, same shapes, same context-
manager semantics).
"""

import warnings

import pytest

import repro
from repro import ClientConfig, connect
from repro.core import (
    Column,
    ColumnType,
    EngineConfig,
    LittleTable,
    Query,
    Schema,
)
from repro.net import (
    AsyncLittleTableServer,
    LittleTableClient,
    LittleTableServer,
    ShardRouter,
)
from repro.util.clock import MICROS_PER_DAY, VirtualClock

BASE = 10_000 * MICROS_PER_DAY


def usage_schema():
    return Schema(
        [Column("device", ColumnType.STRING),
         Column("ts", ColumnType.TIMESTAMP),
         Column("bytes", ColumnType.INT64)],
        key=["device", "ts"],
    )


SAMPLE = [
    {"device": f"dev-{d:02d}", "ts": BASE + s * 1_000_000,
     "bytes": d * 10 + s}
    for d in range(8)
    for s in range(6)
]


def run_workload(db):
    """The facade surface every deployment must serve identically."""
    db.create_table("usage", usage_schema())
    assert db.insert("usage", SAMPLE) == len(SAMPLE)

    result = db.query("usage", Query(limit=1000))
    assert len(result.rows) == len(SAMPLE)
    assert not result.more_available
    keys = [r[:2] for r in result.rows]
    assert keys == sorted(keys)

    # A client-imposed limit is a complete result, not a truncation
    # (engine semantics: more_available means the SERVER limit cut
    # the scan) - and every deployment must agree on that.
    page = db.query("usage", Query(limit=10))
    assert len(page.rows) == 10 and not page.more_available

    table_page = db.table("usage").query(Query(limit=10))
    assert [r[:2] for r in table_page.rows] == [r[:2] for r in page.rows]

    latest = db.latest("usage", ("dev-03",))
    assert latest[2] == 35

    snapshot = db.stats()
    assert set(snapshot) >= {"counters", "gauges", "histograms"}
    health = db.health()
    assert health["read_only"] is False
    return [r[:2] for r in result.rows]


class TestFacadeParity:
    def test_in_process(self):
        with LittleTable(clock=VirtualClock(start=BASE)) as db:
            run_workload(db)

    def test_threaded_single_server(self):
        db = LittleTable(clock=VirtualClock(start=BASE))
        with LittleTableServer(db) as server:
            with connect(server.address) as remote:
                assert run_workload(remote) is not None
        db.close()

    def test_async_sharded_server(self):
        router = ShardRouter(shards=3, clock=VirtualClock(start=BASE))
        with AsyncLittleTableServer(router) as server:
            with connect(server.address) as remote:
                assert run_workload(remote) is not None
        router.close()

    def test_all_three_agree_row_for_row(self):
        results = []
        with LittleTable(clock=VirtualClock(start=BASE)) as db:
            results.append(run_workload(db))
        db = LittleTable(clock=VirtualClock(start=BASE))
        with LittleTableServer(db) as server:
            with connect(server.address) as remote:
                results.append(run_workload(remote))
        db.close()
        router = ShardRouter(shards=4, clock=VirtualClock(start=BASE))
        with AsyncLittleTableServer(router) as server:
            with connect(server.address) as remote:
                results.append(run_workload(remote))
        router.close()
        assert results[0] == results[1] == results[2]


class TestConnectAddresses:
    @pytest.fixture
    def server(self):
        db = LittleTable(clock=VirtualClock(start=BASE))
        with LittleTableServer(db) as running:
            yield running
        db.close()

    def test_host_port_string(self, server):
        host, port = server.address
        with connect(f"{host}:{port}") as db:
            assert db.client.ping()

    def test_port_only_string_defaults_localhost(self, server):
        _host, port = server.address
        with connect(f":{port}") as db:
            assert db.client.ping()

    def test_tuple_address(self, server):
        with connect(server.address) as db:
            assert db.client.ping()

    def test_config_passes_through(self, server):
        config = ClientConfig(insert_batch_rows=7, pipeline_depth=3)
        with connect(server.address, config=config) as db:
            assert db.client.config.insert_batch_rows == 7
            assert db.client.config.pipeline_depth == 3

    def test_bad_addresses_rejected(self):
        with pytest.raises(ValueError):
            connect("no-port-here")
        with pytest.raises(ValueError):
            connect("host:not-a-number")

    def test_close_is_idempotent(self, server):
        db = connect(server.address)
        db.close()
        db.close()

    def test_clientconfig_reexported_at_top_level(self):
        assert repro.ClientConfig is ClientConfig


class TestClientConfigShim:
    @pytest.fixture
    def server(self):
        db = LittleTable(clock=VirtualClock(start=BASE))
        with LittleTableServer(db) as running:
            yield running
        db.close()

    def test_legacy_kwargs_warn_and_map(self, server):
        host, port = server.address
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            client = LittleTableClient(host, port,
                                       insert_batch_rows=99,
                                       max_retries=5,
                                       auto_reconnect=False)
        assert any(issubclass(w.category, DeprecationWarning)
                   for w in caught)
        assert client.config.insert_batch_rows == 99
        assert client.config.max_retries == 5
        assert client.config.auto_reconnect is False
        client.close()

    def test_legacy_positional_batch_size(self, server):
        host, port = server.address
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            client = LittleTableClient(host, port, 256)
        assert any(issubclass(w.category, DeprecationWarning)
                   for w in caught)
        assert client.config.insert_batch_rows == 256
        client.close()

    def test_modern_config_does_not_warn(self, server):
        host, port = server.address
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("error", DeprecationWarning)
            client = LittleTableClient(
                host, port, config=ClientConfig(insert_batch_rows=64))
        assert client.config.insert_batch_rows == 64
        assert not caught
        client.close()

    def test_config_validation(self):
        with pytest.raises(ValueError):
            LittleTableClient("127.0.0.1", 1,
                              config=ClientConfig(insert_batch_rows=0))
        with pytest.raises(ValueError):
            LittleTableClient("127.0.0.1", 1,
                              config=ClientConfig(pipeline_depth=0))

    def test_unknown_kwarg_rejected(self):
        with pytest.raises(TypeError):
            LittleTableClient("127.0.0.1", 1, not_a_setting=True)


class TestServeCli:
    def test_serve_subcommand_round_trip(self):
        import threading

        from repro.cli import serve_main

        stop = threading.Event()
        seen = {}

        def on_ready(server):
            def probe():
                try:
                    with connect(server.address) as db:
                        db.create_table("usage", usage_schema())
                        db.insert("usage", SAMPLE[:6])
                        seen["rows"] = len(db.query("usage").rows)
                        seen["shards"] = db.client.server_shards
                finally:
                    stop.set()

            threading.Thread(target=probe, daemon=True).start()

        rc = serve_main(["--port", "0", "--shards", "2"],
                        stop_event=stop, on_ready=on_ready)
        assert rc == 0
        assert seen == {"rows": 6, "shards": 2}

    def test_serve_rejects_bad_shards(self):
        from repro.cli import serve_main

        assert serve_main(["--shards", "0", "--port", "0"]) == 2
